"""Legacy setup shim.

Kept alongside pyproject.toml because offline environments without the
``wheel`` package cannot perform PEP 660 editable installs; with this
shim ``pip install -e .`` falls back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TSteiner: concurrent sign-off timing optimization via deep "
        "Steiner point refinement (DAC 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
