"""Bench: ablation of TSteiner's design choices (DESIGN.md §6).

Compares the shipped configuration against: accumulated-Adam updates,
pure evaluator acceptance (the paper's literal Algorithm 1), disabled
backtracking, and LSE-temperature extremes.
"""

from repro.experiments import ablation


def test_ablation_variants(benchmark, config, trained_context):
    result = benchmark.pedantic(ablation.run, args=(config,), rounds=1, iterations=1)

    print()
    print(ablation.format_result(result))

    by_name = {r.variant: r for r in result.rows}
    assert set(by_name) == {
        "paper-SO+hybrid",
        "adam+hybrid",
        "evaluator-only",
        "no-backtrack",
        "gamma=1",
        "gamma=50",
    }
    # Hybrid-validated variants can never end worse than baseline.
    for name in ("paper-SO+hybrid", "adam+hybrid", "gamma=1", "gamma=50", "no-backtrack"):
        assert by_name[name].wns_ratio <= 1.0 + 1e-9
        assert by_name[name].tns_ratio <= 1.0 + 1e-9
    # Every variant actually iterated.
    assert all(r.iterations > 0 for r in result.rows)
