"""Bench: regenerate Table II (sign-off timing optimization).

Shape targets from the paper (our substrate is a simulator, so the
*direction* must hold, magnitudes are attenuated):

* average WNS and TNS ratios <= 1.0 (TSteiner never loses — the hybrid
  validation anchors on the real flow);
* at least one design strictly improves;
* routing quality (WL / vias) within ~2 % of baseline.
"""

from repro.experiments import table2


def test_table2_timing_optimization(benchmark, config, trained_context):
    result = benchmark.pedantic(table2.run, args=(config,), rounds=1, iterations=1)

    print()
    print(table2.format_result(result))
    avg = result.average_ratios()
    print(f"mean WNS improvement: {result.mean_wns_improvement:.2%} (paper: 11.2%)")
    print(f"mean TNS improvement: {result.mean_tns_improvement:.2%} (paper: 7.1%)")

    # Who-wins shape: TSteiner never worse, improves somewhere.
    assert avg["wns_ratio"] <= 1.0 + 1e-9
    assert avg["tns_ratio"] <= 1.0 + 1e-9
    assert any(r.wns_ratio < 1.0 or r.tns_ratio < 1.0 for r in result.rows)
    # Routing quality comparable.  The paper reports 0.9999x WL /
    # 1.0001x vias on mm-scale designs; on our small synthetic designs a
    # single accepted WL-for-timing trade moves the per-design ratio by
    # several percent, so the band is wider.
    assert 0.85 <= avg["wl_ratio"] <= 1.15
    assert 0.85 <= avg["vias_ratio"] <= 1.15
    # Every design still times (violations tracked, never NaN).
    for row in result.rows:
        assert row.baseline.wns < 0  # designs are clocked to violate
