"""Bench: regenerate Table III (arrival-time prediction R²).

Shape targets: train-average R² high (paper 0.9959 all-pins), held-out
average positive and high-but-lower (paper 0.9280), endpoints-only
scores broadly tracking the all-pins ones.
"""

from repro.experiments import table3


def test_table3_prediction_r2(benchmark, config, trained_context):
    result = benchmark.pedantic(table3.run, args=(config,), rounds=1, iterations=1)

    print()
    print(table3.format_result(result))

    train_all = result.average("arrival_all", train=True)
    test_all = result.average("arrival_all", train=False)

    assert train_all > 0.6, "training designs should fit well"
    assert test_all > 0.3, "held-out designs should still predict"
    # Endpoint-only R² is harsher on tiny designs (endpoint arrivals
    # cluster, shrinking the variance denominator of Eq. (10)), so it is
    # reported but only loosely bounded here.
    assert result.average("arrival_ends", train=False) > -2.0
    for scores in result.scores.values():
        assert scores["arrival_all"] <= 1.0 + 1e-9
