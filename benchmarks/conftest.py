"""Shared fixtures for the benchmark suite.

Profile selection: set ``REPRO_PROFILE=paper`` for the full ten-design
reproduction (minutes); the default ``quick`` profile runs a four-design
subset sized for CI.

The expensive artifacts (designs, baseline flows, trained evaluator)
are cached in :mod:`repro.experiments.common`'s process-level context,
so the benchmark numbers measure *regeneration* of each table given the
shared pipeline, matching how the paper's tables share one trained
model.
"""

import pytest

from repro.experiments.common import ExperimentConfig, get_context


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def context(config):
    return get_context(config)


@pytest.fixture(scope="session")
def trained_context(context):
    """Context with the evaluator already trained (shared warm-up)."""
    context.model()
    return context
