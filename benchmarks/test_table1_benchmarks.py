"""Bench: regenerate Table I (benchmark statistics)."""

from repro.experiments import table1


def test_table1_benchmark_statistics(benchmark, config, context):
    result = benchmark.pedantic(table1.run, args=(config,), rounds=1, iterations=1)

    print()
    print(table1.format_result(result))

    # Shape checks against the paper's table structure.
    assert len(result.rows) == len(config.designs)
    for row in result.rows:
        assert row.cell_nodes > 0
        assert row.steiner_nodes > 0
        assert row.net_edges > row.cell_nodes  # Steiner edges add on top
        assert row.endpoints > 0
    # Train/test totals partition the designs.
    assert (
        result.total_train.cell_nodes + result.total_test.cell_nodes
        == sum(r.cell_nodes for r in result.rows)
    )
    # Relative scale ordering (jpeg_encoder largest when present).
    sizes = {r.name: r.cell_nodes for r in result.rows}
    if "jpeg_encoder" in sizes and "spm" in sizes:
        assert sizes["jpeg_encoder"] > sizes["spm"]
