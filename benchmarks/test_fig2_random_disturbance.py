"""Bench: regenerate Fig. 2 (TNS ratio distribution under random moves).

Shape targets: random disturbance has a *real* effect on sign-off TNS
(nonzero spread) and does not help on average (mean ratio >= ~1.0) —
the paper's motivation for guided refinement.
"""

from repro.experiments import fig2


def test_fig2_random_disturbance_distribution(benchmark, config, context):
    result = benchmark.pedantic(fig2.run, args=(config,), rounds=1, iterations=1)

    print()
    print(fig2.format_result(result))

    arr = result.all_ratios()
    assert arr.size >= 3
    # Disturbance visibly moves sign-off TNS...
    assert result.spread() > 0.0
    # ...but does not improve it on average.
    assert result.mean_ratio() >= 0.98
