"""Bench: regenerate Table IV (runtime breakdown).

Shape targets: TSteiner adds a bounded overhead to the total (paper
1.32x), global routing stays comparable (paper 1.017x), and detailed
routing does not blow up (paper 0.934x — faster thanks to fewer DRVs;
on designs with zero baseline DRVs the surrogate has nothing to speed
up, so we only bound the regression).
"""

from repro.experiments import table4


def test_table4_runtime_breakdown(benchmark, config, trained_context):
    result = benchmark.pedantic(table4.run, args=(config,), rounds=1, iterations=1)

    print()
    print(table4.format_result(result))
    avg = result.ratio_averages()

    for row in result.rows:
        assert row.base_total > 0
        assert row.opt_tsteiner > 0  # the stage actually ran
    # Global routing time comparable between arms.
    assert avg["groute"] < 3.0
    # Detailed routing must not regress dramatically.
    assert avg["droute"] < 3.0
