"""Bench: regenerate Fig. 5 (TSteiner vs expected random-move ratios).

Shape target: TSteiner's mean WNS/TNS ratios sit at or below 1.0 while
the random-move expectation sits at or above it — guided refinement
beats unguided disturbance.
"""

from repro.experiments import fig5


def test_fig5_tsteiner_vs_random(benchmark, config, trained_context):
    result = benchmark.pedantic(fig5.run, args=(config,), rounds=1, iterations=1)

    print()
    print(fig5.format_result(result))

    ts_wns = result.mean("tsteiner_wns")
    ts_tns = result.mean("tsteiner_tns")
    rnd_wns = result.mean("random_wns")
    rnd_tns = result.mean("random_tns")

    assert ts_wns <= 1.0 + 1e-9
    assert ts_tns <= 1.0 + 1e-9
    # Guided refinement strictly beats the random expectation.
    assert ts_wns < rnd_wns
    assert ts_tns < rnd_tns
