"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1            # one artifact
    python -m repro all               # every table and figure
    python -m repro table2 --profile full

Profiles: quick (default, four designs), full (ten designs at half
scale), paper (the complete reproduction — slow).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ablation, fig2, fig5, table1, table2, table3, table4
from repro.experiments.common import ExperimentConfig

_ARTIFACTS = {
    "table1": (table1.run, table1.format_result),
    "table2": (table2.run, table2.format_result),
    "table3": (table3.run, table3.format_result),
    "table4": (table4.run, table4.format_result),
    "fig2": (fig2.run, fig2.format_result),
    "fig5": (fig5.run, fig5.format_result),
    "ablation": (ablation.run, ablation.format_result),
}

_PROFILES = {
    "quick": ExperimentConfig.quick,
    "full": ExperimentConfig.full,
    "paper": ExperimentConfig.paper,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate TSteiner paper artifacts (tables and figures).",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(_PROFILES),
        default="quick",
        help="experiment scale profile (default: quick)",
    )
    args = parser.parse_args(argv)
    config = _PROFILES[args.profile]()

    names = sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        run, fmt = _ARTIFACTS[name]
        print(f"=== {name} ({args.profile} profile) ===")
        print(fmt(run(config)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
