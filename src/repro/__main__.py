"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1            # one artifact
    python -m repro all               # every table and figure
    python -m repro table2 --profile full
    python -m repro table2 --timeout 600 --checkpoint-dir ckpt
    python -m repro table2 --resume   # continue a killed run

Profiles: quick (default, four designs), full (ten designs at half
scale), paper (the complete reproduction — slow).

Resilience (docs/RESILIENCE.md): ``--timeout`` installs a wall-clock
budget shared by training, refinement and routing — artifacts come
back best-so-far instead of hanging; ``--checkpoint-dir`` makes the
expensive steps snapshot atomically; ``--resume`` continues from those
snapshots.  A failing artifact prints the failing stage from the
structured error taxonomy and the process exits nonzero.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro.experiments import ablation, fig2, fig5, table1, table2, table3, table4
from repro.experiments.common import ExperimentConfig, set_runtime_defaults
from repro.runtime import Budget, ReproError, StageError

_ARTIFACTS = {
    "table1": (table1.run, table1.format_result),
    "table2": (table2.run, table2.format_result),
    "table3": (table3.run, table3.format_result),
    "table4": (table4.run, table4.format_result),
    "fig2": (fig2.run, fig2.format_result),
    "fig5": (fig5.run, fig5.format_result),
    "ablation": (ablation.run, ablation.format_result),
}

_PROFILES = {
    "quick": ExperimentConfig.quick,
    "full": ExperimentConfig.full,
    "paper": ExperimentConfig.paper,
}

_DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


def _describe_failure(name: str, exc: BaseException) -> str:
    """One-line diagnosis from the error taxonomy."""
    if isinstance(exc, StageError):
        return f"artifact {name!r} failed in stage {exc.stage!r}: {exc}"
    if isinstance(exc, ReproError):
        return f"artifact {name!r} failed ({type(exc).__name__}): {exc}"
    return f"artifact {name!r} failed ({type(exc).__name__}): {exc}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate TSteiner paper artifacts (tables and figures).",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(_PROFILES),
        default="quick",
        help="experiment scale profile (default: quick)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget shared by training/refinement/routing; "
        "expired stages return best-so-far results flagged timed_out",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for atomic snapshots of trainer/refinement state "
        "(enables resume after a kill)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from snapshots in --checkpoint-dir "
        f"(default: {_DEFAULT_CHECKPOINT_DIR})",
    )
    args = parser.parse_args(argv)
    config = _PROFILES[args.profile]()

    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = _DEFAULT_CHECKPOINT_DIR
    budget = Budget(wall_seconds=args.timeout) if args.timeout is not None else None
    set_runtime_defaults(checkpoint_dir=checkpoint_dir, budget=budget)

    names = sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    failures = 0
    for name in names:
        run, fmt = _ARTIFACTS[name]
        print(f"=== {name} ({args.profile} profile) ===")
        try:
            print(fmt(run(config)))
        except Exception as exc:
            failures += 1
            print(_describe_failure(name, exc), file=sys.stderr)
            traceback.print_exc()
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
