"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1            # one artifact
    python -m repro all               # every table and figure
    python -m repro table2 --profile full
    python -m repro table2 --timeout 600 --checkpoint-dir ckpt
    python -m repro table2 --resume   # continue a killed run
    python -m repro table2 --trace run.jsonl --verbose
    python -m repro report run.jsonl  # summarize a telemetry trace
    python -m repro table1 --corners typ,slow_setup,fast_hold  # MCMM
    python -m repro serve --jobs 24 --chaos  # sign-off service under load

Profiles: quick (default, four designs), full (ten designs at half
scale), paper (the complete reproduction — slow).

Observability (docs/OBSERVABILITY.md): ``--trace PATH`` records a
structured telemetry trace (spans, refinement iterations, metric
counters) as JSONL; ``python -m repro report PATH`` renders it.
``--verbose``/``--quiet`` move the console log level.

Resilience (docs/RESILIENCE.md): ``--timeout`` installs a wall-clock
budget shared by training, refinement and routing — artifacts come
back best-so-far instead of hanging; ``--checkpoint-dir`` makes the
expensive steps snapshot atomically; ``--resume`` continues from those
snapshots.  A failing artifact prints the failing stage from the
structured error taxonomy and the process exits nonzero.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import sys
import traceback

from repro.experiments import ablation, eco, fig2, fig5, table1, table2, table3, table4
from repro.experiments.common import ExperimentConfig, set_runtime_defaults
from repro.experiments.parallel import set_default_jobs
from repro.obs import Telemetry, setup_logging, telemetry_session
from repro.runtime import Budget, ReproError, StageError

_ARTIFACTS = {
    "table1": (table1.run, table1.format_result),
    "table2": (table2.run, table2.format_result),
    "table3": (table3.run, table3.format_result),
    "table4": (table4.run, table4.format_result),
    "fig2": (fig2.run, fig2.format_result),
    "fig5": (fig5.run, fig5.format_result),
    "ablation": (ablation.run, ablation.format_result),
    "eco": (eco.run, eco.format_result),
}

_PROFILES = {
    "quick": ExperimentConfig.quick,
    "full": ExperimentConfig.full,
    "paper": ExperimentConfig.paper,
}

_DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


def _describe_failure(name: str, exc: BaseException) -> str:
    """One-line diagnosis from the error taxonomy."""
    if isinstance(exc, StageError):
        return f"artifact {name!r} failed in stage {exc.stage!r}: {exc}"
    if isinstance(exc, ReproError):
        return f"artifact {name!r} failed ({type(exc).__name__}): {exc}"
    return f"artifact {name!r} failed ({type(exc).__name__}): {exc}"


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "report":
        # The report subcommand has its own argument surface (trace
        # paths, not profiles); dispatch before the artifact parser.
        from repro.obs.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "serve":
        # Likewise the serving layer (docs/SERVING.md): its surface is
        # traffic shape and fault plan, not artifact profiles.
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "watch":
        # Live trace dashboard (docs/OBSERVABILITY.md): tail-follows a
        # trace that is still being written.
        from repro.obs.watch import main as watch_main

        return watch_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate TSteiner paper artifacts (tables and figures).",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all", "report", "serve", "watch"],
        help="which artifact to regenerate, `report <trace.jsonl>` "
        "to summarize a telemetry trace, `serve` to run the "
        "sign-off service under synthetic load, or `watch` to "
        "tail-follow a live trace",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(_PROFILES),
        default="quick",
        help="experiment scale profile (default: quick)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget shared by training/refinement/routing; "
        "expired stages return best-so-far results flagged timed_out",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for atomic snapshots of trainer/refinement state "
        "(enables resume after a kill)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from snapshots in --checkpoint-dir "
        f"(default: {_DEFAULT_CHECKPOINT_DIR})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for per-design experiment fan-out "
        "(1 = serial, 0 = one per CPU); results are ordered and "
        "bit-identical to a serial run (docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--corners",
        default=None,
        metavar="NAMES",
        help="comma-separated MCMM corner names for the optimized flow "
        "arm (see repro.pdk.PRESET_CORNERS; e.g. "
        "'typ,slow_setup,fast_hold'); default 'typ' keeps the "
        "single-scenario path (docs/MCMM.md)",
    )
    parser.add_argument(
        "--mode",
        default=None,
        metavar="NAME",
        help="MCMM operating mode crossed with --corners "
        "(see repro.mcmm.PRESET_MODES; default 'func')",
    )
    parser.add_argument(
        "--eco",
        action="store_true",
        help="also run the `eco` closure artifact after the selected "
        "one(s) (docs/ECO.md)",
    )
    parser.add_argument(
        "--eco-arm",
        choices=("greedy", "sa", "hybrid"),
        default=None,
        metavar="ARM",
        help="narrow the eco artifact to the Steiner-only reference "
        "plus ARM (greedy, sa or hybrid; default: compare all three)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the profile's seed (model init, ECO arms); "
        "ECO verdicts are bitwise-reproducible under a fixed seed",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a telemetry trace (JSONL) to PATH; summarize it "
        "later with `python -m repro report PATH`",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more console logging (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less console logging",
    )
    args = parser.parse_args(argv)
    if args.artifact in ("report", "serve", "watch"):
        # Reached only when options precede the subcommand; the plain
        # form (`python -m repro report ...` etc.) dispatches above.
        parser.error(f"usage: python -m repro {args.artifact} [...]")
    setup_logging(args.verbose - args.quiet)
    config = _PROFILES[args.profile]()
    overrides = {}
    if args.corners is not None:
        overrides["corners"] = tuple(
            c.strip() for c in args.corners.split(",") if c.strip()
        )
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.eco_arm is not None:
        overrides["eco_arms"] = ("steiner", args.eco_arm)
    if overrides:
        config = dataclasses.replace(config, **overrides)
        try:
            config.scenario_set()  # fail fast on unknown corner/mode names
        except KeyError as exc:
            parser.error(exc.args[0])

    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = _DEFAULT_CHECKPOINT_DIR
    budget = Budget(wall_seconds=args.timeout) if args.timeout is not None else None
    set_runtime_defaults(checkpoint_dir=checkpoint_dir, budget=budget)
    set_default_jobs(args.jobs)

    names = sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    if args.eco and "eco" not in names:
        names.append("eco")
    failures = 0
    with contextlib.ExitStack() as stack:
        if args.trace:
            tel = stack.enter_context(Telemetry(path=args.trace))
            stack.enter_context(telemetry_session(tel))
        for name in names:
            run, fmt = _ARTIFACTS[name]
            print(f"=== {name} ({args.profile} profile) ===")
            try:
                print(fmt(run(config)))
            except Exception as exc:
                failures += 1
                print(_describe_failure(name, exc), file=sys.stderr)
                traceback.print_exc()
            print()
    if args.trace:
        print(f"telemetry trace written to {args.trace}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
