"""ECO closure arms compared per design (docs/ECO.md).

The closed-loop ECO driver has three arms — ``greedy``
rank-and-validate, the seeded ``sa`` baseline and ``hybrid`` (greedy
plus Steiner-nudge polish after each accepted discrete op) — and this
artifact races them against a ``steiner`` reference: the same closed
loop restricted to geometry ops (re-route + nudge), i.e. what Steiner
refinement alone can close without touching the netlist.

The table is the reproduction's ECO evidence: violations the
``steiner`` row leaves open but a discrete arm closes (with buffer
insertions or resizes in its accepted-op list) are exactly the class
of sign-off failures that need netlist surgery, not better geometry.
Every row is deterministic under the config seed — the digest column
is the accepted-op sequence hash the CI smoke job pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eco.driver import EcoConfig, EcoResult, run_eco
from repro.eco.ops import clone_state
from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.obs import get_telemetry

#: Accepted-op descriptions that mutate the netlist (vs pure geometry).
_DISCRETE_PREFIXES = ("buf ", "resize ")


def arm_config(arm: str, seed: int = 0, **overrides) -> EcoConfig:
    """The :class:`EcoConfig` one experiment arm runs.

    ``steiner`` maps to the hybrid schedule with the op space narrowed
    to ``("reroute", "nudge")``; the other names pass through.  Keyword
    overrides replace the experiment's moderate default knobs.
    """
    kwargs = dict(
        arm="hybrid" if arm == "steiner" else arm,
        seed=seed,
        max_ops=4,
        max_rounds=6,
        trials_per_round=4,
        top_endpoints=3,
        sa_steps=30,
    )
    if arm == "steiner":
        kwargs["op_kinds"] = ("reroute", "nudge")
    kwargs.update(overrides)
    return EcoConfig(**kwargs)


@dataclass
class EcoArmRow:
    design: str
    arm: str
    accepted: int
    discrete: int  # accepted buffer insertions + resizes
    init_wns: float
    init_violations: int
    final_wns: float
    final_tns: float
    final_violations: int
    closed: int  # violations closed vs the initial sign-off
    area_delta: float
    digest: str


@dataclass
class EcoExperimentResult:
    seed: int
    rows: List[EcoArmRow]
    results: List[EcoResult]


def _discrete_accepted(result: EcoResult) -> int:
    return sum(1 for d in result.accepted if d.startswith(_DISCRETE_PREFIXES))


def run(
    config: Optional[ExperimentConfig] = None,
    design: Optional[str] = None,
) -> EcoExperimentResult:
    """One ECO run per (design, arm) on a cloned state; serial on
    purpose — each run is already incremental inside, and cloning keeps
    the context's prepared designs pristine for other artifacts."""
    ctx = get_context(config)
    cfg = ctx.config
    names = [design] if design else list(cfg.designs)
    scenarios = cfg.scenario_set()
    rows: List[EcoArmRow] = []
    results: List[EcoResult] = []
    for name in names:
        netlist, forest = ctx.design(name)
        for arm in cfg.eco_arms:
            eco_netlist, eco_forest = clone_state(netlist, forest)
            res = run_eco(
                eco_netlist,
                eco_forest,
                config=arm_config(arm, seed=cfg.seed),
                scenarios=scenarios,
                budget=ctx.budget,
            )
            res.arm = arm  # label the steiner reference as itself
            results.append(res)
            tel = get_telemetry()
            if tel.enabled:
                # Same event the flow stage and serve handler emit, so
                # a traced artifact run renders in the report's ECO
                # section (one row per design/arm).
                tel.event(
                    "eco_report",
                    design=name,
                    arm=arm,
                    accepted=res.num_accepted,
                    digest=res.digest,
                    initial_wns=res.initial.get("wns"),
                    initial_tns=res.initial.get("tns"),
                    final_wns=res.final.get("wns"),
                    final_tns=res.final.get("tns"),
                    area_delta=res.area_delta,
                )
            init_v = int(res.initial["violations"])
            final_v = int(res.final["violations"])
            rows.append(
                EcoArmRow(
                    design=name,
                    arm=arm,
                    accepted=res.num_accepted,
                    discrete=_discrete_accepted(res),
                    init_wns=float(res.initial["wns"]),
                    init_violations=init_v,
                    final_wns=float(res.final["wns"]),
                    final_tns=float(res.final["tns"]),
                    final_violations=final_v,
                    closed=init_v - final_v,
                    area_delta=res.area_delta,
                    digest=res.digest,
                )
            )
    return EcoExperimentResult(seed=cfg.seed, rows=rows, results=results)


def format_result(result: EcoExperimentResult) -> str:
    headers = [
        "Design",
        "Arm",
        "Accepted",
        "Discrete",
        "Init WNS",
        "Init viol",
        "Final WNS",
        "Final TNS",
        "Final viol",
        "Closed",
        "Area +",
        "Digest",
    ]
    rows = [
        [
            r.design,
            r.arm,
            r.accepted,
            r.discrete,
            r.init_wns,
            r.init_violations,
            r.final_wns,
            r.final_tns,
            r.final_violations,
            r.closed,
            r.area_delta,
            r.digest,
        ]
        for r in result.rows
    ]
    return format_table(
        headers, rows, title=f"ECO closure arms (seed {result.seed}; docs/ECO.md)"
    )


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
