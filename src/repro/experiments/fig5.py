"""Fig. 5 — TSteiner vs expected value of random moves.

Compares, per metric, the sign-off ratio achieved by TSteiner against
the *expected* ratio of random disturbance ('ExpV-Random' in the
paper).  Shape target: TSteiner's ratios sit at or below 1.0 while the
random expectation sits at or above 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.fig2 import run as run_fig2  # noqa: F401 (re-export)
from repro.experiments.parallel import (
    design_flow_pair,
    design_random_trials,
    export_evaluator,
    parallel_map,
)


@dataclass
class Fig5Result:
    tsteiner_wns: Dict[str, float]
    tsteiner_tns: Dict[str, float]
    random_wns: Dict[str, float]
    random_tns: Dict[str, float]

    def mean(self, series: str) -> float:
        data = getattr(self, series)
        return float(np.mean(list(data.values()))) if data else 1.0


def run(config: Optional[ExperimentConfig] = None, jobs: Optional[int] = None) -> Fig5Result:
    ctx = get_context(config)
    cfg = ctx.config
    names = list(cfg.designs)
    evaluator = export_evaluator(ctx, jobs)
    pairs = parallel_map(
        design_flow_pair,
        [(cfg, name, evaluator) for name in names],
        jobs=jobs,
        label="fig5_flows",
    )
    all_stats = parallel_map(
        design_random_trials,
        [(cfg, name, cfg.seed + 1) for name in names],
        jobs=jobs,
        label="fig5_random",
    )
    ts_wns: Dict[str, float] = {}
    ts_tns: Dict[str, float] = {}
    rnd_wns: Dict[str, float] = {}
    rnd_tns: Dict[str, float] = {}
    for name, (base, opt), stats in zip(names, pairs, all_stats):
        if abs(base.wns) > 1e-9:
            ts_wns[name] = opt.wns / base.wns
        if abs(base.tns) > 1e-9:
            ts_tns[name] = opt.tns / base.tns
        rnd_wns[name] = stats.mean_wns_ratio
        rnd_tns[name] = stats.mean_tns_ratio
    return Fig5Result(ts_wns, ts_tns, rnd_wns, rnd_tns)


def format_result(result: Fig5Result) -> str:
    headers = ["Benchmark", "TSteiner-WNS", "ExpV-Random-WNS", "TSteiner-TNS", "ExpV-Random-TNS"]
    names = sorted(set(result.tsteiner_wns) | set(result.random_wns))
    rows = []
    for n in names:
        rows.append(
            [
                n,
                result.tsteiner_wns.get(n, 1.0),
                result.random_wns.get(n, 1.0),
                result.tsteiner_tns.get(n, 1.0),
                result.random_tns.get(n, 1.0),
            ]
        )
    rows.append(
        [
            "Mean",
            result.mean("tsteiner_wns"),
            result.mean("random_wns"),
            result.mean("tsteiner_tns"),
            result.mean("random_tns"),
        ]
    )
    return format_table(headers, rows, title="FIG 5: sign-off timing ratio, TSteiner vs random moves")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
