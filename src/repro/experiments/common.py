"""Shared experiment context with process-level caching.

Regenerating every table/figure needs the same expensive artifacts:
prepared designs, baseline flow runs, oracle-labelled samples and a
trained evaluator.  ``get_context`` memoizes them per configuration so
the whole experiment suite costs one pipeline, and individual
benchmarks stay fast enough for CI.

Two profiles are provided:

* ``ExperimentConfig.quick()`` — three small designs, light training;
  used by the test suite and the default benchmark run.
* ``ExperimentConfig.paper()`` — all ten designs with the paper's
  train/test split; the full reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.refine import RefinementConfig
from repro.flow.pipeline import FlowResult, make_training_samples, prepare_design, run_routing_flow
from repro.netlist.benchmarks import BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS
from repro.netlist.netlist import Netlist
from repro.runtime import Budget, CheckpointError
from repro.steiner.forest import SteinerForest
from repro.timing_model.dataset import DesignSample
from repro.timing_model.graph import TimingGraph, build_timing_graph
from repro.timing_model.model import EvaluatorConfig, TimingEvaluator
from repro.timing_model.serialize import load_evaluator, save_evaluator
from repro.timing_model.train import TrainerConfig, train_evaluator


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment modules."""

    designs: Tuple[str, ...]
    train_designs: Tuple[str, ...]
    scale: float = 1.0
    hidden: int = 32
    train_epochs: int = 300
    learning_rate: float = 5e-3
    patience: int = 80
    augment: int = 4
    refinement_iterations: int = 60
    validate_every: int = 1
    random_trials: int = 10
    seed: int = 42
    # MCMM sign-off scenarios for the optimized flow arm (docs/MCMM.md).
    # The defaults keep the historical single-scenario path bitwise
    # intact: ("typ",) x "func" is the neutral scenario.
    corners: Tuple[str, ...] = ("typ",)
    mode: str = "func"
    # Arms the `eco` artifact compares (docs/ECO.md); `--eco-arm X`
    # narrows this to the Steiner-only reference plus X.
    eco_arms: Tuple[str, ...] = ("steiner", "greedy", "sa", "hybrid")

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Small profile for tests and fast benchmark runs."""
        return ExperimentConfig(
            designs=("spm", "cic_decimator", "APU", "usb_cdc_core"),
            train_designs=("spm", "cic_decimator", "APU"),
            train_epochs=400,
            patience=120,
            augment=2,
            refinement_iterations=25,
            random_trials=5,
        )

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The full ten-design reproduction with the paper's split."""
        return ExperimentConfig(
            designs=tuple(BENCHMARKS),
            train_designs=tuple(TRAIN_BENCHMARKS),
        )

    @staticmethod
    def full() -> "ExperimentConfig":
        """All ten designs at half scale — the overnight-free middle
        ground between ``quick`` (CI) and ``paper`` (hours)."""
        return ExperimentConfig(
            designs=tuple(BENCHMARKS),
            train_designs=tuple(TRAIN_BENCHMARKS),
            scale=0.5,
            # Ten designs need a real training budget: 150 epochs leaves
            # the evaluator underfit (negative train R²) even though the
            # validated refinement still harvests improvements.
            train_epochs=400,
            patience=120,
            augment=1,
            refinement_iterations=25,
            random_trials=5,
        )

    @staticmethod
    def from_env() -> "ExperimentConfig":
        """Profile selected by the REPRO_PROFILE environment variable."""
        profile = os.environ.get("REPRO_PROFILE", "quick")
        if profile == "paper":
            return ExperimentConfig.paper()
        if profile == "full":
            return ExperimentConfig.full()
        return ExperimentConfig.quick()

    def refinement_config(self) -> RefinementConfig:
        return RefinementConfig(
            max_iterations=self.refinement_iterations,
            validate_every=self.validate_every,
        )

    def scenario_set(self):
        """`repro.mcmm.ScenarioSet` for the optimized arm, or ``None``.

        Returns ``None`` for the default single-neutral selection so
        the flow takes the exact pre-MCMM code path.
        """
        if tuple(self.corners) == ("typ",) and self.mode == "func":
            return None
        from repro.mcmm import ScenarioSet

        return ScenarioSet.from_names(self.corners, modes=(self.mode,))


class ExperimentContext:
    """Lazily-built, cached pipeline artifacts for one configuration.

    ``checkpoint_dir`` makes the expensive build steps resumable
    (docs/RESILIENCE.md): the trained evaluator is saved there
    atomically and reloaded on the next run instead of retrained, and
    the trainer itself checkpoints per epoch so a killed training run
    resumes mid-way.  ``budget`` is threaded through training and the
    optimized flow runs so a wall-clock limit degrades gracefully.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.config = config
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.budget = budget
        self._designs: Dict[str, Tuple[Netlist, SteinerForest]] = {}
        self._graphs: Dict[str, TimingGraph] = {}
        self._baselines: Dict[str, FlowResult] = {}
        self._optimized: Dict[str, FlowResult] = {}
        self._samples: Optional[List[DesignSample]] = None
        self._model: Optional[TimingEvaluator] = None

    # ------------------------------------------------------------------
    def design(self, name: str) -> Tuple[Netlist, SteinerForest]:
        if name not in self._designs:
            self._designs[name] = prepare_design(name, scale=self.config.scale)
        return self._designs[name]

    def timing_graph(self, name: str) -> TimingGraph:
        """Memoized evaluator graph for ``name``.

        Graph construction walks every RC tree and levelizes the whole
        design; the structure depends only on the prepared design (and
        hence on the config's scale and seed), so the experiment suite
        builds it once per context and hands it to every optimized flow
        run via :func:`run_routing_flow`'s ``timing_graph`` parameter.
        Congestion is refreshed inside TSteiner per run.
        """
        if name not in self._graphs:
            netlist, forest = self.design(name)
            self._graphs[name] = build_timing_graph(netlist, forest)
        return self._graphs[name]

    def baseline(self, name: str) -> FlowResult:
        if name not in self._baselines:
            netlist, forest = self.design(name)
            # Same scenario set as the optimized arm: under MCMM both
            # columns must report the merged verdict or the table
            # compares a nominal baseline against a pessimistic merge.
            self._baselines[name] = run_routing_flow(
                netlist, forest, scenarios=self.config.scenario_set()
            )
        return self._baselines[name]

    def optimized(self, name: str) -> FlowResult:
        if name not in self._optimized:
            netlist, forest = self.design(name)
            self._optimized[name] = run_routing_flow(
                netlist,
                forest,
                model=self.model(),
                refinement_config=self.config.refinement_config(),
                budget=self.budget,
                checkpoint_dir=self.checkpoint_dir,
                resume=self.checkpoint_dir is not None,
                timing_graph=self.timing_graph(name),
                scenarios=self.config.scenario_set(),
            )
        return self._optimized[name]

    def samples(self) -> List[DesignSample]:
        if self._samples is None:
            self._samples = make_training_samples(
                names=list(self.config.designs),
                scale=self.config.scale,
                train_names=list(self.config.train_designs),
                augment=self.config.augment,
            )
        return self._samples

    def pristine_samples(self) -> List[DesignSample]:
        """Samples excluding disturbance-augmented variants."""
        return [s for s in self.samples() if "@aug" not in s.name]

    def model(self) -> TimingEvaluator:
        if self._model is None:
            evaluator_path = None
            if self.checkpoint_dir is not None:
                evaluator_path = self.checkpoint_dir / "evaluator.npz"
                if evaluator_path.exists():
                    try:
                        self._model = load_evaluator(evaluator_path)
                        return self._model
                    except CheckpointError:
                        pass  # corrupt/foreign file: fall through and retrain
            cfg = self.config
            model = TimingEvaluator(EvaluatorConfig(hidden=cfg.hidden, seed=cfg.seed))
            train_evaluator(
                model,
                self.samples(),
                TrainerConfig(
                    epochs=cfg.train_epochs,
                    learning_rate=cfg.learning_rate,
                    patience=cfg.patience,
                ),
                budget=self.budget,
                checkpoint_path=(
                    self.checkpoint_dir / "trainer.npz"
                    if self.checkpoint_dir is not None
                    else None
                ),
                resume=self.checkpoint_dir is not None,
            )
            if evaluator_path is not None:
                save_evaluator(model, evaluator_path)
            self._model = model
        return self._model


_CONTEXTS: Dict[ExperimentConfig, ExperimentContext] = {}

# Process-level runtime defaults, set by the CLI (python -m repro
# --timeout/--checkpoint-dir) before artifact modules call get_context.
_RUNTIME_DEFAULTS: Dict[str, object] = {"checkpoint_dir": None, "budget": None}


def set_runtime_defaults(
    checkpoint_dir: Optional[Union[str, Path]] = None,
    budget: Optional[Budget] = None,
) -> None:
    """Install checkpoint-dir/budget defaults for subsequently built contexts."""
    _RUNTIME_DEFAULTS["checkpoint_dir"] = checkpoint_dir
    _RUNTIME_DEFAULTS["budget"] = budget


def get_context(config: Optional[ExperimentConfig] = None) -> ExperimentContext:
    """Process-cached context for ``config`` (default: env profile).

    New contexts pick up the runtime defaults installed by
    :func:`set_runtime_defaults` (or the ``REPRO_CHECKPOINT_DIR``
    environment variable when no default is set).
    """
    config = config or ExperimentConfig.from_env()
    if config not in _CONTEXTS:
        checkpoint_dir = _RUNTIME_DEFAULTS["checkpoint_dir"] or os.environ.get(
            "REPRO_CHECKPOINT_DIR"
        )
        _CONTEXTS[config] = ExperimentContext(
            config,
            checkpoint_dir=checkpoint_dir,
            budget=_RUNTIME_DEFAULTS["budget"],
        )
    return _CONTEXTS[config]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Plain-text table renderer shared by all experiment modules."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def cli_entry(run_fn, format_fn) -> int:
    """Shared ``python -m repro.experiments.<name>`` entry point.

    Configures console logging (so instrumented stages report through
    the ``repro`` logger instead of bare prints) and writes the
    formatted artifact to stdout.
    """
    import sys

    from repro.obs import setup_logging

    setup_logging()
    sys.stdout.write(format_fn(run_fn()) + "\n")
    return 0
