"""Shared experiment context with process-level caching.

Regenerating every table/figure needs the same expensive artifacts:
prepared designs, baseline flow runs, oracle-labelled samples and a
trained evaluator.  ``get_context`` memoizes them per configuration so
the whole experiment suite costs one pipeline, and individual
benchmarks stay fast enough for CI.

Two profiles are provided:

* ``ExperimentConfig.quick()`` — three small designs, light training;
  used by the test suite and the default benchmark run.
* ``ExperimentConfig.paper()`` — all ten designs with the paper's
  train/test split; the full reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.refine import RefinementConfig
from repro.flow.pipeline import FlowResult, make_training_samples, prepare_design, run_routing_flow
from repro.netlist.benchmarks import BENCHMARKS, TEST_BENCHMARKS, TRAIN_BENCHMARKS
from repro.netlist.netlist import Netlist
from repro.steiner.forest import SteinerForest
from repro.timing_model.dataset import DesignSample
from repro.timing_model.model import EvaluatorConfig, TimingEvaluator
from repro.timing_model.train import TrainerConfig, train_evaluator


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment modules."""

    designs: Tuple[str, ...]
    train_designs: Tuple[str, ...]
    scale: float = 1.0
    hidden: int = 32
    train_epochs: int = 300
    learning_rate: float = 5e-3
    patience: int = 80
    augment: int = 4
    refinement_iterations: int = 60
    validate_every: int = 1
    random_trials: int = 10
    seed: int = 42

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Small profile for tests and fast benchmark runs."""
        return ExperimentConfig(
            designs=("spm", "cic_decimator", "APU", "usb_cdc_core"),
            train_designs=("spm", "cic_decimator", "APU"),
            train_epochs=400,
            patience=120,
            augment=2,
            refinement_iterations=25,
            random_trials=5,
        )

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The full ten-design reproduction with the paper's split."""
        return ExperimentConfig(
            designs=tuple(BENCHMARKS),
            train_designs=tuple(TRAIN_BENCHMARKS),
        )

    @staticmethod
    def full() -> "ExperimentConfig":
        """All ten designs at half scale — the overnight-free middle
        ground between ``quick`` (CI) and ``paper`` (hours)."""
        return ExperimentConfig(
            designs=tuple(BENCHMARKS),
            train_designs=tuple(TRAIN_BENCHMARKS),
            scale=0.5,
            # Ten designs need a real training budget: 150 epochs leaves
            # the evaluator underfit (negative train R²) even though the
            # validated refinement still harvests improvements.
            train_epochs=400,
            patience=120,
            augment=1,
            refinement_iterations=25,
            random_trials=5,
        )

    @staticmethod
    def from_env() -> "ExperimentConfig":
        """Profile selected by the REPRO_PROFILE environment variable."""
        profile = os.environ.get("REPRO_PROFILE", "quick")
        if profile == "paper":
            return ExperimentConfig.paper()
        if profile == "full":
            return ExperimentConfig.full()
        return ExperimentConfig.quick()

    def refinement_config(self) -> RefinementConfig:
        return RefinementConfig(
            max_iterations=self.refinement_iterations,
            validate_every=self.validate_every,
        )


class ExperimentContext:
    """Lazily-built, cached pipeline artifacts for one configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._designs: Dict[str, Tuple[Netlist, SteinerForest]] = {}
        self._baselines: Dict[str, FlowResult] = {}
        self._optimized: Dict[str, FlowResult] = {}
        self._samples: Optional[List[DesignSample]] = None
        self._model: Optional[TimingEvaluator] = None

    # ------------------------------------------------------------------
    def design(self, name: str) -> Tuple[Netlist, SteinerForest]:
        if name not in self._designs:
            self._designs[name] = prepare_design(name, scale=self.config.scale)
        return self._designs[name]

    def baseline(self, name: str) -> FlowResult:
        if name not in self._baselines:
            netlist, forest = self.design(name)
            self._baselines[name] = run_routing_flow(netlist, forest)
        return self._baselines[name]

    def optimized(self, name: str) -> FlowResult:
        if name not in self._optimized:
            netlist, forest = self.design(name)
            self._optimized[name] = run_routing_flow(
                netlist,
                forest,
                model=self.model(),
                refinement_config=self.config.refinement_config(),
            )
        return self._optimized[name]

    def samples(self) -> List[DesignSample]:
        if self._samples is None:
            self._samples = make_training_samples(
                names=list(self.config.designs),
                scale=self.config.scale,
                train_names=list(self.config.train_designs),
                augment=self.config.augment,
            )
        return self._samples

    def pristine_samples(self) -> List[DesignSample]:
        """Samples excluding disturbance-augmented variants."""
        return [s for s in self.samples() if "@aug" not in s.name]

    def model(self) -> TimingEvaluator:
        if self._model is None:
            cfg = self.config
            model = TimingEvaluator(EvaluatorConfig(hidden=cfg.hidden, seed=cfg.seed))
            train_evaluator(
                model,
                self.samples(),
                TrainerConfig(
                    epochs=cfg.train_epochs,
                    learning_rate=cfg.learning_rate,
                    patience=cfg.patience,
                ),
            )
            self._model = model
        return self._model


_CONTEXTS: Dict[ExperimentConfig, ExperimentContext] = {}


def get_context(config: Optional[ExperimentConfig] = None) -> ExperimentContext:
    """Process-cached context for ``config`` (default: env profile)."""
    config = config or ExperimentConfig.from_env()
    if config not in _CONTEXTS:
        _CONTEXTS[config] = ExperimentContext(config)
    return _CONTEXTS[config]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Plain-text table renderer shared by all experiment modules."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
