"""Ablation studies of TSteiner's design choices (DESIGN.md §6).

Not part of the paper's tables, but the paper motivates several
components whose value is worth quantifying on this substrate:

* adaptive theta (Eq. 9) vs fixed stepsizes;
* the per-step stochastic optimizer of Eq. (7) vs accumulated Adam;
* LSE smoothing temperature gamma;
* hybrid oracle validation vs pure evaluator acceptance (this repo's
  addition — 'evaluator' mode is the paper's literal Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional

from repro.core.penalty import PenaltyConfig
from repro.core.refine import RefinementConfig
from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.parallel import ablation_variant, export_evaluator, parallel_map


@dataclass
class AblationRow:
    variant: str
    wns_ratio: float
    tns_ratio: float
    accepted: int
    iterations: int


@dataclass
class AblationResult:
    design: str
    rows: List[AblationRow]


def _variants(base: RefinementConfig) -> Dict[str, RefinementConfig]:
    return {
        "paper-SO+hybrid": base,
        "adam+hybrid": dc_replace(base, optimizer="adam"),
        "evaluator-only": dc_replace(base, acceptance="evaluator"),
        "no-backtrack": dc_replace(base, backtrack=1.0),
        "gamma=1": dc_replace(base, penalty=PenaltyConfig(gamma=1.0)),
        "gamma=50": dc_replace(base, penalty=PenaltyConfig(gamma=50.0)),
    }


def run(
    config: Optional[ExperimentConfig] = None,
    design: Optional[str] = None,
    jobs: Optional[int] = None,
) -> AblationResult:
    ctx = get_context(config)
    cfg = ctx.config
    name = design or cfg.designs[0]
    base_result = ctx.baseline(name)
    evaluator = export_evaluator(ctx, jobs)

    variants = _variants(cfg.refinement_config())
    flows = parallel_map(
        ablation_variant,
        [(cfg, name, label, rcfg, evaluator) for label, rcfg in variants.items()],
        jobs=jobs,
        label="ablation_variants",
    )
    rows: List[AblationRow] = []
    for label, flow in zip(variants, flows):
        ref = flow.refinement
        rows.append(
            AblationRow(
                variant=label,
                wns_ratio=flow.wns / base_result.wns if abs(base_result.wns) > 1e-12 else 1.0,
                tns_ratio=flow.tns / base_result.tns if abs(base_result.tns) > 1e-12 else 1.0,
                accepted=ref.accepted if ref else 0,
                iterations=ref.iterations if ref else 0,
            )
        )
    return AblationResult(design=name, rows=rows)


def format_result(result: AblationResult) -> str:
    headers = ["Variant", "WNS ratio", "TNS ratio", "Accepted", "Iterations"]
    rows = [[r.variant, r.wns_ratio, r.tns_ratio, r.accepted, r.iterations] for r in result.rows]
    return format_table(headers, rows, title=f"Ablation on {result.design} (ratios vs baseline)")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
