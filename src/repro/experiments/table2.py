"""Table II — concurrent timing-optimization performance.

For every design, both arms of the flow run on identical inputs:

* baseline — Steiner construction + edge shifting -> GR -> DR -> STA;
* TSteiner — the same with gradient-based refinement before GR.

Reported per design: sign-off WNS / TNS / #Vios and routed WL / #Vias /
#DRV, plus the average-ratio row the paper prints (baseline
normalized to 1.000).  Shape target: WNS and TNS ratios <= 1.0 on
average (TSteiner never loses thanks to validated acceptance), with
routing quality within a fraction of a percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.parallel import design_flow_pair, export_evaluator, parallel_map
from repro.flow.pipeline import FlowResult


@dataclass
class Table2Row:
    name: str
    baseline: FlowResult
    optimized: FlowResult

    @property
    def wns_ratio(self) -> float:
        return _ratio(self.optimized.wns, self.baseline.wns)

    @property
    def tns_ratio(self) -> float:
        return _ratio(self.optimized.tns, self.baseline.tns)

    @property
    def vios_ratio(self) -> float:
        return _ratio(self.optimized.num_violations, self.baseline.num_violations)

    @property
    def wl_ratio(self) -> float:
        return _ratio(self.optimized.wirelength, self.baseline.wirelength)

    @property
    def vias_ratio(self) -> float:
        return _ratio(self.optimized.num_vias, self.baseline.num_vias)

    @property
    def drv_ratio(self) -> float:
        return _ratio(self.optimized.num_drvs, self.baseline.num_drvs)


def _ratio(opt: float, base: float) -> float:
    if abs(base) < 1e-12:
        return 1.0
    return float(opt) / float(base)


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def average_ratios(self) -> Dict[str, float]:
        keys = ["wns_ratio", "tns_ratio", "vios_ratio", "wl_ratio", "vias_ratio", "drv_ratio"]
        return {k: float(np.mean([getattr(r, k) for r in self.rows])) for k in keys}

    @property
    def mean_wns_improvement(self) -> float:
        """Average relative WNS improvement (paper headline: 11.2 %)."""
        return 1.0 - self.average_ratios()["wns_ratio"]

    @property
    def mean_tns_improvement(self) -> float:
        return 1.0 - self.average_ratios()["tns_ratio"]


def run(config: Optional[ExperimentConfig] = None, jobs: Optional[int] = None) -> Table2Result:
    ctx = get_context(config)
    names = list(ctx.config.designs)
    evaluator = export_evaluator(ctx, jobs)
    pairs = parallel_map(
        design_flow_pair,
        [(ctx.config, name, evaluator) for name in names],
        jobs=jobs,
        label="table2_designs",
    )
    rows = [Table2Row(name, base, opt) for name, (base, opt) in zip(names, pairs)]
    return Table2Result(rows=rows)


def format_result(result: Table2Result) -> str:
    headers = [
        "Benchmark",
        "WNS(b)", "TNS(b)", "#Vios(b)", "WL(b)", "#Vias(b)", "#DRV(b)",
        "WNS(t)", "TNS(t)", "#Vios(t)", "WL(t)", "#Vias(t)", "#DRV(t)",
    ]
    rows = []
    for r in result.rows:
        b, t = r.baseline, r.optimized
        rows.append(
            [
                r.name,
                b.wns, b.tns, b.num_violations, b.wirelength, b.num_vias, b.num_drvs,
                t.wns, t.tns, t.num_violations, t.wirelength, t.num_vias, t.num_drvs,
            ]
        )
    avg = result.average_ratios()
    rows.append(
        [
            "Average",
            1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
            avg["wns_ratio"], avg["tns_ratio"], avg["vios_ratio"],
            avg["wl_ratio"], avg["vias_ratio"], avg["drv_ratio"],
        ]
    )
    return format_table(headers, rows, title="TABLE II: Sign-off optimization (b=baseline, t=TSteiner)")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
