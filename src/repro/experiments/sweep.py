"""Clock-period sweep: how sign-off metrics scale with the constraint.

Not a paper artifact, but the calibration tool used to pick the
benchmark clock periods (DESIGN.md §2): sweeping the period of one
design shows where WNS crosses zero, how TNS grows as the constraint
tightens, and how many endpoints violate at each point — the data
needed to place a design in the paper-like 'everything violates
meaningfully' regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentConfig, format_table
from repro.flow.pipeline import prepare_design, run_routing_flow
from repro.pdk.clocks import ClockSpec


@dataclass
class SweepPoint:
    period: float
    wns: float
    tns: float
    violations: int
    endpoints: int


@dataclass
class SweepResult:
    design: str
    points: List[SweepPoint]

    def crossover_period(self) -> Optional[float]:
        """Smallest swept period at which the design meets timing."""
        passing = [p.period for p in self.points if p.wns >= 0]
        return min(passing) if passing else None


def run(
    design: str = "APU",
    period_scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0),
    scale: float = 1.0,
) -> SweepResult:
    """Re-time one design across clock periods (one routing pass each)."""
    netlist, forest = prepare_design(design, scale=scale)
    base_period = netlist.clock.period
    points: List[SweepPoint] = []
    for s in period_scales:
        netlist.clock = ClockSpec(period=base_period * s)
        # The STA engine caches required times at construction, so a
        # fresh flow run (which builds a fresh engine) is required.
        result = run_routing_flow(netlist, forest)
        points.append(
            SweepPoint(
                period=base_period * s,
                wns=result.wns,
                tns=result.tns,
                violations=result.num_violations,
                endpoints=len(netlist.endpoints()),
            )
        )
    netlist.clock = ClockSpec(period=base_period)
    return SweepResult(design=design, points=points)


def format_result(result: SweepResult) -> str:
    headers = ["period (ns)", "WNS", "TNS", "#Vios", "#Endpoints"]
    rows = [
        [p.period, p.wns, p.tns, p.violations, p.endpoints] for p in result.points
    ]
    cross = result.crossover_period()
    title = f"Clock sweep on {result.design}" + (
        f" (meets timing at {cross:.3g} ns)" if cross else " (violates at all periods)"
    )
    return format_table(headers, rows, title=title)


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
