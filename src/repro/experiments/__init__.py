"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(config) -> <result dataclass>`` plus a
``format_table`` helper that renders rows the way the paper prints
them.  ``repro.experiments.common`` owns the shared, cached pipeline
context (prepared designs, baseline flows, trained evaluator) so that
regenerating all six artifacts costs one training run, not six.
"""

from repro.experiments.common import ExperimentConfig, ExperimentContext, get_context
from repro.experiments import table1, table2, table3, table4, fig2, fig5, ablation, eco, sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "get_context",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig5",
    "ablation",
    "eco",
    "sweep",
]
