"""Table IV — runtime breakdown.

Per design and arm: total runtime plus the TSteiner / global-routing /
detailed-routing split, and the paper's ratio-average row.  Shape
targets: the TSteiner arm's global-routing time is slightly above
baseline (feature-extraction probe), detailed routing is *faster* when
DRVs drop (the paper reports 0.934x), and the total overhead stays a
modest multiple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.parallel import design_flow_pair, export_evaluator, parallel_map


@dataclass
class Table4Row:
    name: str
    base_total: float
    base_groute: float
    base_droute: float
    opt_total: float
    opt_tsteiner: float
    opt_groute: float
    opt_droute: float


@dataclass
class Table4Result:
    rows: List[Table4Row]

    def ratio_averages(self) -> Dict[str, float]:
        def safe_ratio(num: float, den: float) -> float:
            return num / den if den > 1e-12 else 1.0

        totals = [safe_ratio(r.opt_total, r.base_total) for r in self.rows]
        groutes = [safe_ratio(r.opt_groute, r.base_groute) for r in self.rows]
        droutes = [safe_ratio(r.opt_droute, r.base_droute) for r in self.rows]
        return {
            "total": float(np.mean(totals)),
            "groute": float(np.mean(groutes)),
            "droute": float(np.mean(droutes)),
        }


def run(config: Optional[ExperimentConfig] = None, jobs: Optional[int] = None) -> Table4Result:
    ctx = get_context(config)
    names = list(ctx.config.designs)
    evaluator = export_evaluator(ctx, jobs)
    pairs = parallel_map(
        design_flow_pair,
        [(ctx.config, name, evaluator) for name in names],
        jobs=jobs,
        label="table4_designs",
    )
    rows: List[Table4Row] = []
    for name, (base, opt) in zip(names, pairs):
        rows.append(
            Table4Row(
                name=name,
                base_total=base.total_runtime,
                base_groute=base.runtimes.get("groute", 0.0),
                base_droute=base.runtimes.get("droute", 0.0),
                opt_total=opt.total_runtime,
                opt_tsteiner=opt.runtimes.get("tsteiner", 0.0),
                opt_groute=opt.runtimes.get("groute", 0.0),
                opt_droute=opt.runtimes.get("droute", 0.0),
            )
        )
    return Table4Result(rows=rows)


def format_result(result: Table4Result) -> str:
    headers = [
        "Benchmark",
        "Total(b)", "GR(b)", "DR(b)",
        "Total(t)", "TSteiner", "GR(t)", "DR(t)",
    ]
    rows = [
        [
            r.name,
            r.base_total, r.base_groute, r.base_droute,
            r.opt_total, r.opt_tsteiner, r.opt_groute, r.opt_droute,
        ]
        for r in result.rows
    ]
    avg = result.ratio_averages()
    rows.append(["RatioAvg", 1.0, 1.0, 1.0, avg["total"], "-", avg["groute"], avg["droute"]])
    return format_table(headers, rows, title="TABLE IV: Runtime breakdown (s)")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
