"""Fig. 2 — distribution of sign-off TNS ratio under random disturbance.

The paper's motivating observation: randomly moving Steiner points
changes sign-off TNS noticeably (ratio spread around 1.0), but the
average effect is not an improvement — hence the need for *guided*
refinement.  ``run`` produces the per-trial ratio samples for every
design; ``format_result`` prints a text histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.parallel import design_random_trials, parallel_map


@dataclass
class Fig2Result:
    ratios: Dict[str, List[float]]  # design -> TNS ratios per trial

    def all_ratios(self) -> np.ndarray:
        return np.array([v for vs in self.ratios.values() for v in vs])

    def mean_ratio(self) -> float:
        arr = self.all_ratios()
        return float(arr.mean()) if arr.size else 1.0

    def spread(self) -> float:
        arr = self.all_ratios()
        return float(arr.std()) if arr.size else 0.0


def run(config: Optional[ExperimentConfig] = None, jobs: Optional[int] = None) -> Fig2Result:
    ctx = get_context(config)
    cfg = ctx.config
    all_stats = parallel_map(
        design_random_trials,
        [(cfg, name, cfg.seed) for name in cfg.designs],
        jobs=jobs,
        label="fig2_designs",
    )
    ratios: Dict[str, List[float]] = {
        name: stats.tns_ratios for name, stats in zip(cfg.designs, all_stats)
    }
    return Fig2Result(ratios=ratios)


def format_result(result: Fig2Result, bins: int = 10) -> str:
    arr = result.all_ratios()
    if arr.size == 0:
        return "Fig. 2: no violating designs"
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-9:
        hi = lo + 1e-9
    counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    lines = [
        "FIG 2: sign-off TNS ratio under random Steiner disturbance",
        f"trials={arr.size}  mean={arr.mean():.4f}  std={arr.std():.4f}",
    ]
    peak = max(int(counts.max()), 1)
    for c, e0, e1 in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(40 * c / peak))
        lines.append(f"  [{e0:6.3f}, {e1:6.3f})  {bar} {c}")
    return "\n".join(lines)


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
