"""Table III — sign-off timing prediction performance (R² scores).

Per design: R² of the evaluator's predicted arrival time on all pins
('arrival-all') and on endpoints only ('arrival-ends'), plus the
'Avg. Train' / 'Avg. Test' columns.  Shape target: train averages near
1.0, held-out averages high but visibly lower — matching the paper's
0.9959 / 0.9280 (all pins) and 0.9974 / 0.8871 (endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.timing_model.train import evaluate_r2


@dataclass
class Table3Result:
    scores: Dict[str, Dict[str, float]]  # design -> task -> R²
    train_designs: List[str]
    test_designs: List[str]

    def average(self, task: str, train: bool) -> float:
        names = self.train_designs if train else self.test_designs
        vals = [self.scores[n][task] for n in names if n in self.scores]
        return float(np.mean(vals)) if vals else float("nan")


def run(config: Optional[ExperimentConfig] = None) -> Table3Result:
    ctx = get_context(config)
    cfg = ctx.config
    model = ctx.model()
    scores = evaluate_r2(model, ctx.pristine_samples())
    train = [n for n in cfg.designs if n in cfg.train_designs]
    test = [n for n in cfg.designs if n not in cfg.train_designs]
    return Table3Result(scores=scores, train_designs=train, test_designs=test)


def format_result(result: Table3Result) -> str:
    headers = ["Task"] + list(result.scores) + ["Avg.Train", "Avg.Test"]
    rows = []
    for task in ("arrival_all", "arrival_ends"):
        row = [task.replace("_", "-")]
        row.extend(result.scores[n][task] for n in result.scores)
        row.append(result.average(task, train=True))
        row.append(result.average(task, train=False))
        rows.append(row)
    return format_table(headers, rows, title="TABLE III: Arrival-time prediction R²")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
