"""Table I — benchmark statistics.

Reproduces the paper's benchmark-statistics table: per design the
number of cell (pin) nodes and Steiner nodes, net and cell edge counts,
and timing endpoints, plus 'Total Train' / 'Total Test' rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import ExperimentConfig, format_table, get_context
from repro.experiments.parallel import design_stats, parallel_map
from repro.netlist.stats import NetlistStats, aggregate_stats


@dataclass
class Table1Result:
    rows: List[NetlistStats]
    total_train: NetlistStats
    total_test: NetlistStats


def run(config: Optional[ExperimentConfig] = None, jobs: Optional[int] = None) -> Table1Result:
    ctx = get_context(config)
    cfg = ctx.config
    rows = parallel_map(
        design_stats, [(cfg, name) for name in cfg.designs], jobs=jobs, label="table1_designs"
    )
    train_rows: List[NetlistStats] = []
    test_rows: List[NetlistStats] = []
    for name, stats in zip(cfg.designs, rows):
        (train_rows if name in cfg.train_designs else test_rows).append(stats)
    return Table1Result(
        rows=rows,
        total_train=aggregate_stats(train_rows, "Total Train"),
        total_test=aggregate_stats(test_rows, "Total Test"),
    )


def format_result(result: Table1Result) -> str:
    headers = ["Benchmark", "#Cell", "#Steiner", "#NetEdges", "#CellEdges", "#Endpoints"]
    rows = [r.as_row() for r in result.rows]
    rows.append(result.total_train.as_row())
    rows.append(result.total_test.as_row())
    return format_table(headers, rows, title="TABLE I: Benchmark statistics")


if __name__ == "__main__":
    from repro.experiments.common import cli_entry

    raise SystemExit(cli_entry(run, format_result))
