"""Process-pool experiment runner: fan per-design work across workers.

Every table/figure driver loops over independent designs (or ablation
variants); on a multi-core host those iterations can run in separate
processes.  :func:`parallel_map` is the shared fan-out primitive:

* **Deterministic ordering** — results come back in item order no
  matter which worker finished first, and a serial run produces the
  exact same list (the ``--jobs 2`` parity test in
  ``tests/test_parallel.py`` asserts equality).
* **Telemetry stitching** — each worker records its own JSONL trace;
  the parent replays those events into its own run (tagged with a
  ``worker`` index, span ids renumbered per worker) and merges the
  workers' metric registries via :meth:`Telemetry.merge_metrics`, so
  ``python -m repro report`` sees one coherent trace.
* **Graceful serial fallback** — anything that prevents fan-out (an
  unpicklable task, a broken pool, a sandbox without working
  subprocesses) degrades to the in-process loop with a
  ``parallel_fallback`` event instead of failing the artifact.

Workers are full processes: they rebuild their own
:class:`~repro.experiments.common.ExperimentContext` from the (picklable)
config.  The one artifact that must not be recomputed per worker is the
trained evaluator — :func:`export_evaluator` saves the parent's model
once and workers load it via the existing npz serialization.

The ``--jobs N`` flag on ``python -m repro`` (and ``jobs=`` on each
driver's ``run``) selects the worker count; ``N <= 1`` is serial,
``N = 0`` means one worker per CPU.
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import Telemetry, get_telemetry, telemetry_session

#: Span ids from worker ``i`` are shifted into this worker's band when
#: stitched into the parent trace, so they cannot collide with parent
#: span ids or with other workers'.
_SPAN_BAND = 1_000_000

_default_jobs = 1


def set_default_jobs(jobs: Optional[int]) -> None:
    """Install the process-wide default worker count (``--jobs``)."""
    global _default_jobs
    _default_jobs = 1 if jobs is None else int(jobs)


def get_default_jobs() -> int:
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else the ``--jobs`` default.

    ``0`` (or negative) means "one worker per CPU".
    """
    n = _default_jobs if jobs is None else int(jobs)
    if n <= 0:
        n = os.cpu_count() or 1
    return n


# ----------------------------------------------------------------------
# Worker entry + trace stitching
# ----------------------------------------------------------------------
def _worker(task: Tuple[Callable[[Any], Any], Any, int, Optional[str], str]):
    """Top-level (hence picklable) worker: run one item under its own trace."""
    fn, item, index, trace_path, run_id = task
    if trace_path is None:
        return index, fn(item)
    with Telemetry(path=trace_path, run_id=run_id) as tel:
        with telemetry_session(tel):
            result = fn(item)
    return index, result


def _stitch_trace(tel, worker_index: int, trace_path: str) -> None:
    """Replay one worker's JSONL trace into the parent telemetry run.

    Lifecycle events are dropped (the parent run has its own), the
    final ``metrics`` event is merged into the parent registry, and
    span ids are renumbered into a per-worker band so the stitched
    trace still forms one consistent span forest.
    """
    offset = (worker_index + 1) * _SPAN_BAND
    try:
        fh = open(trace_path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            try:
                rec = dict(json.loads(line))
            except ValueError:
                continue
            kind = rec.pop("kind", None)
            for reserved in ("run", "seq", "t"):
                rec.pop(reserved, None)
            if kind in (None, "run_start", "run_end"):
                continue
            if kind == "metrics":
                tel.merge_metrics(rec)
                continue
            for key in ("span", "parent"):
                if isinstance(rec.get(key), int):
                    rec[key] = rec[key] + offset
            rec.pop("worker", None)
            tel.event(kind, worker=worker_index, **rec)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    label: str = "parallel_map",
) -> List[Any]:
    """``[fn(item) for item in items]``, fanned across worker processes.

    ``fn`` must be a module-level callable and ``fn(item)`` picklable —
    the per-design task functions below qualify.  Results are returned
    in item order.  With an effective job count of one (or one item)
    the loop runs in-process under the parent telemetry; pool-level
    failures fall back to the same serial loop.  Exceptions raised by
    ``fn`` itself propagate unchanged, exactly as in a serial run.
    """
    items = list(items)
    n = min(resolve_jobs(jobs), len(items))
    if n <= 1:
        return [fn(item) for item in items]
    tel = get_telemetry()
    run_id = tel.run_id or "run"
    results: List[Any] = [None] * len(items)
    tmpdir = tempfile.mkdtemp(prefix="repro-parallel-")
    try:
        tasks = []
        for i, item in enumerate(items):
            trace = os.path.join(tmpdir, f"worker-{i:03d}.jsonl") if tel.enabled else None
            tasks.append((fn, item, i, trace, f"{run_id}-w{i}"))
        try:
            with tel.span(label, jobs=n, tasks=len(items)):
                with ProcessPoolExecutor(max_workers=n) as pool:
                    for index, value in pool.map(_worker, tasks):
                        results[index] = value
                for _, _, i, trace, _ in tasks:
                    if trace is not None:
                        _stitch_trace(tel, i, trace)
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool, OSError) as exc:
            # Could not fan out (unpicklable task, no subprocesses, dead
            # pool): degrade to the serial loop the caller would have run.
            if tel.enabled:
                tel.count("parallel.fallbacks")
                tel.event(
                    "parallel_fallback",
                    label=label,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return [fn(item) for item in items]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    if tel.enabled:
        tel.count("parallel.maps")
        tel.count("parallel.tasks", len(items))
    return results


# ----------------------------------------------------------------------
# Shared per-design task functions (module-level: picklable)
# ----------------------------------------------------------------------
_export_dir: Optional[str] = None


def export_evaluator(ctx, jobs: Optional[int] = None) -> Optional[str]:
    """Train (or fetch) the context's evaluator and save it for workers.

    Returns the npz path to embed in task payloads, or ``None`` when
    the effective job count is serial — workers then share the parent
    process and its cached model, so nothing needs to be written.
    """
    global _export_dir
    if resolve_jobs(jobs) <= 1:
        return None
    from repro.timing_model.serialize import save_evaluator

    if _export_dir is None:
        _export_dir = tempfile.mkdtemp(prefix="repro-evaluator-")
        atexit.register(shutil.rmtree, _export_dir, ignore_errors=True)
    path = Path(_export_dir) / f"evaluator-{id(ctx):x}.npz"
    if not path.exists():
        save_evaluator(ctx.model(), path)
    return str(path)


def _context_for(config, evaluator_path: Optional[str]):
    """Worker-side context; loads the shipped evaluator instead of training."""
    from repro.experiments.common import get_context
    from repro.timing_model.serialize import load_evaluator

    ctx = get_context(config)
    if evaluator_path is not None and ctx._model is None:
        ctx._model = load_evaluator(evaluator_path)
    return ctx


def design_stats(payload):
    """(config, name) -> NetlistStats for one design (Table I)."""
    config, name = payload
    from repro.netlist.stats import collect_stats

    ctx = _context_for(config, None)
    netlist, forest = ctx.design(name)
    return collect_stats(netlist, forest)


def design_flow_pair(payload):
    """(config, name, evaluator_path) -> (baseline, optimized) FlowResults."""
    config, name, evaluator_path = payload
    ctx = _context_for(config, evaluator_path)
    return ctx.baseline(name), ctx.optimized(name)


def design_random_trials(payload):
    """(config, name, seed) -> DisturbanceStats for one design (Figs. 2/5)."""
    config, name, seed = payload
    from repro.flow.baseline import random_move_trials

    ctx = _context_for(config, None)
    netlist, forest = ctx.design(name)
    return random_move_trials(
        netlist, forest, ctx.baseline(name), trials=config.random_trials, seed=seed
    )


def ablation_variant(payload):
    """(config, design, label, refinement_config, evaluator_path) -> FlowResult."""
    config, name, _label, rcfg, evaluator_path = payload
    from repro.flow.pipeline import run_routing_flow

    ctx = _context_for(config, evaluator_path)
    netlist, forest = ctx.design(name)
    return run_routing_flow(netlist, forest, model=ctx.model(), refinement_config=rcfg)
