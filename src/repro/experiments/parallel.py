"""Process-pool experiment runner: fan per-design work across workers.

Every table/figure driver loops over independent designs (or ablation
variants); on a multi-core host those iterations can run in separate
processes.  :func:`parallel_map` is the shared fan-out primitive:

* **Deterministic ordering** — results come back in item order no
  matter which worker finished first, and a serial run produces the
  exact same list (the ``--jobs 2`` parity test in
  ``tests/test_parallel.py`` asserts equality).
* **Telemetry stitching** — each worker records its own JSONL trace;
  the parent replays those events into its own run (tagged with a
  ``worker`` index, span ids renumbered per worker) and merges the
  workers' metric registries via :meth:`Telemetry.merge_metrics`, so
  ``python -m repro report`` sees one coherent trace.
* **Graceful serial fallback** — anything that prevents fan-out (an
  unpicklable task, a broken pool, a sandbox without working
  subprocesses) degrades to the in-process loop with a
  ``parallel_fallback`` event instead of failing the artifact.
* **Typed task failures** — a task that raises is captured inside its
  worker, the sibling tasks finish, and the failures come back as one
  :class:`~repro.runtime.errors.WorkerError` naming the failing design
  (no raw pool tracebacks; see ``parallel_map``).

Workers are full processes: they rebuild their own
:class:`~repro.experiments.common.ExperimentContext` from the (picklable)
config.  The one artifact that must not be recomputed per worker is the
trained evaluator — :func:`export_evaluator` saves the parent's model
once and workers load it via the existing npz serialization.

The ``--jobs N`` flag on ``python -m repro`` (and ``jobs=`` on each
driver's ``run``) selects the worker count; ``N <= 1`` is serial,
``N = 0`` means one worker per CPU.
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import Telemetry, get_telemetry, telemetry_session

#: Span ids from worker ``i`` are shifted into this worker's band when
#: stitched into the parent trace, so they cannot collide with parent
#: span ids or with other workers'.
_SPAN_BAND = 1_000_000

_default_jobs = 1


def set_default_jobs(jobs: Optional[int]) -> None:
    """Install the process-wide default worker count (``--jobs``)."""
    global _default_jobs
    _default_jobs = 1 if jobs is None else int(jobs)


def get_default_jobs() -> int:
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else the ``--jobs`` default.

    ``0`` (or negative) means "one worker per CPU".
    """
    n = _default_jobs if jobs is None else int(jobs)
    if n <= 0:
        n = os.cpu_count() or 1
    return n


# ----------------------------------------------------------------------
# Worker entry + trace stitching
# ----------------------------------------------------------------------
#: Worker result markers: ``("ok", value)`` or ``("error", "Type: msg")``.
_OK = "ok"
_ERR = "error"


def _worker(task: Tuple[Callable[[Any], Any], Any, int, Optional[str], str]):
    """Top-level (hence picklable) worker: run one item under its own trace.

    Exceptions raised by ``fn`` are captured and shipped back as an
    ``("error", detail)`` marker instead of propagating: one failing
    design must not poison the pool or cancel the remaining tasks
    (``parallel_map`` turns the markers into a typed
    :class:`~repro.runtime.errors.WorkerError` after every task has
    finished).
    """
    fn, item, index, trace_path, run_id = task
    try:
        if trace_path is None:
            return index, (_OK, fn(item))
        with Telemetry(path=trace_path, run_id=run_id) as tel:
            with telemetry_session(tel):
                result = fn(item)
        return index, (_OK, result)
    except Exception as exc:
        return index, (_ERR, f"{type(exc).__name__}: {exc}")


def _stitch_trace(tel, worker_index: int, trace_path: str) -> None:
    """Replay one worker's JSONL trace into the parent telemetry run.

    Lifecycle events are dropped (the parent run has its own), the
    final ``metrics`` event is merged into the parent registry, and
    span ids are renumbered into a per-worker band so the stitched
    trace still forms one consistent span forest.
    """
    offset = (worker_index + 1) * _SPAN_BAND
    try:
        fh = open(trace_path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            try:
                rec = dict(json.loads(line))
            except ValueError:
                continue
            kind = rec.pop("kind", None)
            for reserved in ("run", "seq", "t"):
                rec.pop(reserved, None)
            if kind in (None, "run_start", "run_end"):
                continue
            if kind == "metrics":
                tel.merge_metrics(rec)
                continue
            for key in ("span", "parent"):
                if isinstance(rec.get(key), int):
                    rec[key] = rec[key] + offset
            rec.pop("worker", None)
            tel.event(kind, worker=worker_index, **rec)


def task_label(item: Any) -> str:
    """Best-effort human label for one task item (the design name).

    The per-design payload tuples below all carry the design name as
    their first string element; fall back to a repr for anything else.
    """
    if isinstance(item, str):
        return item
    if isinstance(item, (tuple, list)):
        for part in item:
            if isinstance(part, str):
                return part
    return repr(item)[:80]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    label: str = "parallel_map",
    label_of: Callable[[Any], str] = task_label,
) -> List[Any]:
    """``[fn(item) for item in items]``, fanned across worker processes.

    ``fn`` must be a module-level callable and ``fn(item)`` picklable —
    the per-design task functions below qualify.  Results are returned
    in item order.  With an effective job count of one (or one item)
    the loop runs in-process under the parent telemetry; pool-level
    failures fall back to the same serial loop.

    A task whose ``fn`` raises does not surface as a raw pool traceback
    and does not cancel its siblings: every remaining task still
    completes, and the failures are then raised as one
    :class:`~repro.runtime.errors.WorkerError` naming the failing
    design (``label_of``), with every ``(design, error)`` pair on
    ``.failures`` and the salvaged results (``None`` at the failed
    indices) on ``.results``.
    """
    from repro.runtime.errors import WorkerError

    items = list(items)
    n = min(resolve_jobs(jobs), len(items))
    if n <= 1:
        return [fn(item) for item in items]
    tel = get_telemetry()
    run_id = tel.run_id or "run"
    results: List[Any] = [None] * len(items)
    failures: List[Tuple[str, str]] = []
    tmpdir = tempfile.mkdtemp(prefix="repro-parallel-")
    try:
        tasks = []
        for i, item in enumerate(items):
            trace = os.path.join(tmpdir, f"worker-{i:03d}.jsonl") if tel.enabled else None
            tasks.append((fn, item, i, trace, f"{run_id}-w{i}"))
        try:
            with tel.span(label, jobs=n, tasks=len(items)):
                with ProcessPoolExecutor(max_workers=n) as pool:
                    for index, (status, value) in pool.map(_worker, tasks):
                        if status == _ERR:
                            failures.append((label_of(items[index]), value))
                            if tel.enabled:
                                tel.count("parallel.task_failures")
                                tel.event(
                                    "parallel_task_failed",
                                    label=label,
                                    design=label_of(items[index]),
                                    error=value,
                                )
                        else:
                            results[index] = value
                for _, _, i, trace, _ in tasks:
                    if trace is not None:
                        _stitch_trace(tel, i, trace)
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool, OSError) as exc:
            # Could not fan out (unpicklable task, no subprocesses, dead
            # pool): degrade to the serial loop the caller would have run.
            if tel.enabled:
                tel.count("parallel.fallbacks")
                tel.event(
                    "parallel_fallback",
                    label=label,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return [fn(item) for item in items]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    if failures:
        design, detail = failures[0]
        raise WorkerError(design, detail, failures=tuple(failures), results=results)
    if tel.enabled:
        tel.count("parallel.maps")
        tel.count("parallel.tasks", len(items))
    return results


# ----------------------------------------------------------------------
# Shared per-design task functions (module-level: picklable)
# ----------------------------------------------------------------------
_export_dir: Optional[str] = None


def export_evaluator(ctx, jobs: Optional[int] = None) -> Optional[str]:
    """Train (or fetch) the context's evaluator and save it for workers.

    Returns the npz path to embed in task payloads, or ``None`` when
    the effective job count is serial — workers then share the parent
    process and its cached model, so nothing needs to be written.
    """
    global _export_dir
    if resolve_jobs(jobs) <= 1:
        return None
    from repro.timing_model.serialize import save_evaluator

    if _export_dir is None:
        _export_dir = tempfile.mkdtemp(prefix="repro-evaluator-")
        atexit.register(shutil.rmtree, _export_dir, ignore_errors=True)
    path = Path(_export_dir) / f"evaluator-{id(ctx):x}.npz"
    if not path.exists():
        save_evaluator(ctx.model(), path)
    return str(path)


def _context_for(config, evaluator_path: Optional[str]):
    """Worker-side context; loads the shipped evaluator instead of training."""
    from repro.experiments.common import get_context
    from repro.timing_model.serialize import load_evaluator

    ctx = get_context(config)
    if evaluator_path is not None and ctx._model is None:
        ctx._model = load_evaluator(evaluator_path)
    return ctx


def design_stats(payload):
    """(config, name) -> NetlistStats for one design (Table I)."""
    config, name = payload
    from repro.netlist.stats import collect_stats

    ctx = _context_for(config, None)
    netlist, forest = ctx.design(name)
    return collect_stats(netlist, forest)


def design_flow_pair(payload):
    """(config, name, evaluator_path) -> (baseline, optimized) FlowResults."""
    config, name, evaluator_path = payload
    ctx = _context_for(config, evaluator_path)
    return ctx.baseline(name), ctx.optimized(name)


def design_random_trials(payload):
    """(config, name, seed) -> DisturbanceStats for one design (Figs. 2/5)."""
    config, name, seed = payload
    from repro.flow.baseline import random_move_trials

    ctx = _context_for(config, None)
    netlist, forest = ctx.design(name)
    return random_move_trials(
        netlist, forest, ctx.baseline(name), trials=config.random_trials, seed=seed
    )


def ablation_variant(payload):
    """(config, design, label, refinement_config, evaluator_path) -> FlowResult."""
    config, name, _label, rcfg, evaluator_path = payload
    from repro.flow.pipeline import run_routing_flow

    ctx = _context_for(config, evaluator_path)
    netlist, forest = ctx.design(name)
    return run_routing_flow(netlist, forest, model=ctx.model(), refinement_config=rcfg)
