"""Query fusion: coalesce concurrent interactive jobs per design.

The paper's premise is *concurrent* sign-off — many timing queries
against the same design should share one STA evaluation, not N
independent ones.  :class:`QueryBatcher` sits between admission and the
dispatch queue: an admitted ``whatif``/``signoff`` job parks briefly in
a per-``(kind, design)`` bucket instead of enqueueing immediately.  The
bucket flushes when it reaches ``max_batch`` members or when its linger
window expires (on the service's injectable async sleep, so chaos tests
fuse deterministically on virtual time).  A flush of one member
enqueues the member itself — the unbatched path, untouched bitwise; a
flush of W >= 2 members enqueues one *fused* carrier
:class:`~repro.serve.jobs.Job` whose handler answers all members in a
single scenario-batched dispatch:

* fused ``whatif`` — the W moves become W row groups of one
  ``ScenarioSTA.probe_batch`` PERT pass (docs/MCMM.md); the union
  recompute mask keeps every row bitwise-equal to its serial run;
* fused ``signoff`` — distinct ``(corners, mode)`` keys run once and
  identical queries share the answer (a repeated query against
  unchanged warm state is bitwise-idempotent).

Invariants the service relies on (and the chaos tests assert):

* members keep their own tickets and ids — the carrier is internal,
  so accounting (``accepted``/``done``/``lost``) stays per member;
* pending-by-kind counts are member-weighted: +1 when a member enters
  a bucket, -``width()`` when a worker dequeues the carrier — admission
  therefore sees parked members as pending backlog;
* a worker death mid-batch requeues the *carrier* with members intact
  (the PR 6 supervision path unchanged), so every fused member still
  terminates ``done`` or ``quarantined`` — never lost;
* ``flush_all`` runs at close so parked members cannot strand.

Because linger happens *before* dispatch, an empty-ish system pays at
most ``linger_s`` of added latency per interactive query — and with
``linger_s == 0`` fusion still happens whenever submitters burst jobs
between event-loop ticks (one cooperative yield is enough to flush).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.obs import get_telemetry
from repro.serve.jobs import KIND_SIGNOFF, KIND_WHATIF, Job


@dataclass(frozen=True)
class BatchConfig:
    """Fusion knobs (docs/SERVING.md, "Scaling")."""

    #: Flush a bucket at this many members (also the probe-batch width
    #: cap handed to the MCMM kernel).
    max_batch: int = 8
    #: How long the first job of a bucket waits for company, in
    #: (injectable) seconds.  0 still fuses same-tick bursts.
    linger_s: float = 0.0
    #: Job kinds eligible for fusion; other kinds bypass the batcher.
    kinds: Tuple[str, ...] = (KIND_WHATIF, KIND_SIGNOFF)


class QueryBatcher:
    """Per-(kind, design) fusion buckets in front of the dispatch queue.

    The service owns one instance and calls :meth:`add` for every
    admitted batchable job; the batcher calls back into the service's
    ``_enqueue_flushed`` with either the lone member or a fused carrier.
    """

    def __init__(self, service, config: BatchConfig) -> None:
        self._service = service
        self.config = config
        self._buckets: Dict[Tuple[str, str], List[Job]] = {}
        self._timers: Dict[Tuple[str, str], asyncio.Task] = {}
        #: Terminal fusion accounting (mirrored into ServiceStats).
        self.batches = 0
        self.fused_jobs = 0

    # ------------------------------------------------------------------
    def wants(self, job: Job) -> bool:
        return job.kind in self.config.kinds and not job.fused

    def pending(self) -> int:
        """Members currently parked in buckets (admission backlog)."""
        return sum(len(b) for b in self._buckets.values())

    # ------------------------------------------------------------------
    def add(self, job: Job) -> None:
        """Park one admitted job; flush on width, arm linger otherwise."""
        key = (job.kind, job.design)
        bucket = self._buckets.setdefault(key, [])
        bucket.append(job)
        if len(bucket) >= max(1, self.config.max_batch):
            self.flush(key)
            return
        if key not in self._timers:
            self._timers[key] = self._service._loop.create_task(
                self._linger(key)
            )

    async def _linger(self, key: Tuple[str, str]) -> None:
        try:
            await self._service._asleep(self.config.linger_s)
        except asyncio.CancelledError:
            return
        self._timers.pop(key, None)
        self.flush(key)

    # ------------------------------------------------------------------
    def flush(self, key: Tuple[str, str]) -> None:
        """Dispatch one bucket: lone member as-is, W >= 2 as a carrier."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        members = self._buckets.pop(key, None)
        if not members:
            return
        if len(members) == 1:
            self._service._enqueue_flushed(members[0])
            return
        kind, design = key
        carrier = Job(
            kind=kind,
            design=design,
            priority=min(m.effective_priority() for m in members),
            members=members,
        )
        carrier.job_id = "+".join(m.job_id for m in members)
        carrier.submitted_t = min(m.submitted_t for m in members)
        self.batches += 1
        self.fused_jobs += len(members)
        stats = self._service.stats
        stats.batches += 1
        stats.fused_jobs += len(members)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.batches")
            tel.hist("serve.batch_width", len(members))
            tel.event(
                "batch_dispatch",
                job=carrier.job_id,
                job_kind=kind,
                design=design,
                width=len(members),
                jobs=[m.job_id for m in members],
            )
        self._service._enqueue_flushed(carrier)

    def flush_all(self) -> None:
        """Flush every bucket (drain/close path — nothing may strand)."""
        for key in list(self._buckets):
            self.flush(key)

    def cancel_timers(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()


__all__ = ["BatchConfig", "QueryBatcher"]
