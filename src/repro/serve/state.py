"""Per-design warm state pinned by the serving workers.

The whole point of a long-lived service over the batch reproduction is
that the expensive per-design artifacts stay hot between queries:

* the prepared design (placed netlist + Steiner forest),
* the STA engine with its FlatForest topology caches,
* the :class:`~repro.sta.incremental.IncrementalSTA` dirty-tree state
  (a what-if move re-times only the affected cones),
* MCMM :class:`~repro.mcmm.sta.ScenarioSTA` objects per corner set,
* the :class:`~repro.timing_model.graph.TimingGraph` + compiled tapes
  the refine jobs consume,
* the trained evaluator, shared across designs and swappable by a
  ``train`` job.

:class:`DesignWorkspace` owns all of that for one design;
:class:`WarmStateCache` memoizes workspaces by name.  The workspace
also keeps the **last-known sign-off report** — the graceful-degradation
path answers overloaded ``signoff`` queries from it, flagged
``stale=True``, instead of shedding them (docs/SERVING.md).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.obs import get_telemetry


class DesignWorkspace:
    """Warm timing state for one design; built lazily, queried often."""

    def __init__(self, name: str, scale: float = 1.0, forest_kernel: str = "flat") -> None:
        self.name = name
        self.scale = float(scale)
        self.forest_kernel = forest_kernel
        self.netlist = None
        self.forest = None
        self.engine = None
        self._inc = None
        self._probe_sta = None
        self._scenario_stas: Dict[Tuple[str, ...], Any] = {}
        self._graph = None
        self._congestion = None
        #: Last completed sign-off summary (the stale-answer source).
        self.last_signoff: Optional[Dict[str, Any]] = None
        self.signoff_queries = 0

    # ------------------------------------------------------------------
    def ensure_loaded(self) -> "DesignWorkspace":
        """Prepare the design once (deterministic geometry)."""
        if self.netlist is None:
            from repro.flow.pipeline import prepare_design
            from repro.sta.engine import STAEngine

            tel = get_telemetry()
            with tel.span("serve.warm_design", design=self.name):
                self.netlist, self.forest = prepare_design(
                    self.name, scale=self.scale, forest_kernel=self.forest_kernel
                )
                self.engine = STAEngine(self.netlist)
            if tel.enabled:
                tel.count("serve.designs_warmed")
        return self

    def incremental(self):
        """The pinned IncrementalSTA (neutral scenario)."""
        if self._inc is None:
            from repro.sta.incremental import IncrementalSTA

            self.ensure_loaded()
            self._inc = IncrementalSTA(self.netlist, self.forest, engine=self.engine)
        return self._inc

    def probe_sta(self):
        """The pinned what-if probe engine: a neutral force-batched
        :class:`~repro.mcmm.sta.ScenarioSTA` whose ``probe_batch`` times
        K candidate moves in one batched PERT pass.  Serial and fused
        ``whatif`` handlers both query through this object (K=1 vs K=W),
        which is what makes fused answers bitwise-equal to unbatched
        execution (docs/SERVING.md)."""
        if self._probe_sta is None:
            from repro.mcmm.scenario import ScenarioSet
            from repro.mcmm.sta import ScenarioSTA

            self.ensure_loaded()
            self._probe_sta = ScenarioSTA(
                self.netlist,
                self.forest,
                ScenarioSet.default(),
                engine=self.engine,
                force_batched=True,
            )
        return self._probe_sta

    def scenario_sta(self, corners: Tuple[str, ...], mode: str = "func"):
        """A pinned ScenarioSTA for an MCMM corner set (docs/MCMM.md)."""
        key = tuple(corners) + ("@", mode)
        sta = self._scenario_stas.get(key)
        if sta is None:
            from repro.mcmm.scenario import ScenarioSet
            from repro.mcmm.sta import ScenarioSTA

            self.ensure_loaded()
            scenarios = ScenarioSet.from_names(tuple(corners), modes=(mode,))
            sta = ScenarioSTA(self.netlist, self.forest, scenarios, engine=self.engine)
            self._scenario_stas[key] = sta
        return sta

    def timing_graph(self):
        """The memoized TimingGraph (congestion probed once, reused)."""
        if self._graph is None:
            from repro.core.tsteiner import TSteiner
            from repro.timing_model.graph import build_timing_graph

            self.ensure_loaded()
            tel = get_telemetry()
            with tel.span("serve.build_graph", design=self.name):
                self._congestion = TSteiner._congestion_probe(self.netlist, self.forest)
                self._graph = build_timing_graph(
                    self.netlist, self.forest, congestion=self._congestion
                )
        return self._graph

    # ------------------------------------------------------------------
    def invalidate(self, reason: str = "commit", structural: bool = False) -> None:
        """Drop cached timing state after a committed mutation.

        ``structural=False`` (coordinate-only changes, e.g. a committed
        ``refine``) resets the incremental caches in place — the
        engines rebind to the same netlist topology on the next query.

        ``structural=True`` (an ECO mutated cells/pins/nets) goes
        further: the probe STA, pinned scenario STAs, incremental
        state, timing graph and congestion map are *discarded* — their
        engines captured arcs, pin caps and endpoint order at
        construction — the STA engine is rebuilt against the mutated
        netlist, and the forest's cached flat digest
        (``flat_forest_of``) is dropped so the next query re-CSRs the
        mutated forest.  Every invalidation is counted and traced.
        """
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.invalidations")
            tel.event(
                "workspace_invalidated",
                design=self.name,
                reason=reason,
                structural=bool(structural),
            )
        if not structural:
            if self._inc is not None:
                self._inc.invalidate()
            if self._probe_sta is not None:
                self._probe_sta.invalidate()
            for sta in self._scenario_stas.values():
                sta.invalidate()
            return
        self._inc = None
        self._probe_sta = None
        self._scenario_stas = {}
        self._graph = None
        self._congestion = None
        if self.forest is not None:
            from repro.sta.flat import _FLAT_CACHE_ATTR

            if hasattr(self.forest, _FLAT_CACHE_ATTR):
                delattr(self.forest, _FLAT_CACHE_ATTR)
        if self.netlist is not None:
            from repro.sta.engine import STAEngine

            self.engine = STAEngine(self.netlist)

    def invalidate_timing(self) -> None:
        """Drop incremental caches after committed coordinate changes."""
        self.invalidate(reason="coords", structural=False)

    def record_signoff(self, summary: Dict[str, Any]) -> None:
        """Remember the last good sign-off answer for degraded serving."""
        self.last_signoff = dict(summary)

    def stale_answer(self) -> Optional[Dict[str, Any]]:
        """Copy of the last-known report, marked stale; None if cold."""
        if self.last_signoff is None:
            return None
        answer = dict(self.last_signoff)
        answer["stale"] = True
        return answer


class WarmStateCache:
    """Process-level workspace cache plus the shared evaluator.

    Thread-safe construction (the process-backed executor's worker
    processes each hold their own module-level instance); asyncio
    workers in the parent share this one object, which is what makes a
    committed ``refine`` immediately visible to ``signoff`` queries.
    """

    def __init__(
        self, scale: float = 1.0, evaluator_config=None, forest_kernel: str = "flat"
    ) -> None:
        self.scale = float(scale)
        self.forest_kernel = forest_kernel
        self._lock = threading.Lock()
        self._workspaces: Dict[str, DesignWorkspace] = {}
        self._evaluator = None
        self._evaluator_config = evaluator_config

    def workspace(self, name: str) -> DesignWorkspace:
        with self._lock:
            ws = self._workspaces.get(name)
            if ws is None:
                ws = self._workspaces[name] = DesignWorkspace(
                    name, scale=self.scale, forest_kernel=self.forest_kernel
                )
        return ws.ensure_loaded()

    def peek(self, name: str) -> Optional[DesignWorkspace]:
        """Existing workspace or None — never triggers a design build.

        The degraded-serving path uses this: a saturated queue must not
        pay for warming a cold design just to discover there is no
        stale answer to give.
        """
        with self._lock:
            return self._workspaces.get(name)

    # ------------------------------------------------------------------
    def evaluator(self):
        """The shared evaluator; deterministic fresh weights until a
        ``train`` job installs better ones."""
        with self._lock:
            if self._evaluator is None:
                from repro.timing_model.model import EvaluatorConfig, TimingEvaluator

                cfg = self._evaluator_config or EvaluatorConfig(hidden=16)
                self._evaluator = TimingEvaluator(cfg)
            return self._evaluator

    def set_evaluator(self, model) -> None:
        with self._lock:
            self._evaluator = model


__all__ = ["DesignWorkspace", "WarmStateCache"]
