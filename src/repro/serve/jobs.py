"""Typed job model for the sign-off service.

The paper's concurrent sign-off loop is query-shaped — "move this
Steiner point, re-judge slack" — so the serving layer speaks five job
kinds, ordered by interactivity:

* ``whatif``   — move one Steiner point, report the slack delta, revert;
* ``signoff``  — full WNS/TNS report for a design (optionally under
  MCMM corners);
* ``refine``   — run Algorithm 1 for N iterations and commit the
  improved coordinates into the warm design state;
* ``eco``      — run the closed-loop discrete ECO driver (buffer
  insertion / resize / re-route, docs/ECO.md) and commit the mutated
  netlist + forest into the warm design state;
* ``train``    — (re)train the evaluator the refine jobs consume.

Interactive kinds preempt batch kinds on the priority queue; a job may
override its kind's default priority.  All lifecycle state lives on the
:class:`Job` itself so the chaos tests can assert exactly where every
accepted job ended up: ``done`` or ``quarantined``, never silently
lost (docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Job kinds, interactive first.
KIND_WHATIF = "whatif"
KIND_SIGNOFF = "signoff"
KIND_REFINE = "refine"
KIND_ECO = "eco"
KIND_TRAIN = "train"
JOB_KINDS = (KIND_WHATIF, KIND_SIGNOFF, KIND_REFINE, KIND_ECO, KIND_TRAIN)

#: Default queue priority per kind (lower value = served first).
DEFAULT_PRIORITY = {
    KIND_WHATIF: 0,
    KIND_SIGNOFF: 0,
    KIND_REFINE: 2,
    KIND_ECO: 2,
    KIND_TRAIN: 3,
}

# Lifecycle states (see the state machine in docs/SERVING.md).
PENDING = "pending"  # accepted, waiting on the queue
RUNNING = "running"  # picked up by a worker
DONE = "done"  # handler returned (possibly stale/timed_out flagged)
QUARANTINED = "quarantined"  # max attempts exhausted; error captured
REJECTED = "rejected"  # shed by admission control (never accepted)


@dataclass
class Job:
    """One unit of work accepted (or shed) by the service."""

    kind: str
    design: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    priority: Optional[int] = None  # None -> DEFAULT_PRIORITY[kind]
    deadline_s: Optional[float] = None  # per-job wall budget (virtual clock)
    max_attempts: Optional[int] = None  # None -> service default
    # -- bookkeeping stamped by the service ---------------------------
    job_id: str = ""
    status: str = PENDING
    attempts: int = 0  # execution attempts started so far
    submitted_t: float = 0.0
    error: Optional[str] = None  # last failure (quarantine reason)
    #: Query fusion (docs/SERVING.md): a *fused* job carries the member
    #: jobs it coalesced — all the same kind and design.  Members own
    #: the tickets; the fused carrier is internal to the service and
    #: its handler returns one value per member, scattered back in
    #: order.  ``None`` for ordinary (unfused) jobs.
    members: Optional[List["Job"]] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; expected {JOB_KINDS}")

    def effective_priority(self) -> int:
        if self.priority is not None:
            return int(self.priority)
        return DEFAULT_PRIORITY[self.kind]

    @property
    def fused(self) -> bool:
        return self.members is not None

    def width(self) -> int:
        """Pending-queue weight: member count for fused carriers, else 1."""
        return len(self.members) if self.members is not None else 1


@dataclass
class JobResult:
    """Terminal outcome delivered through the ticket future.

    Quarantined and shed jobs resolve with ``ok=False`` (plus ``error``
    / ``retry_after``) rather than raising, so a load generator can
    tally outcomes without wrapping every await in try/except.
    """

    job_id: str
    kind: str
    design: str
    ok: bool
    value: Any = None
    stale: bool = False  # served from last-known state under overload
    timed_out: bool = False  # deadline expired; value is best-so-far
    attempts: int = 0
    latency: float = 0.0  # submit -> resolve, in (virtual) seconds
    error: Optional[str] = None
    retry_after: Optional[float] = None  # set on shed (admission) results
    status: str = DONE


class JobTicket:
    """Handle returned by ``SignoffService.submit``.

    ``await ticket.wait()`` (or ``ticket.future``) resolves to the
    :class:`JobResult`; ``ticket.job`` exposes live lifecycle state.
    """

    __slots__ = ("job", "future")

    def __init__(self, job: Job, future: "asyncio.Future[JobResult]") -> None:
        self.job = job
        self.future = future

    async def wait(self) -> JobResult:
        return await self.future

    @property
    def done(self) -> bool:
        return self.future.done()


__all__ = [
    "DEFAULT_PRIORITY",
    "DONE",
    "JOB_KINDS",
    "Job",
    "JobResult",
    "JobTicket",
    "KIND_ECO",
    "KIND_REFINE",
    "KIND_SIGNOFF",
    "KIND_TRAIN",
    "KIND_WHATIF",
    "PENDING",
    "QUARANTINED",
    "REJECTED",
    "RUNNING",
]
