"""``python -m repro serve`` — run the service under synthetic load.

The subcommand spins up a :class:`~repro.serve.service.SignoffService`,
drives it with the seeded traffic of :mod:`repro.serve.loadgen`, prints
a terminal accounting and exits nonzero if any accepted job was lost —
the invariant the CI ``serve-smoke`` job enforces (with ``--chaos``
adding deterministic worker kills, queue delays and one checkpoint
corruption on top).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import tempfile
from pathlib import Path

from repro.obs import Telemetry, setup_logging, telemetry_session
from repro.obs.slo import parse_objective
from repro.serve.admission import AdmissionConfig
from repro.serve.chaos import (
    ChaosMonkey,
    CorruptCheckpoint,
    DelayDispatch,
    KillWorker,
)
from repro.serve.batcher import BatchConfig
from repro.serve.loadgen import TrafficConfig, run_load
from repro.serve.service import SignoffService
from repro.serve.shard import ShardedService
from repro.serve.state import WarmStateCache


def _say(line: str) -> None:
    """CLI stdout (the lint gate reserves bare print for __main__.py)."""
    sys.stdout.write(line + "\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve sign-off queries under synthetic load "
        "(docs/SERVING.md).",
    )
    parser.add_argument("--jobs", type=int, default=24, help="jobs to submit")
    parser.add_argument(
        "--designs",
        default="spm",
        help="comma-separated design names (default: spm)",
    )
    parser.add_argument("--workers", type=int, default=2, help="async workers")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="design scale factor"
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic seed")
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission-control queue bound (jobs beyond it are shed)",
    )
    parser.add_argument(
        "--refine-iterations",
        type=int,
        default=4,
        help="iterations per refine job",
    )
    parser.add_argument(
        "--process-jobs",
        type=int,
        default=0,
        help="run refine/train in N worker processes (0 = in-process)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="inject deterministic faults: kill a worker mid-refine, "
        "delay dispatches, corrupt one checkpoint (and with --shards > 1, "
        "kill shard 0 mid-load)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run N warm shards behind a rendezvous-routed front end "
        "(1 = single service; docs/SERVING.md, Scaling)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="enable query fusion: concurrent whatif/signoff jobs per "
        "design coalesce into one scenario-batched dispatch",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="fusion flush width (members per fused dispatch)",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help="seconds the first job of a fusion bucket waits for company "
        "(0 still fuses same-tick bursts)",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=0,
        metavar="N",
        help="burst traffic mode: submit jobs in back-to-back groups of "
        "N (many concurrent queries, few designs — the fusion workload)",
    )
    parser.add_argument(
        "--eco",
        type=float,
        default=0.0,
        metavar="W",
        help="relative traffic weight for eco jobs (default 0: none; "
        "the other kinds keep the 5/3/1/0 default mix)",
    )
    parser.add_argument(
        "--eco-arm",
        choices=("greedy", "sa", "hybrid"),
        default="sa",
        help="ECO arm eco jobs run (docs/ECO.md; default sa)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for refine/train job checkpoints "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a telemetry trace (JSONL) to PATH; summarize with "
        "`python -m repro report PATH`",
    )
    parser.add_argument(
        "--slo",
        metavar="SPEC",
        action="append",
        default=[],
        help="SLO objective `name:kind[:target[:latency_s[:long/short/"
        "burn,...]]]`, e.g. signoff-lat:signoff:0.9:0.05 — repeatable; "
        "exit code 3 when an alert is still firing at shutdown",
    )
    parser.add_argument("--verbose", "-v", action="count", default=0)
    parser.add_argument("--quiet", "-q", action="count", default=0)
    return parser


def default_chaos() -> ChaosMonkey:
    """The --chaos fault plan: one of each injected fault, deterministic."""
    return ChaosMonkey(
        # Kill the worker mid-refinement on the first attempt.  Ticks 1-2
        # are adaptive-theta probes and tick 3 is iteration 1; by tick 4
        # a checkpoint is on disk, so the retry exercises resume.
        KillWorker(job="refine", on_attempt=1, at_tick=4),
        # ... and corrupt that checkpoint while the job is down, so the
        # retry exercises CheckpointError recovery too.
        CorruptCheckpoint(job="refine", keep_bytes=64, once=True),
        # Stall one signoff dispatch (injectable sleep, real time here).
        DelayDispatch(job="signoff", on_attempt=1, seconds=0.01),
    )


async def _serve(args, chaos, checkpoint_dir: Path, objectives):
    batching = (
        BatchConfig(max_batch=args.batch_max, linger_s=args.linger)
        if args.batch
        else None
    )
    if args.shards > 1:
        service = ShardedService(
            shards=args.shards,
            scale=args.scale,
            workers=args.workers,
            admission=AdmissionConfig(max_pending=args.max_pending),
            chaos=chaos,
            checkpoint_dir=checkpoint_dir,
            process_jobs=args.process_jobs,
            slo=objectives or None,
            batching=batching,
        )
    else:
        warm = WarmStateCache(scale=args.scale)
        service = SignoffService(
            warm=warm,
            workers=args.workers,
            admission=AdmissionConfig(max_pending=args.max_pending),
            chaos=chaos,
            checkpoint_dir=checkpoint_dir,
            process_jobs=args.process_jobs,
            slo=objectives or None,
            batching=batching,
        )
    traffic = TrafficConfig(
        jobs=args.jobs,
        designs=tuple(
            name.strip() for name in args.designs.split(",") if name.strip()
        ),
        seed=args.seed,
        mix=(5.0, 3.0, 1.0, 0.0, max(0.0, args.eco)),
        refine_iterations=args.refine_iterations,
        burst_size=max(1, args.burst),
        eco_arm=args.eco_arm,
    )
    chaos_hooks = None
    if chaos is not None and args.shards > 1:
        # The shard-level fault: halfway through the load, kill the
        # home shard of the first design — the slot guaranteed to hold
        # in-flight work — asserting redispatch and zero loss.
        victim = service.shard_for(traffic.designs[0])
        chaos_hooks = {
            max(1, args.jobs // 2): lambda: service.kill_shard(victim)
        }
    async with service:
        report = await run_load(service, traffic, chaos_hooks=chaos_hooks)
    return service, report


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.verbose - args.quiet)
    chaos = default_chaos() if args.chaos else None
    objectives = [parse_objective(spec) for spec in args.slo]
    with contextlib.ExitStack() as stack:
        if args.trace:
            tel = stack.enter_context(Telemetry(path=args.trace))
            stack.enter_context(telemetry_session(tel))
        if args.checkpoint_dir is not None:
            ckpt_dir = Path(args.checkpoint_dir)
            ckpt_dir.mkdir(parents=True, exist_ok=True)
        else:
            ckpt_dir = Path(stack.enter_context(tempfile.TemporaryDirectory()))
        service, report = asyncio.run(_serve(args, chaos, ckpt_dir, objectives))

    summary = report.summary()
    _say("=== serve summary ===")
    _say(
        "submitted {submitted}  done {done}  shed {shed}  "
        "stale {stale}  quarantined {quarantined}".format(**summary)
    )
    _say(
        f"retried jobs {summary['retried_jobs']}  "
        f"timed out {summary['timed_out']}  "
        f"worker deaths {service.stats.worker_deaths}  "
        f"restarts {service.stats.worker_restarts}"
    )
    _say(
        "by kind: "
        + "  ".join(f"{k}={v}" for k, v in sorted(summary["by_kind"].items()))
    )
    if args.batch:
        _say(
            f"fusion: batches {summary['batches']}  "
            f"mean width {summary['mean_batch_width']:.2f}  "
            f"ratio {summary['fusion_ratio']:.2f}"
        )
    if args.shards > 1:
        _say(
            f"shards: {args.shards}  killed {service.shards_killed}  "
            f"restarted {service.shards_restarted}  "
            f"redispatched {service.redispatched}"
        )
    if chaos is not None:
        _say(
            f"chaos: kills {chaos.kills_fired}  delays {chaos.delays_fired}  "
            f"corruptions {chaos.corruptions_fired}"
        )
    firing = []
    if service.slo is not None:
        firing = [s["name"] for s in (service.slo_final or []) if s["firing"]]
        for status in service.slo_final or []:
            mark = "FIRING" if status["firing"] else "ok"
            _say(
                f"slo {status['name']} ({status['kind']}, target "
                f"{status['target']:g}): {mark}  events {status['events']}  "
                f"bad {status['bad']}  fired {status['fired_total']}  "
                f"cleared {status['cleared_total']}"
            )
    if args.trace:
        _say(f"telemetry trace written to {args.trace}")
    if summary["lost"] != 0:
        _say(f"LOST JOBS: {summary['lost']} accepted jobs never resolved")
        return 1
    _say("lost 0")
    if firing:
        _say("SLO BREACH: still firing at shutdown: " + ", ".join(firing))
        return 3
    return 0


__all__ = ["build_parser", "default_chaos", "main"]
