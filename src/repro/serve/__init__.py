"""Sign-off-as-a-service: a fault-tolerant async serving layer.

The batch reproduction answers "rerun the experiment"; this package
answers "keep the timing state warm and serve queries against it" —
the deployment shape a sign-off engine actually has inside a physical
design flow (docs/SERVING.md):

* :mod:`repro.serve.jobs` — typed jobs (``whatif``/``signoff``/
  ``refine``/``train``), priorities, tickets;
* :mod:`repro.serve.state` — per-design warm state and the last-known
  answers behind graceful degradation;
* :mod:`repro.serve.admission` — bounded-queue admission control with
  ``retry_after`` hints;
* :mod:`repro.serve.service` — the supervised asyncio worker fleet:
  retries, quarantine, deadlines, checkpoint durability;
* :mod:`repro.serve.batcher` — query fusion: concurrent whatif/signoff
  jobs per design coalesce into one scenario-batched dispatch;
* :mod:`repro.serve.shard` — warm-shard design sharding behind a
  rendezvous-hashed front end with shard-death redispatch;
* :mod:`repro.serve.executors` — inline vs process-backed execution;
* :mod:`repro.serve.chaos` — deterministic worker kills, queue delays
  and checkpoint corruption for the chaos tests;
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.cli` — seeded traffic
  and the ``python -m repro serve`` smoke driver.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.batcher import BatchConfig, QueryBatcher
from repro.serve.chaos import (
    ChaosMonkey,
    CorruptCheckpoint,
    DelayDispatch,
    KillWorker,
    WorkerKilled,
)
from repro.serve.executors import InlineExecutor, ProcessExecutor
from repro.serve.jobs import (
    DEFAULT_PRIORITY,
    JOB_KINDS,
    Job,
    JobResult,
    JobTicket,
)
from repro.serve.loadgen import LoadReport, TrafficConfig, make_jobs, run_load
from repro.serve.service import (
    JobContext,
    ServiceStats,
    SignoffService,
    virtual_asleep,
)
from repro.serve.shard import ShardedService, rendezvous_shard
from repro.serve.state import DesignWorkspace, WarmStateCache

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "BatchConfig",
    "ChaosMonkey",
    "CorruptCheckpoint",
    "DEFAULT_PRIORITY",
    "DelayDispatch",
    "DesignWorkspace",
    "InlineExecutor",
    "JOB_KINDS",
    "Job",
    "JobContext",
    "JobResult",
    "JobTicket",
    "KillWorker",
    "LoadReport",
    "ProcessExecutor",
    "QueryBatcher",
    "ServiceStats",
    "ShardedService",
    "SignoffService",
    "TrafficConfig",
    "WarmStateCache",
    "WorkerKilled",
    "make_jobs",
    "run_load",
    "rendezvous_shard",
    "virtual_asleep",
]
