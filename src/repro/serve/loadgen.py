"""Deterministic synthetic traffic for the sign-off service.

The load generator plays the role of the physical-design crowd hammering
a shared sign-off box: bursts of cheap ``whatif`` probes and ``signoff``
queries with an occasional long ``refine`` (and optionally ``train``)
mixed in.  Everything is seeded — the k-th run of a given
:class:`TrafficConfig` submits the exact same job sequence — so the
chaos tests and the CI smoke job can assert hard invariants
(``lost == 0``) rather than eyeball flaky throughput numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class TrafficConfig:
    """Seeded description of one synthetic traffic run."""

    jobs: int = 24
    designs: Sequence[str] = ("spm",)
    seed: int = 0
    #: relative weights for (whatif, signoff, refine, train, eco).
    #: The eco entry may be omitted (legacy 4-tuples keep their exact
    #: job sequences: a zero-weight kind never changes ``rng.choices``).
    mix: Tuple[float, ...] = (5.0, 3.0, 1.0, 0.0)
    refine_iterations: int = 4
    train_epochs: int = 2
    eco_steps: int = 10
    eco_arm: str = "sa"
    whatif_step: float = 3.0
    #: every burst_every-th job arrives back-to-back with the next one
    #: (no inter-arrival yield), exercising the bounded queue
    burst_every: int = 4
    #: burst mode (``--burst``): submit jobs in back-to-back groups of
    #: this size with one cooperative yield *between* groups — many
    #: concurrent queries against few designs, the traffic shape query
    #: fusion is built for.  1 falls back to ``burst_every`` pacing.
    burst_size: int = 1


@dataclass
class LoadReport:
    """What happened to every submitted job; the smoke job asserts on it."""

    submitted: int = 0
    done: int = 0
    shed: int = 0
    stale: int = 0
    quarantined: int = 0
    timed_out: int = 0
    retried_jobs: int = 0
    lost: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    results: List[Any] = field(default_factory=list)
    #: Query-fusion accounting mirrored from the service stats: fused
    #: dispatches, their mean member width, and the fraction of done
    #: jobs that were answered by a fused dispatch.
    batches: int = 0
    mean_batch_width: float = 0.0
    fusion_ratio: float = 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "done": self.done,
            "shed": self.shed,
            "stale": self.stale,
            "quarantined": self.quarantined,
            "timed_out": self.timed_out,
            "retried_jobs": self.retried_jobs,
            "lost": self.lost,
            "by_kind": dict(self.by_kind),
            "batches": self.batches,
            "mean_batch_width": self.mean_batch_width,
            "fusion_ratio": self.fusion_ratio,
        }


def make_jobs(config: TrafficConfig) -> List[Dict[str, Any]]:
    """The deterministic job sequence for a config (pure, no service)."""
    rng = random.Random(config.seed)
    kinds = ("whatif", "signoff", "refine", "train", "eco")
    weights = list(config.mix)
    weights += [0.0] * (len(kinds) - len(weights))
    jobs: List[Dict[str, Any]] = []
    for i in range(config.jobs):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        design = config.designs[i % len(config.designs)]
        params: Dict[str, Any] = {}
        if kind == "whatif":
            params = {
                "point": rng.randrange(0, 10_000),
                "dx": rng.uniform(-config.whatif_step, config.whatif_step),
                "dy": rng.uniform(-config.whatif_step, config.whatif_step),
            }
        elif kind == "signoff":
            params = {"corners": ["typ"]} if rng.random() < 0.7 else {
                "corners": ["slow_setup", "fast_hold"]
            }
        elif kind == "refine":
            params = {"iterations": config.refine_iterations}
        elif kind == "train":
            params = {
                "designs": list(config.designs),
                "epochs": config.train_epochs,
            }
        elif kind == "eco":
            params = {
                "arm": config.eco_arm,
                "seed": config.seed,
                "steps": config.eco_steps,
                "max_ops": 2,
                "max_rounds": 3,
                "trials": 3,
            }
        jobs.append({"kind": kind, "design": design, "params": params})
    return jobs


async def run_load(
    service,
    config: Optional[TrafficConfig] = None,
    chaos_hooks: Optional[Dict[int, Any]] = None,
) -> LoadReport:
    """Drive a *started* service with the config's traffic; await drain.

    Shed jobs are counted, not resubmitted — backpressure is the
    feature under test, and the zero-lost invariant covers accepted
    jobs only (a shed job was answered with ``retry_after``, not lost).

    ``chaos_hooks`` maps a submit index to an async callable awaited
    right after that job is submitted — the deterministic injection
    point for mid-load faults the service can't self-inflict, e.g.
    ``{jobs // 2: lambda: sharded.kill_shard(0)}``.
    """
    import asyncio

    config = config or TrafficConfig()
    report = LoadReport()
    tickets = []
    for i, spec in enumerate(make_jobs(config)):
        ticket = service.submit(spec["kind"], spec["design"], spec["params"])
        tickets.append(ticket)
        report.submitted += 1
        report.by_kind[spec["kind"]] = report.by_kind.get(spec["kind"], 0) + 1
        if chaos_hooks and i in chaos_hooks:
            await chaos_hooks[i]()
        if config.burst_size > 1:
            # Burst mode: groups of burst_size land in one event-loop
            # tick (so the batcher can fuse them); yield between groups.
            if (i + 1) % config.burst_size == 0:
                await asyncio.sleep(0)
            continue
        burst = config.burst_every > 0 and (i + 1) % config.burst_every == 0
        if not burst:
            # Let workers interleave with arrivals (cooperative yield,
            # no wall-clock): bursts skip this to pile up the queue.
            await asyncio.sleep(0)
    await service.drain()
    for ticket in tickets:
        result = await ticket.wait()
        report.results.append(result)
        if result.status == "done":
            report.done += 1
            if result.stale:
                report.stale += 1
            if result.timed_out:
                report.timed_out += 1
            if result.attempts > 1:
                report.retried_jobs += 1
        elif result.status == "quarantined":
            report.quarantined += 1
            if result.attempts > 1:
                report.retried_jobs += 1
        elif result.status == "rejected":
            report.shed += 1
    report.lost = report.submitted - report.done - report.quarantined - report.shed
    stats = getattr(service, "stats", None)
    if stats is not None and getattr(stats, "batches", 0):
        report.batches = stats.batches
        report.mean_batch_width = stats.mean_batch_width()
        report.fusion_ratio = stats.fusion_ratio()
    return report


__all__ = ["LoadReport", "TrafficConfig", "make_jobs", "run_load"]
