"""Default job handlers: the paper's queries over warm design state.

A handler is ``handler(job, ctx) -> dict`` (sync or async); ``ctx`` is
the :class:`~repro.serve.service.JobContext` carrying the per-job
budget, checkpoint path, attempt index and the cooperative
``heartbeat`` the chaos harness hooks.  :func:`default_handlers` wires
the five kinds over one shared :class:`~repro.serve.state.WarmStateCache`.

Durability contract (docs/SERVING.md): ``refine`` and ``train`` jobs
snapshot through :mod:`repro.runtime.checkpoint` at every iteration /
epoch; on a retry after a worker death the handler resumes from the
snapshot — byte-identical to an uninterrupted run (PR 1's guarantee) —
and a checkpoint the chaos harness corrupted surfaces as
:class:`~repro.runtime.errors.CheckpointError`, which the handler
answers by discarding the snapshot and restarting clean (deterministic,
so it still converges to the fault-free answer).

For the process-backed executor each default handler exposes a
module-level ``remote`` function plus a ``payload`` builder; worker
processes keep their own module-global warm cache so consecutive jobs
for one design stay warm per process.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs import get_telemetry
from repro.runtime.errors import CheckpointError
from repro.serve.jobs import (
    KIND_ECO,
    KIND_REFINE,
    KIND_SIGNOFF,
    KIND_TRAIN,
    KIND_WHATIF,
)
from repro.serve.state import WarmStateCache


def _coords_digest(coords: np.ndarray) -> str:
    """Stable fingerprint of a coordinate array (byte-identity checks)."""
    return hashlib.sha256(np.ascontiguousarray(coords).tobytes()).hexdigest()[:16]


# ----------------------------------------------------------------------
# whatif — move one Steiner point, report the slack delta, revert
# ----------------------------------------------------------------------
def _whatif(cache: WarmStateCache, job, ctx):
    """Serial *and* fused what-if share one probe path.

    A lone job is a width-1 probe batch; a fused carrier's members
    become the K row groups of one scenario-batched PERT pass
    (:meth:`~repro.mcmm.sta.ScenarioSTA.probe_batch`).  Because the
    union recompute mask re-times unchanged rows to bitwise-identical
    values, each member's answer is bitwise-equal to the answer it
    would have gotten unfused — the parity the hypothesis tests pin.
    """
    ws = cache.workspace(job.design)
    ctx.heartbeat()
    sta = ws.probe_sta()
    forest = ws.forest
    coords = forest.get_steiner_coords()
    members = job.members if job.fused else [job]
    specs = []
    for m in members:
        if coords.shape[0] == 0:
            specs.append(None)
            continue
        idx = int(m.params.get("point", 0)) % coords.shape[0]
        dx = float(m.params.get("dx", 0.0))
        dy = float(m.params.get("dy", 0.0))
        moved = coords.copy()
        moved[idx, 0] += dx
        moved[idx, 1] += dy
        specs.append((idx, dx, dy, forest.clamp_coords(moved)))
    live = [s for s in specs if s is not None]
    if live:
        base, probes = sta.probe_batch([s[3] for s in live])
        base_wns = float(base.merged_wns)
        base_tns = float(base.merged_tns)
    else:
        base = sta.run()
        probes = []
        base_wns = float(base.merged_wns)
        base_tns = float(base.merged_tns)
    baseline = {
        "design": job.design,
        "wns": base_wns,
        "tns": base_tns,
        "stale": False,
    }
    ws.record_signoff(baseline)
    values = []
    probe_iter = iter(zip(probes, sta.last_probe_dirty))
    for spec in specs:
        if spec is None:
            values.append(dict(baseline, point=None, delta_wns=0.0, delta_tns=0.0))
            continue
        idx, dx, dy, _ = spec
        rep, dirty = next(probe_iter)
        values.append(
            {
                "design": job.design,
                "point": idx,
                "dx": dx,
                "dy": dy,
                "wns": float(rep.merged_wns),
                "tns": float(rep.merged_tns),
                "delta_wns": float(rep.merged_wns - base_wns),
                "delta_tns": float(rep.merged_tns - base_tns),
                "dirty_trees": int(dirty),
                "stale": False,
            }
        )
    return values if job.fused else values[0]


# ----------------------------------------------------------------------
# signoff — full WNS/TNS report, optionally under MCMM corners
# ----------------------------------------------------------------------
def _signoff_one(cache: WarmStateCache, design: str, params: Dict[str, Any]) -> Dict[str, Any]:
    ws = cache.workspace(design)
    corners = tuple(params.get("corners") or ())
    mode = str(params.get("mode", "func"))
    if corners and (corners != ("typ",) or mode != "func"):
        sta = ws.scenario_sta(corners, mode=mode)
        rep = sta.run()
        value = {
            "design": design,
            "wns": float(rep.merged_wns),
            "tns": float(rep.merged_tns),
            "corners": list(corners),
            "mode": mode,
            "scenarios": {m.name: float(m.wns) for m in rep.scenarios},
            "stale": False,
        }
    else:
        rep = ws.incremental().run()
        value = {
            "design": design,
            "wns": float(rep.wns),
            "tns": float(rep.tns),
            "stale": False,
        }
    ws.signoff_queries += 1
    ws.record_signoff(value)
    return value


def _signoff(cache: WarmStateCache, job, ctx):
    """Sign-off report; a fused carrier dedupes identical corner sets.

    Members asking for the same ``(corners, mode)`` against the same
    warm state share one STA run — a repeated query over unchanged
    state is bitwise-idempotent, so every member still receives the
    exact answer it would have gotten alone.
    """
    ctx.heartbeat()
    if not job.fused:
        return _signoff_one(cache, job.design, job.params)
    memo: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    values = []
    for m in job.members:
        key = (
            tuple(m.params.get("corners") or ()),
            str(m.params.get("mode", "func")),
        )
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = _signoff_one(cache, job.design, m.params)
        else:
            # The shared answer still counts as one served query.
            cache.workspace(job.design).signoff_queries += 1
        values.append(dict(hit))
    return values


# ----------------------------------------------------------------------
# refine — Algorithm 1 over the warm graph, committed on success
# ----------------------------------------------------------------------
def _refine(cache: WarmStateCache, job, ctx) -> Dict[str, Any]:
    from repro.core.refine import RefinementConfig, refine

    ws = cache.workspace(job.design)
    graph = ws.timing_graph()
    model = cache.evaluator()
    iterations = int(job.params.get("iterations", 10))
    cfg = RefinementConfig(
        max_iterations=iterations,
        # Evaluator-only acceptance keeps the serving hot path free of
        # router probes; a sign-off query re-judges the committed
        # coordinates with the real incremental STA.
        acceptance="evaluator",
        polish_probes=0,
    )

    def clamp(c: np.ndarray) -> np.ndarray:
        # One cooperative heartbeat per Algorithm 1 iteration: the
        # chaos harness kills deterministically mid-refinement here.
        ctx.heartbeat()
        return ws.forest.clamp_coords(c)

    initial = ws.forest.get_steiner_coords()
    ckpt = ctx.checkpoint_path
    resume = bool(ctx.attempt > 0 and ckpt is not None and Path(ckpt).exists())
    try:
        result = refine(
            model,
            graph,
            initial,
            config=cfg,
            clamp_fn=clamp,
            budget=ctx.budget,
            checkpoint_path=ckpt,
            resume=resume,
        )
    except CheckpointError as exc:
        # A corrupted snapshot must not strand the job: drop it and
        # restart clean — refinement is deterministic, so the answer
        # still matches the fault-free run (docs/SERVING.md).
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.checkpoint_resets")
            tel.event(
                "serve_checkpoint_reset",
                job=job.job_id,
                path=exc.path,
                offset=exc.offset,
                error=str(exc),
            )
        if ckpt is not None:
            Path(ckpt).unlink(missing_ok=True)
        result = refine(
            model,
            graph,
            initial,
            config=cfg,
            clamp_fn=clamp,
            budget=ctx.budget,
            checkpoint_path=ckpt,
            resume=False,
        )
    ws.forest.set_steiner_coords(result.coords)
    ws.invalidate_timing()
    return {
        "design": job.design,
        "iterations": int(result.iterations),
        "accepted": int(result.accepted),
        "init_wns": float(result.init_wns),
        "init_tns": float(result.init_tns),
        "best_wns": float(result.best_wns),
        "best_tns": float(result.best_tns),
        "coords_digest": _coords_digest(result.coords),
        "resumed": bool(result.resumed),
        "timed_out": bool(result.timed_out),
        "stale": False,
    }


# ----------------------------------------------------------------------
# eco — closed-loop discrete ECO, committed into the warm state
# ----------------------------------------------------------------------
def _eco(cache: WarmStateCache, job, ctx) -> Dict[str, Any]:
    """Run the ECO driver against the warm design state and commit.

    Unlike ``refine`` (coordinates only), an accepted ECO *mutates the
    netlist* — buffers appear, cells resize, trees are re-routed — so
    the commit path is ``ws.invalidate(reason="eco", structural=True)``:
    every pinned STA object and the forest's flat digest are discarded
    and the engine is rebuilt (docs/ECO.md).  Deterministic under
    ``params["seed"]``: the accepted-op ``digest`` is what the
    eco-smoke CI job pins.
    """
    from repro.eco.driver import EcoConfig, run_eco
    from repro.mcmm.scenario import ScenarioSet

    ws = cache.workspace(job.design)
    ctx.heartbeat()
    arm = str(job.params.get("arm", "greedy"))
    cfg = EcoConfig(
        arm=arm,
        seed=int(job.params.get("seed", 0)),
        max_ops=int(job.params.get("max_ops", 4)),
        max_rounds=int(job.params.get("max_rounds", 6)),
        trials_per_round=int(job.params.get("trials", 4)),
        sa_steps=int(job.params.get("steps", 20)),
    )
    corners = tuple(job.params.get("corners") or ())
    scenarios = (
        ScenarioSet.from_names(corners, modes=(str(job.params.get("mode", "func")),))
        if corners
        else None
    )

    def on_round(_round: int) -> None:
        ctx.heartbeat()

    result = run_eco(
        ws.netlist,
        ws.forest,
        config=cfg,
        scenarios=scenarios,
        budget=ctx.budget,
        on_round=on_round,
    )
    ws.invalidate(reason="eco", structural=True)
    tel = get_telemetry()
    if tel.enabled:
        # Same event the flow stage emits, so `repro report` renders a
        # serve trace's eco commits in the ECO section too.
        tel.event(
            "eco_report",
            design=job.design,
            arm=result.arm,
            accepted=result.num_accepted,
            digest=result.digest,
            initial_wns=result.initial.get("wns"),
            initial_tns=result.initial.get("tns"),
            final_wns=result.final.get("wns"),
            final_tns=result.final.get("tns"),
            area_delta=result.area_delta,
        )
    value = result.summary()
    value["stale"] = False
    return value


# ----------------------------------------------------------------------
# train — (re)train the shared evaluator; checkpointed per epoch
# ----------------------------------------------------------------------
def _train(cache: WarmStateCache, job, ctx) -> Dict[str, Any]:
    from repro.flow.pipeline import make_training_samples
    from repro.timing_model.train import TrainerConfig, train_evaluator

    designs = tuple(job.params.get("designs") or ((job.design,) if job.design else ()))
    if not designs:
        raise ValueError("train job needs params['designs'] or a design")
    ctx.heartbeat()
    epochs = int(job.params.get("epochs", 10))
    augment = int(job.params.get("augment", 0))
    samples = make_training_samples(
        designs, scale=cache.scale, train_names=designs, augment=augment
    )
    model = cache.evaluator()
    tcfg = TrainerConfig(epochs=epochs, patience=max(epochs, 1))
    ckpt = ctx.checkpoint_path
    resume = bool(ctx.attempt > 0 and ckpt is not None and Path(ckpt).exists())
    try:
        result = train_evaluator(
            model,
            samples,
            tcfg,
            budget=ctx.budget,
            checkpoint_path=ckpt,
            resume=resume,
        )
    except CheckpointError as exc:
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.checkpoint_resets")
            tel.event(
                "serve_checkpoint_reset",
                job=job.job_id,
                path=exc.path,
                offset=exc.offset,
                error=str(exc),
            )
        if ckpt is not None:
            Path(ckpt).unlink(missing_ok=True)
        result = train_evaluator(
            model, samples, tcfg, budget=ctx.budget,
            checkpoint_path=ckpt, resume=False,
        )
    cache.set_evaluator(model)
    return {
        "designs": list(designs),
        "epochs_run": len(result.losses),
        "final_loss": float(result.final_loss),
        "timed_out": bool(result.timed_out),
        "resumed": bool(result.resumed),
        "stale": False,
    }


# ----------------------------------------------------------------------
# Process-backed execution: module-level entries + per-process cache
# ----------------------------------------------------------------------
_PROC_CACHE: Optional[WarmStateCache] = None
_PROC_SCALE: float = 1.0

_REMOTE_FNS = {}


def _proc_cache(scale: float) -> WarmStateCache:
    global _PROC_CACHE, _PROC_SCALE
    if _PROC_CACHE is None or _PROC_SCALE != scale:
        _PROC_CACHE = WarmStateCache(scale=scale)
        _PROC_SCALE = scale
    return _PROC_CACHE


def remote_job(payload: Tuple[str, str, Dict[str, Any], float, Optional[str], int]):
    """Top-level (picklable) process-pool entry for one job.

    Rebuilds a minimal job/ctx in the worker process and dispatches to
    the same handler bodies; the worker's module-global cache keeps its
    designs warm across consecutive jobs.
    """
    kind, design, params, scale, checkpoint_path, attempt = payload
    from repro.serve.jobs import Job
    from repro.serve.service import JobContext

    cache = _proc_cache(scale)
    job = Job(kind=kind, design=design, params=dict(params))
    job.attempts = attempt + 1
    ctx = JobContext(
        job=job, attempt=attempt, checkpoint_path=checkpoint_path
    )
    return _REMOTE_FNS[kind](cache, job, ctx)


_REMOTE_FNS.update(
    {
        KIND_WHATIF: _whatif,
        KIND_SIGNOFF: _signoff,
        KIND_REFINE: _refine,
        KIND_ECO: _eco,
        KIND_TRAIN: _train,
    }
)


def default_handlers(cache: Optional[WarmStateCache] = None) -> Dict[str, Any]:
    """The default handlers (one per job kind) bound to one warm cache.

    Each handler carries ``remote``/``payload`` attributes so the
    :class:`~repro.serve.executors.ProcessExecutor` can ship it to a
    worker process without pickling the cache itself.
    """
    cache = cache if cache is not None else WarmStateCache()
    handlers: Dict[str, Any] = {}
    for kind, fn in _REMOTE_FNS.items():

        def handler(job, ctx, _fn=fn):
            return _fn(cache, job, ctx)

        def payload(job, ctx, _kind=kind):
            return (
                _kind,
                job.design,
                dict(job.params),
                cache.scale,
                str(ctx.checkpoint_path) if ctx.checkpoint_path else None,
                ctx.attempt,
            )

        handler.remote = remote_job
        handler.payload = payload
        handlers[kind] = handler
    return handlers


__all__ = ["default_handlers", "remote_job"]
