"""Warm-shard design sharding: a multi-service front end.

One :class:`~repro.serve.service.SignoffService` keeps every design's
timing state warm in a single process — which caps throughput at one
event loop and makes every design share one failure domain.
:class:`ShardedService` runs K independent ``SignoffService`` shards,
each with its **own** :class:`~repro.serve.state.WarmStateCache`, and
routes every job for a design to that design's *home shard* chosen by
rendezvous (highest-random-weight) hashing:

* **Warm affinity** — all queries for a design land on the one shard
  whose cache holds it, so nothing is warmed twice;
* **Minimal disruption** — HRW means the design→shard map is a pure
  function of the design name and the *slot labels*; killing and
  respawning a shard changes no assignments, and resizing K remaps
  only ~1/K of the designs (the classic rendezvous property);
* **Failure isolation** — a dead shard takes down only its own
  designs' in-flight jobs, and those are *redispatched*, not lost.

The front end owns the submitter-facing tickets and terminal
accounting.  A shard kill (:meth:`ShardedService.kill_shard` — the
chaos harness' shard-level fault) closes the victim, respawns a fresh
shard into the same slot (cold cache — the re-warm on first query is
real), and resubmits every unresolved job that was routed there.  Each
accepted front ticket therefore still terminates ``done`` or
``quarantined`` — the PR 6 zero-lost invariant, now shard-level.

SLO burn-rate alerting stays a front-end concern: shards run with
``slo=None`` and the single front :class:`~repro.obs.slo.SLOEngine`
observes outcomes as front tickets resolve, so availability math spans
shard deaths instead of resetting with them.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.obs import get_telemetry
from repro.obs.slo import SLOEngine, SLObjective
from repro.serve.jobs import DONE, QUARANTINED, REJECTED, Job, JobResult, JobTicket
from repro.serve.service import ServiceStats, SignoffService


def rendezvous_shard(design: str, shard_ids: Sequence[str]) -> str:
    """Highest-random-weight (rendezvous) owner of ``design``.

    Every participant scores ``H(shard_id | design)`` and the highest
    score wins — no ring, no state, and removing one id only remaps
    the designs that id owned.  blake2b keeps the score deterministic
    across processes and Python versions (unlike ``hash()``).
    """
    if not shard_ids:
        raise ValueError("rendezvous_shard needs at least one shard id")
    best_id = None
    best_score = b""
    for sid in shard_ids:
        score = hashlib.blake2b(
            f"{sid}|{design}".encode("utf-8"), digest_size=8
        ).digest()
        if best_id is None or score > best_score:
            best_id, best_score = sid, score
    return best_id


class _FrontRecord:
    """Front-end bookkeeping for one submitted job."""

    __slots__ = ("job", "ticket", "slot", "shard_ticket", "accepted")

    def __init__(self, job: Job, ticket: JobTicket, slot: int) -> None:
        self.job = job
        self.ticket = ticket
        self.slot = slot
        self.shard_ticket: Optional[JobTicket] = None
        self.accepted = False


class ShardedService:
    """K warm shards behind one rendezvous-routed front end.

    ``shard_factory(slot, generation, id_prefix)`` builds one unstarted
    :class:`SignoffService`; the default factory gives each shard a
    fresh :class:`WarmStateCache` at ``scale`` plus the default
    handlers, forwarding ``**shard_kwargs`` (workers, admission, chaos,
    batching, checkpoint_dir, ...) verbatim.  ``slo`` belongs to the
    front end only — shards are constructed with ``slo=None``.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        scale: float = 1.0,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        asleep: Optional[Callable[[float], Any]] = None,
        slo: Optional[Union[SLOEngine, List[SLObjective], tuple]] = None,
        shard_factory: Optional[Callable[[int, int, str], SignoffService]] = None,
        **shard_kwargs: Any,
    ) -> None:
        import time

        self.n_shards = max(1, int(shards))
        self.scale = float(scale)
        self._seed = int(seed)
        self._clock = clock or time.monotonic
        self._asleep = asleep or asyncio.sleep
        self._shard_kwargs = dict(shard_kwargs)
        self._factory = shard_factory or self._default_factory
        if slo is None or isinstance(slo, SLOEngine):
            self.slo: Optional[SLOEngine] = slo
            if slo is not None and slo.clock is None:
                slo.clock = self._clock
        else:
            self.slo = SLOEngine(slo, clock=self._clock)
        self.slo_final: Optional[List[Dict[str, Any]]] = None

        #: Stable HRW slot labels — respawns reuse the label, so the
        #: design→slot map survives any number of shard deaths.
        self._slot_ids = [f"shard-{i}" for i in range(self.n_shards)]
        self._gen = [0] * self.n_shards
        self._shards: List[Optional[SignoffService]] = [None] * self.n_shards
        self._records: Dict[str, _FrontRecord] = {}
        self.results: Dict[str, JobResult] = {}

        # Front-end terminal accounting (per member ticket; shard-side
        # stats are only mined for fusion/worker counters so a killed
        # shard's half-done jobs can't skew ``lost``).
        self.submitted = 0
        self.accepted = 0
        self.done = 0
        self.shed = 0
        self.quarantined = 0
        self.stale_served = 0
        self.redispatched = 0
        self.shards_killed = 0
        self.shards_restarted = 0
        self._dead_stats: List[ServiceStats] = []
        self._id_seq = 0
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    def _default_factory(self, slot: int, generation: int, id_prefix: str) -> SignoffService:
        from repro.serve.handlers import default_handlers
        from repro.serve.state import WarmStateCache

        cache = WarmStateCache(scale=self.scale)
        return SignoffService(
            handlers=default_handlers(cache),
            warm=cache,
            seed=self._seed + slot,
            clock=self._clock,
            asleep=self._asleep,
            slo=None,
            id_prefix=id_prefix,
            **self._shard_kwargs,
        )

    def _make_shard(self, slot: int) -> SignoffService:
        gen = self._gen[slot]
        # Generation in the prefix keeps job ids unique across respawns.
        prefix = f"s{slot}-job" if gen == 0 else f"s{slot}g{gen}-job"
        return self._factory(slot, gen, prefix)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ShardedService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        for slot in range(self.n_shards):
            shard = self._make_shard(slot)
            await shard.start()
            self._shards[slot] = shard
        self._started = True
        tel = get_telemetry()
        if tel.enabled:
            tel.event("shards_start", shards=self.n_shards)
        return self

    async def close(self) -> None:
        if not self._started:
            return
        for shard in self._shards:
            if shard is not None:
                await shard.close()
        self._started = False
        tel = get_telemetry()
        if self.slo is not None:
            statuses = self.slo_final = self.slo.evaluate()
            if tel.enabled:
                tel.event(
                    "slo_status", objectives=statuses, firing=self.slo.firing()
                )
        if tel.enabled:
            tel.event(
                "shards_end",
                done=self.done,
                quarantined=self.quarantined,
                shed=self.shed,
                lost=self.lost(),
                redispatched=self.redispatched,
            )

    async def __aenter__(self) -> "ShardedService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # ------------------------------------------------------------------
    # routing and submission
    # ------------------------------------------------------------------
    def shard_for(self, design: str) -> int:
        """The design's home slot under rendezvous hashing."""
        return self._slot_ids.index(rendezvous_shard(design, self._slot_ids))

    def submit(
        self,
        kind_or_job: Union[str, Job],
        design: str = "",
        params: Optional[Dict[str, Any]] = None,
        **job_fields: Any,
    ) -> JobTicket:
        """Route one job to its design's warm shard; front-end ticket."""
        if not self._started:
            raise RuntimeError(
                "service not started; use `async with ShardedService(...)`"
            )
        if isinstance(kind_or_job, Job):
            job = kind_or_job
        else:
            job = Job(
                kind=kind_or_job, design=design, params=dict(params or {}), **job_fields
            )
        self._id_seq += 1
        job.job_id = f"job-{self._id_seq:04d}"
        job.submitted_t = self._clock()
        future: asyncio.Future = self._loop.create_future()
        ticket = JobTicket(job, future)
        self.submitted += 1
        record = _FrontRecord(job, ticket, self.shard_for(job.design))
        self._records[job.job_id] = record
        self._dispatch(record)
        return ticket

    def _dispatch(self, record: _FrontRecord) -> None:
        """(Re)submit a front job to the live shard in its slot."""
        shard = self._shards[record.slot]
        job = record.job
        clone = Job(
            kind=job.kind,
            design=job.design,
            params=dict(job.params),
            priority=job.priority,
            deadline_s=job.deadline_s,
            max_attempts=job.max_attempts,
        )
        shard_ticket = shard.submit(clone)
        record.shard_ticket = shard_ticket
        if clone.status != REJECTED and not record.accepted:
            record.accepted = True
            self.accepted += 1
        shard_ticket.future.add_done_callback(
            lambda fut, record=record, st=shard_ticket: self._on_shard_result(
                record, st, fut
            )
        )

    def _on_shard_result(
        self, record: _FrontRecord, shard_ticket: JobTicket, fut: asyncio.Future
    ) -> None:
        if record.shard_ticket is not shard_ticket:
            # A killed shard's late echo — the job was redispatched.
            return
        if record.ticket.future.done():
            return
        shard_result: JobResult = fut.result()
        job = record.job
        latency = self._clock() - job.submitted_t
        result = JobResult(
            job_id=job.job_id,
            kind=shard_result.kind,
            design=shard_result.design,
            ok=shard_result.ok,
            value=shard_result.value,
            stale=shard_result.stale,
            timed_out=shard_result.timed_out,
            attempts=shard_result.attempts,
            latency=latency,
            error=shard_result.error,
            retry_after=shard_result.retry_after,
            status=shard_result.status,
        )
        job.status = result.status
        if result.status == REJECTED:
            self.shed += 1
            if record.accepted:
                # A redispatch shed by the replacement shard: the job
                # is terminally rejected, not accepted-and-lost.
                record.accepted = False
                self.accepted -= 1
        elif result.status == QUARANTINED:
            self.quarantined += 1
        else:
            self.done += 1
            if result.stale:
                self.stale_served += 1
        if self.slo is not None:
            if result.status == REJECTED:
                self.slo.observe(result.kind, shed=True)
            elif result.status == QUARANTINED:
                self.slo.observe(result.kind, quarantined=True, latency=latency)
            else:
                self.slo.observe(
                    result.kind, latency=latency, ok=True, timed_out=result.timed_out
                )
            self.slo.evaluate()
        self.results[job.job_id] = result
        record.ticket.future.set_result(result)

    # ------------------------------------------------------------------
    # shard-level faults
    # ------------------------------------------------------------------
    async def kill_shard(self, slot: int) -> int:
        """Kill one shard; respawn it cold and redispatch its jobs.

        Returns the number of redispatched jobs.  The HRW map is a
        function of the (unchanged) slot labels, so only this slot's
        designs are affected — and they come back to the same slot,
        re-warming the replacement's cold cache on first query.
        """
        shard = self._shards[slot]
        self.shards_killed += 1
        self._dead_stats.append(shard.stats)
        victims = [
            r
            for r in self._records.values()
            if r.slot == slot and not r.ticket.future.done()
        ]
        for record in victims:
            record.shard_ticket = None  # ignore any late echo
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.shard_deaths")
            tel.event(
                "shard_killed",
                shard=self._slot_ids[slot],
                generation=self._gen[slot],
                inflight=len(victims),
            )
        await shard.close()
        self._gen[slot] += 1
        replacement = self._make_shard(slot)
        await replacement.start()
        self._shards[slot] = replacement
        self.shards_restarted += 1
        if tel.enabled:
            tel.count("serve.shard_restarts")
            tel.event(
                "shard_restarted",
                shard=self._slot_ids[slot],
                generation=self._gen[slot],
            )
        for record in victims:
            self.redispatched += 1
            if tel.enabled:
                tel.count("serve.jobs_redispatched")
                tel.event(
                    "job_redispatched",
                    job=record.job.job_id,
                    job_kind=record.job.kind,
                    design=record.job.design,
                    shard=self._slot_ids[slot],
                )
            self._dispatch(record)
        return len(victims)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def lost(self) -> int:
        """Accepted front tickets with no terminal state (must be 0)."""
        return self.accepted - self.done - self.quarantined

    @property
    def stats(self) -> ServiceStats:
        """Aggregate view: front-end terminal accounting plus fusion /
        worker / retry counters summed over every shard generation."""
        agg = ServiceStats(
            submitted=self.submitted,
            accepted=self.accepted,
            done=self.done,
            stale_served=self.stale_served,
            shed=self.shed,
            quarantined=self.quarantined,
        )
        for st in self._dead_stats + [
            s.stats for s in self._shards if s is not None
        ]:
            agg.retries += st.retries
            agg.worker_deaths += st.worker_deaths
            agg.worker_restarts += st.worker_restarts
            agg.batches += st.batches
            agg.fused_jobs += st.fused_jobs
        return agg

    @property
    def quarantine(self) -> Dict[str, JobResult]:
        return {
            jid: r for jid, r in self.results.items() if r.status == QUARANTINED
        }

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every front ticket resolved (zero-lost await)."""
        while True:
            unresolved = [
                r.ticket.future
                for r in self._records.values()
                if not r.ticket.future.done()
            ]
            if not unresolved:
                return
            await asyncio.gather(*unresolved)


__all__ = ["ShardedService", "rendezvous_shard"]
