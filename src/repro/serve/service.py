"""The fault-tolerant asyncio sign-off service.

:class:`SignoffService` turns the batch reproduction into a long-lived
query server: a bounded priority queue in front of a supervised fleet
of asyncio workers that pin per-design warm state
(:mod:`repro.serve.state`) and execute the typed jobs of
:mod:`repro.serve.jobs`.  The robustness core (docs/SERVING.md):

* **Supervision** — a worker coroutine that dies mid-job (chaos kill,
  executor process death) is detected by its done-callback; the
  in-flight job is requeued with bounded attempts and a replacement
  worker is spawned immediately, so capacity never decays.
* **Retry with backoff** — a failing handler is retried up to
  ``max_attempts`` with the jittered exponential schedule of
  :func:`repro.runtime.retry.backoff_delay`; both the clock and the
  async sleep are injectable, so chaos tests run on virtual time.
* **Poison-job quarantine** — a job that keeps failing is quarantined
  with its captured error instead of cycling forever; its ticket
  resolves ``ok=False`` so no submitter hangs.  Accepted jobs therefore
  always terminate: ``done`` or ``quarantined``, never lost.
* **Deadlines** — ``Job.deadline_s`` becomes a cooperative
  :class:`~repro.runtime.budget.Budget` threaded into the handler;
  refine/train wind down best-so-far and the result is flagged
  ``timed_out``.
* **Durability** — refine/train checkpoint every iteration under
  ``checkpoint_dir`` and resume after a worker death (byte-identical,
  PR 1); a corrupted checkpoint is discarded and the job restarts
  clean (see :mod:`repro.serve.handlers`).
* **Admission control + graceful degradation** — a saturated queue
  sheds new work with a ``retry_after`` hint; overloaded ``signoff``
  queries are answered from the design's last-known report flagged
  ``stale=True`` instead of being dropped.

Everything is observable through :mod:`repro.obs`: queue-depth gauges,
per-kind latency histograms, retry/quarantine/shed counters and the
``job_*``/``worker_*`` event stream rendered by
``python -m repro report`` (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs import get_telemetry
from repro.obs.slo import SLOEngine, SLObjective
from repro.runtime.budget import Budget, ManualClock
from repro.runtime.retry import backoff_delay
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batcher import BatchConfig, QueryBatcher
from repro.serve.chaos import ChaosMonkey, WorkerKilled
from repro.serve.executors import InlineExecutor, ProcessExecutor
from repro.serve.jobs import (
    DONE,
    KIND_REFINE,
    KIND_SIGNOFF,
    KIND_TRAIN,
    PENDING,
    QUARANTINED,
    REJECTED,
    RUNNING,
    Job,
    JobResult,
    JobTicket,
)


def virtual_asleep(clock: ManualClock) -> Callable[[float], Any]:
    """Async sleep that consumes *virtual* time from a ManualClock.

    Pair with ``SignoffService(clock=manual.now, asleep=...)`` so
    backoff and chaos delays are deterministic and free.
    """

    async def _sleep(seconds: float) -> None:
        clock.advance(seconds)
        await asyncio.sleep(0)

    return _sleep


@dataclass
class JobContext:
    """Per-attempt execution context handed to handlers."""

    job: Job
    attempt: int = 0  # 0-based retry index (job.attempts - 1)
    budget: Optional[Budget] = None
    checkpoint_path: Optional[str] = None
    chaos: Optional[ChaosMonkey] = None

    def heartbeat(self) -> None:
        """Cooperative per-iteration hook; chaos kills fire here."""
        if self.chaos is not None:
            self.chaos.tick(self.job)


@dataclass
class ServiceStats:
    """Terminal accounting the chaos tests and the loadgen assert on."""

    submitted: int = 0
    accepted: int = 0
    done: int = 0
    stale_served: int = 0
    shed: int = 0
    quarantined: int = 0
    retries: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    #: Query fusion (serve/batcher.py): fused dispatches and the member
    #: jobs they carried.  Accounting above stays per *member* — a
    #: fused carrier is internal and never counted as a job itself.
    batches: int = 0
    fused_jobs: int = 0

    def lost(self) -> int:
        """Accepted jobs that reached no terminal state (must be 0)."""
        return self.accepted - self.done - self.quarantined

    def mean_batch_width(self) -> float:
        """Mean members per fused dispatch (0 when nothing fused)."""
        return self.fused_jobs / self.batches if self.batches else 0.0

    def fusion_ratio(self) -> float:
        """Fraction of completed jobs answered by a fused dispatch."""
        return self.fused_jobs / self.done if self.done else 0.0


class SignoffService:
    """Async job service over the warm timing state (docs/SERVING.md)."""

    def __init__(
        self,
        handlers: Optional[Dict[str, Callable]] = None,
        *,
        warm=None,
        workers: int = 2,
        admission: Optional[AdmissionConfig] = None,
        max_attempts: int = 3,
        retry_backoff: float = 0.01,
        retry_factor: float = 2.0,
        retry_jitter: float = 0.0,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        asleep: Optional[Callable[[float], Any]] = None,
        chaos: Optional[ChaosMonkey] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        process_jobs: int = 0,
        process_kinds: tuple = (KIND_REFINE, KIND_TRAIN),
        degrade_signoff: bool = True,
        slo: Optional[Union[SLOEngine, List[SLObjective], tuple]] = None,
        batching: Optional[Union[BatchConfig, bool]] = None,
        id_prefix: str = "job",
    ) -> None:
        if handlers is None:
            from repro.serve.handlers import default_handlers
            from repro.serve.state import WarmStateCache

            warm = warm if warm is not None else WarmStateCache()
            handlers = default_handlers(warm)
        self._handlers = dict(handlers)
        self._warm = warm
        self.workers = max(1, int(workers))
        self._admission = AdmissionController(admission)
        self.max_attempts = max(1, int(max_attempts))
        self._retry_backoff = float(retry_backoff)
        self._retry_factor = float(retry_factor)
        self._retry_jitter = float(retry_jitter)
        self._rng = random.Random(seed)
        self._clock = clock or time.monotonic
        self._asleep = asleep or asyncio.sleep
        self.chaos = chaos
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._inline = InlineExecutor()
        self._process: Optional[ProcessExecutor] = (
            ProcessExecutor(process_jobs) if process_jobs > 0 else None
        )
        self._process_kinds = tuple(process_kinds)
        self.degrade_signoff = bool(degrade_signoff)
        # SLO burn-rate alerting (docs/OBSERVABILITY.md): either a
        # ready SLOEngine (caller owns its clock) or a list of
        # objectives, wrapped around the service clock so chaos tests
        # on virtual time get deterministic alert transitions.
        if slo is None or isinstance(slo, SLOEngine):
            self.slo: Optional[SLOEngine] = slo
            if slo is not None and slo.clock is None:
                slo.clock = self._clock
        else:
            self.slo = SLOEngine(slo, clock=self._clock)
        #: Final per-objective SLO statuses, captured at close() so the
        #: CLI reports the state *at shutdown*, not a later re-read.
        self.slo_final: Optional[List[Dict[str, Any]]] = None

        # Query fusion (serve/batcher.py): ``True`` means defaults;
        # ``None``/``False`` disables — the unbatched path is untouched.
        if batching is True:
            batching = BatchConfig()
        self._batcher: Optional[QueryBatcher] = (
            QueryBatcher(self, batching) if batching else None
        )
        self._id_prefix = str(id_prefix)

        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._pending_by_kind: Dict[str, int] = {}
        self._worker_tasks: Dict[int, asyncio.Task] = {}
        self._inflight: Dict[int, Job] = {}
        self._casualty: Dict[int, Job] = {}
        self._tickets: Dict[str, JobTicket] = {}
        self.results: Dict[str, JobResult] = {}
        self.quarantine: Dict[str, JobResult] = {}
        self.stats = ServiceStats()
        self._id_seq = 0
        self._put_seq = 0
        self._wid_seq = 0
        self._started = False
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SignoffService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._started = True
        self._closing = False
        for _ in range(self.workers):
            self._spawn_worker()
        tel = get_telemetry()
        if tel.enabled:
            tel.event("serve_start", workers=self.workers)
        return self

    async def close(self) -> None:
        if not self._started:
            return
        self._closing = True
        if self._batcher is not None:
            # Nothing may strand in a bucket: flush whatever is parked
            # (normal shutdown drained already; this is the safety net)
            # and drop the linger timers.
            self._batcher.flush_all()
            self._batcher.cancel_timers()
        tasks = list(self._worker_tasks.values())
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._worker_tasks.clear()
        if self._process is not None:
            await self._process.aclose()
        self._started = False
        tel = get_telemetry()
        if self.slo is not None:
            statuses = self.slo_final = self.slo.evaluate()
            if tel.enabled:
                tel.event(
                    "slo_status",
                    objectives=statuses,
                    firing=self.slo.firing(),
                )
        if tel.enabled:
            tel.event(
                "serve_end",
                done=self.stats.done,
                quarantined=self.stats.quarantined,
                shed=self.stats.shed,
                lost=self.stats.lost(),
            )

    async def __aenter__(self) -> "SignoffService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # ------------------------------------------------------------------
    # submission and admission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind_or_job: Union[str, Job],
        design: str = "",
        params: Optional[Dict[str, Any]] = None,
        **job_fields,
    ) -> JobTicket:
        """Admit one job (or shed it); returns its ticket immediately.

        Shed jobs resolve at once with ``ok=False`` and a
        ``retry_after`` hint — except saturated ``signoff`` queries for
        a warm design, which are answered from the last-known report
        flagged ``stale=True`` (graceful degradation).
        """
        if not self._started:
            raise RuntimeError("service not started; use `async with SignoffService(...)`")
        if isinstance(kind_or_job, Job):
            job = kind_or_job
        else:
            job = Job(
                kind=kind_or_job, design=design, params=dict(params or {}), **job_fields
            )
        self._id_seq += 1
        job.job_id = f"{self._id_prefix}-{self._id_seq:04d}"
        job.submitted_t = self._clock()
        future: asyncio.Future = self._loop.create_future()
        ticket = JobTicket(job, future)
        if job.kind not in self._handlers:
            raise ValueError(f"no handler registered for job kind {job.kind!r}")

        tel = get_telemetry()
        self.stats.submitted += 1
        if tel.enabled:
            tel.count("serve.jobs.submitted")
            tel.count(f"serve.jobs.{job.kind}")

        decision = self._admission.admit(
            job,
            pending=self._pending_backlog(),
            pending_by_kind=self._pending_by_kind,
            workers=self.workers,
        )
        if not decision.admitted:
            degraded = self._try_stale_answer(job, ticket, decision)
            if not degraded:
                self._shed(job, ticket, decision)
            return ticket

        self._tickets[job.job_id] = ticket
        self.stats.accepted += 1
        job.status = PENDING
        if tel.enabled:
            tel.event(
                "job_submitted",
                job=job.job_id,
                job_kind=job.kind,
                design=job.design,
                priority=job.effective_priority(),
            )
        if self._batcher is not None and self._batcher.wants(job):
            # Park in a fusion bucket: the member is already counted in
            # the pending backlog; the flush enqueues without recounting.
            self._note_pending(job.kind, 1)
            self._batcher.add(job)
        else:
            self._enqueue(job)
        return ticket

    def _try_stale_answer(self, job: Job, ticket: JobTicket, decision) -> bool:
        """Degraded signoff: answer from last-known state, mark stale."""
        if not (self.degrade_signoff and job.kind == KIND_SIGNOFF and self._warm):
            return False
        peek = getattr(self._warm, "peek", None)
        ws = peek(job.design) if peek is not None else None
        answer = ws.stale_answer() if ws is not None else None
        if answer is None:
            return False
        job.status = DONE
        self.stats.accepted += 1
        self.stats.done += 1
        self.stats.stale_served += 1
        result = JobResult(
            job_id=job.job_id,
            kind=job.kind,
            design=job.design,
            ok=True,
            value=answer,
            stale=True,
            attempts=0,
            latency=self._clock() - job.submitted_t,
            status=DONE,
        )
        self.results[job.job_id] = result
        ticket.future.set_result(result)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.stale_answers")
            tel.event(
                "job_degraded",
                job=job.job_id,
                design=job.design,
                reason=decision.reason,
            )
        return True

    def _shed(self, job: Job, ticket: JobTicket, decision) -> None:
        job.status = REJECTED
        self.stats.shed += 1
        result = JobResult(
            job_id=job.job_id,
            kind=job.kind,
            design=job.design,
            ok=False,
            error=f"shed: {decision.reason}",
            retry_after=decision.retry_after,
            status=REJECTED,
        )
        self.results[job.job_id] = result
        ticket.future.set_result(result)
        if self.slo is not None:
            self.slo.observe(job.kind, shed=True)
            self.slo.evaluate()
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.shed")
            tel.event(
                "job_shed",
                job=job.job_id,
                job_kind=job.kind,
                reason=decision.reason,
                retry_after=decision.retry_after,
            )

    def _note_pending(self, kind: str, delta: int) -> None:
        self._pending_by_kind[kind] = max(
            0, self._pending_by_kind.get(kind, 0) + delta
        )

    def _pending_backlog(self) -> int:
        """Member-weighted pending jobs: queued + parked in batcher
        buckets (each fused carrier counts as its width)."""
        return sum(self._pending_by_kind.values())

    def _enqueue(self, job: Job) -> None:
        self._note_pending(job.kind, job.width())
        self._enqueue_flushed(job)

    def _enqueue_flushed(self, job: Job) -> None:
        """Queue a job whose members are already in the pending counts
        (the batcher flush path; ``_enqueue`` is count-then-flush)."""
        self._put_seq += 1
        self._queue.put_nowait((job.effective_priority(), self._put_seq, job))
        tel = get_telemetry()
        if tel.enabled:
            depth = self._queue.qsize()
            tel.gauge("serve.queue_depth", depth)
            tel.hist("serve.queue_depth.samples", depth)

    # ------------------------------------------------------------------
    # workers and supervision
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> int:
        self._wid_seq += 1
        wid = self._wid_seq
        task = self._loop.create_task(self._worker(wid), name=f"serve-worker-{wid}")
        self._worker_tasks[wid] = task
        task.add_done_callback(lambda t, wid=wid: self._worker_exit(wid, t))
        return wid

    async def _worker(self, wid: int) -> None:
        while True:
            _, _, job = await self._queue.get()
            self._note_pending(job.kind, -job.width())
            self._inflight[wid] = job
            try:
                await self._run_job(wid, job)
            except WorkerKilled:
                # Simulated (or real) worker death: remember the victim
                # job for the supervisor, then die like a process would.
                self._casualty[wid] = job
                raise
            finally:
                self._inflight.pop(wid, None)
                self._queue.task_done()

    def _worker_exit(self, wid: int, task: asyncio.Task) -> None:
        """Supervision: requeue the casualty, restart the worker."""
        self._worker_tasks.pop(wid, None)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None or self._closing:
            return
        job = self._casualty.pop(wid, None)
        self.stats.worker_deaths += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.worker_deaths")
            tel.event(
                "worker_killed",
                worker=wid,
                job=None if job is None else job.job_id,
                error=f"{type(exc).__name__}: {exc}",
            )
        new_wid = self._spawn_worker()
        self.stats.worker_restarts += 1
        if tel.enabled:
            tel.count("serve.worker_restarts")
            tel.event("worker_restarted", worker=new_wid, replaces=wid)
        if job is not None:
            if self.chaos is not None:
                # The window where a checkpoint can rot: job down,
                # worker dead, nobody watching.
                self.chaos.on_worker_down(job, self._checkpoint_path(job))
            self._loop.create_task(
                self._retry_or_quarantine(job, f"worker died: {exc}")
            )

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _checkpoint_path(self, job: Job) -> Optional[Path]:
        if self.checkpoint_dir is None or job.kind not in (KIND_REFINE, KIND_TRAIN):
            return None
        return self.checkpoint_dir / f"{job.job_id}.npz"

    def _executor_for(self, job: Job):
        # Fused carriers always run inline: their value is the shared
        # warm-state probe batch, which a process payload cannot carry.
        if self._process is not None and job.kind in self._process_kinds and not job.fused:
            return self._process
        return self._inline

    async def _run_job(self, wid: int, job: Job) -> None:
        job.attempts += 1
        job.status = RUNNING
        tel = get_telemetry()
        if tel.enabled:
            tel.event(
                "job_started",
                job=job.job_id,
                job_kind=job.kind,
                design=job.design,
                attempt=job.attempts,
                worker=wid,
            )
        if self.chaos is not None:
            await self.chaos.on_dispatch(job, self._asleep)
        budget = (
            Budget(wall_seconds=job.deadline_s, clock=self._clock)
            if job.deadline_s is not None
            else None
        )
        ckpt = self._checkpoint_path(job)
        ctx = JobContext(
            job=job,
            attempt=job.attempts - 1,
            budget=budget,
            checkpoint_path=None if ckpt is None else str(ckpt),
            chaos=self.chaos,
        )
        t0 = self._clock()
        try:
            value = await self._executor_for(job).run(
                self._handlers[job.kind], job, ctx
            )
        except (WorkerKilled, asyncio.CancelledError):
            raise
        except Exception as exc:
            await self._retry_or_quarantine(job, f"{type(exc).__name__}: {exc}")
            return
        self._admission.observe_latency(self._clock() - t0)
        timed_out = budget is not None and budget.expired()
        if job.fused:
            self._finish_fused(job, value, timed_out=timed_out)
            return
        stale = False
        if isinstance(value, dict):
            stale = bool(value.get("stale", False))
            timed_out = timed_out or bool(value.get("timed_out", False))
        self._finish(job, value, stale=stale, timed_out=timed_out)

    def _finish_fused(self, carrier: Job, values: Any, timed_out: bool) -> None:
        """Scatter a fused dispatch's per-member values to the tickets."""
        members = carrier.members or []
        if not isinstance(values, (list, tuple)) or len(values) != len(members):
            self._quarantine(
                carrier,
                f"fused {carrier.kind} handler returned "
                f"{type(values).__name__} for {len(members)} members",
            )
            return
        carrier.status = DONE
        for member, value in zip(members, values):
            member.attempts = carrier.attempts
            stale = isinstance(value, dict) and bool(value.get("stale", False))
            m_timed_out = timed_out or (
                isinstance(value, dict) and bool(value.get("timed_out", False))
            )
            self._finish(member, value, stale=stale, timed_out=m_timed_out)

    async def _retry_or_quarantine(self, job: Job, error: str) -> None:
        max_attempts = (
            job.max_attempts if job.max_attempts is not None else self.max_attempts
        )
        job.error = error
        tel = get_telemetry()
        if job.attempts >= max_attempts:
            self._quarantine(job, error)
            return
        self.stats.retries += 1
        delay = backoff_delay(
            job.attempts - 1,
            self._retry_backoff,
            self._retry_factor,
            jitter=self._retry_jitter,
            rng=self._rng,
        )
        if tel.enabled:
            tel.count("serve.retries")
            tel.event(
                "job_retry",
                job=job.job_id,
                attempt=job.attempts,
                delay=delay,
                error=error,
            )
        if delay > 0:
            await self._asleep(delay)
        job.status = PENDING
        self._enqueue(job)

    def _quarantine(self, job: Job, error: str) -> None:
        if job.fused:
            # A poisoned fused dispatch poisons every member — each
            # ticket still resolves, so nothing hangs or is lost.
            job.status = QUARANTINED
            for member in job.members or []:
                member.attempts = job.attempts
                self._quarantine(member, error)
            return
        job.status = QUARANTINED
        self.stats.quarantined += 1
        result = JobResult(
            job_id=job.job_id,
            kind=job.kind,
            design=job.design,
            ok=False,
            error=error,
            attempts=job.attempts,
            latency=self._clock() - job.submitted_t,
            status=QUARANTINED,
        )
        self.quarantine[job.job_id] = result
        self.results[job.job_id] = result
        ticket = self._tickets.pop(job.job_id, None)
        if ticket is not None and not ticket.future.done():
            ticket.future.set_result(result)
        if self.slo is not None:
            self.slo.observe(job.kind, quarantined=True, latency=result.latency)
            self.slo.evaluate()
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.quarantined")
            tel.event(
                "job_quarantined",
                job=job.job_id,
                job_kind=job.kind,
                design=job.design,
                attempts=job.attempts,
                error=error,
            )

    def _finish(self, job: Job, value: Any, stale: bool, timed_out: bool) -> None:
        job.status = DONE
        self.stats.done += 1
        latency = self._clock() - job.submitted_t
        result = JobResult(
            job_id=job.job_id,
            kind=job.kind,
            design=job.design,
            ok=True,
            value=value,
            stale=stale,
            timed_out=timed_out,
            attempts=job.attempts,
            latency=latency,
            status=DONE,
        )
        self.results[job.job_id] = result
        ticket = self._tickets.pop(job.job_id, None)
        if ticket is not None and not ticket.future.done():
            ticket.future.set_result(result)
        if self.slo is not None:
            self.slo.observe(
                job.kind, latency=latency, ok=True, timed_out=timed_out
            )
            self.slo.evaluate()
        tel = get_telemetry()
        if tel.enabled:
            tel.count("serve.done")
            tel.hist(f"serve.latency.{job.kind}", latency)
            tel.gauge("serve.queue_depth", self._queue.qsize())
            tel.event(
                "job_done",
                job=job.job_id,
                job_kind=job.kind,
                design=job.design,
                attempts=job.attempts,
                latency=latency,
                stale=stale,
                timed_out=timed_out,
            )

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every accepted job reached a terminal state.

        This await *is* the zero-lost-jobs invariant: each accepted
        ticket resolves as ``done`` or ``quarantined``; a service that
        lost a job would hang here (chaos tests bound it with
        ``asyncio.wait_for``).
        """
        while True:
            unresolved = [
                t.future for t in self._tickets.values() if not t.future.done()
            ]
            if not unresolved:
                return
            await asyncio.gather(*unresolved)


__all__ = [
    "JobContext",
    "ServiceStats",
    "SignoffService",
    "virtual_asleep",
]
