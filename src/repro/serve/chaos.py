"""Deterministic chaos harness for the sign-off service.

`repro.runtime.faults` makes a single callable misbehave on the k-th
call; serving needs the same determinism one level up — kill a *worker*
mid-job, delay the queue, corrupt a checkpoint while its job is down —
so the chaos tests can assert the service converges to the fault-free
answers (docs/SERVING.md).

Specs fire on deterministic indices, never on wall-clock:

* :class:`KillWorker` — raise :class:`WorkerKilled` out of the worker
  coroutine on a matching job's ``on_attempt``-th attempt, either at
  dispatch (``at_tick=0``) or at the job's ``at_tick``-th cooperative
  heartbeat (the refine handler heartbeats once per Algorithm 1
  iteration, so ``at_tick=3`` kills mid-refinement with checkpoints on
  disk);
* :class:`DelayDispatch` — consume ``seconds`` via the service's
  injectable async sleep before a matching dispatch (virtual time under
  a ManualClock);
* :class:`CorruptCheckpoint` — truncate the job's checkpoint file to
  ``keep_bytes`` while the job is down after a worker death, forcing
  the resume path through
  :class:`~repro.runtime.errors.CheckpointError` recovery.

Jobs match a spec's ``job`` field by job id, kind, design name, or
``"*"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.runtime.errors import ReproError
from repro.serve.jobs import Job


class WorkerKilled(ReproError):
    """A worker died mid-job (chaos-injected or a real executor crash)."""

    def __init__(self, what: str = "worker killed") -> None:
        super().__init__(what)


@dataclass(frozen=True)
class KillWorker:
    """Kill the worker serving a matching job."""

    job: str = "*"
    on_attempt: int = 1  # 1-based attempt of the matching job
    at_tick: int = 0  # 0 = at dispatch; k > 0 = at the k-th heartbeat


@dataclass(frozen=True)
class DelayDispatch:
    """Stall a matching job's dispatch by ``seconds`` (injectable sleep).

    ``max_fires`` bounds how many matching dispatches the delay hits
    (None = every one).  A bounded delay is the canonical latency
    fault for SLO tests: the first ``max_fires`` jobs blow the latency
    budget and fire the burn-rate alert, the rest run fast and clear
    it — all on virtual time.
    """

    job: str = "*"
    on_attempt: int = 1
    seconds: float = 0.0
    max_fires: Optional[int] = None


@dataclass(frozen=True)
class CorruptCheckpoint:
    """Truncate a matching job's checkpoint while its worker is down."""

    job: str = "*"
    keep_bytes: int = 100
    once: bool = True


def _matches(pattern: str, job: Job) -> bool:
    return pattern in ("*", job.job_id, job.kind, job.design)


class ChaosMonkey:
    """Deterministic fault scheduler wired into the service's hooks."""

    def __init__(self, *specs) -> None:
        self.kills = tuple(s for s in specs if isinstance(s, KillWorker))
        self.delays = tuple(s for s in specs if isinstance(s, DelayDispatch))
        self.corruptions = list(s for s in specs if isinstance(s, CorruptCheckpoint))
        self._ticks: Dict[Tuple[str, int], int] = {}
        self._delay_fires: Dict[int, int] = {}  # per-spec fire counts
        self.kills_fired = 0
        self.delays_fired = 0
        self.corruptions_fired = 0

    # ------------------------------------------------------------------
    def _tel(self):
        from repro.obs import get_telemetry

        return get_telemetry()

    async def on_dispatch(self, job: Job, asleep) -> None:
        """Called by the worker right before the handler runs."""
        for index, spec in enumerate(self.delays):
            if _matches(spec.job, job) and job.attempts == spec.on_attempt:
                fired = self._delay_fires.get(index, 0)
                if spec.max_fires is not None and fired >= spec.max_fires:
                    continue
                self._delay_fires[index] = fired + 1
                self.delays_fired += 1
                tel = self._tel()
                if tel.enabled:
                    tel.count("chaos.delays")
                    tel.event(
                        "chaos_delay", job=job.job_id, seconds=spec.seconds
                    )
                await asleep(spec.seconds)
        for spec in self.kills:
            if (
                spec.at_tick == 0
                and _matches(spec.job, job)
                and job.attempts == spec.on_attempt
            ):
                self._record_kill(job, tick=0)
                raise WorkerKilled(
                    f"chaos killed worker at dispatch of {job.job_id} "
                    f"(attempt {job.attempts})"
                )

    def tick(self, job: Job) -> None:
        """Cooperative heartbeat from inside a handler (per iteration)."""
        key = (job.job_id, job.attempts)
        tick = self._ticks.get(key, 0) + 1
        self._ticks[key] = tick
        for spec in self.kills:
            if (
                spec.at_tick == tick
                and _matches(spec.job, job)
                and job.attempts == spec.on_attempt
            ):
                self._record_kill(job, tick=tick)
                raise WorkerKilled(
                    f"chaos killed worker at tick {tick} of {job.job_id} "
                    f"(attempt {job.attempts})"
                )

    def on_worker_down(self, job: Job, checkpoint_path: Optional[Path]) -> None:
        """Called by the supervisor after a worker death, before requeue."""
        if checkpoint_path is None:
            return
        path = Path(checkpoint_path)
        remaining = []
        for spec in self.corruptions:
            if _matches(spec.job, job) and path.exists():
                size = path.stat().st_size
                keep = min(max(0, spec.keep_bytes), size)
                with open(path, "r+b") as fh:
                    fh.truncate(keep)
                self.corruptions_fired += 1
                tel = self._tel()
                if tel.enabled:
                    tel.count("chaos.corruptions")
                    tel.event(
                        "chaos_corrupt",
                        job=job.job_id,
                        path=str(path),
                        kept_bytes=keep,
                        original_bytes=size,
                    )
                if not spec.once:
                    remaining.append(spec)
            else:
                remaining.append(spec)
        self.corruptions[:] = remaining

    # ------------------------------------------------------------------
    def _record_kill(self, job: Job, tick: int) -> None:
        self.kills_fired += 1
        tel = self._tel()
        if tel.enabled:
            tel.count("chaos.kills")
            tel.event(
                "chaos_kill", job=job.job_id, attempt=job.attempts, tick=tick
            )


__all__ = [
    "ChaosMonkey",
    "CorruptCheckpoint",
    "DelayDispatch",
    "KillWorker",
    "WorkerKilled",
]
