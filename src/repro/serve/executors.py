"""Job executors: in-process async handlers and a process-backed pool.

The service's workers are asyncio coroutines; *where the handler body
runs* is the executor's choice:

* :class:`InlineExecutor` — the handler runs in the event loop process
  and shares the service's :class:`~repro.serve.state.WarmStateCache`
  directly.  This is the default: cheap queries (``whatif``,
  ``signoff``) stay on the warm incremental STA state, and the chaos
  harness can heartbeat-kill deterministically mid-handler.
* :class:`ProcessExecutor` — CPU-heavy ``refine``/``train`` jobs ship
  to a worker process through the same ``ProcessPoolExecutor`` idiom as
  :mod:`repro.experiments.parallel`; each worker process pins its own
  module-level warm cache (:mod:`repro.serve.handlers`), so repeated
  jobs for one design stay warm *per process*.  A worker process that
  dies surfaces as :class:`~repro.serve.chaos.WorkerKilled`, which
  drops the job into the exact same supervised requeue path as an
  in-process worker death — one crash-recovery story for both.
"""

from __future__ import annotations

import asyncio
import inspect
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Optional

from repro.serve.chaos import WorkerKilled


class InlineExecutor:
    """Run the handler in the event-loop process (sync or async)."""

    async def run(self, handler, job, ctx) -> Any:
        result = handler(job, ctx)
        if inspect.isawaitable(result):
            result = await result
        return result

    async def aclose(self) -> None:
        pass


class ProcessExecutor:
    """Run handlers that expose a picklable ``remote`` entry in a pool.

    A handler opts in by carrying two attributes (see
    :func:`repro.serve.handlers.default_handlers`):

    * ``handler.remote`` — a module-level function of one payload;
    * ``handler.payload(job, ctx)`` — builds that picklable payload.

    Handlers without them fall back to inline execution.  A broken pool
    (worker process death) is rebuilt lazily and the job's failure is
    raised as :class:`WorkerKilled` so the supervisor requeues it with
    bounded attempts.
    """

    def __init__(self, max_workers: int = 2) -> None:
        self.max_workers = max(1, int(max_workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inline = InlineExecutor()

    async def run(self, handler, job, ctx) -> Any:
        remote = getattr(handler, "remote", None)
        payload_fn = getattr(handler, "payload", None)
        if remote is None or payload_fn is None:
            return await self._inline.run(handler, job, ctx)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._pool, remote, payload_fn(job, ctx)
            )
        except BrokenProcessPool as exc:
            # The worker process died mid-job; scrap the pool (it is
            # unusable) and let the supervisor requeue the job.
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False, cancel_futures=True)
            raise WorkerKilled(f"executor process died: {exc}") from exc

    async def aclose(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


__all__ = ["InlineExecutor", "ProcessExecutor"]
