"""Admission control and load shedding for the sign-off service.

A bounded queue is the backpressure primitive: once ``max_pending``
jobs are waiting (or a kind's own quota is full), new work is **shed at
the door** with a ``retry_after`` hint instead of growing an unbounded
backlog that would blow latency for everything already accepted.

The retry-after estimate is deliberately simple and deterministic: the
queue's current depth times the exponentially-weighted mean service
time, divided by the worker count — "when your slot would plausibly
come up".  The service keeps the EWMA fed from completed-job latencies.

Overloaded ``signoff`` queries can degrade instead of shedding: the
service answers from the last-known incremental STA state flagged
``stale=True`` (see ``SignoffService.submit``); the controller only
decides *accept vs shed*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.serve.jobs import Job


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure knobs (docs/SERVING.md)."""

    max_pending: int = 64  # total queued (not yet running) jobs
    #: Optional per-kind quotas; a kind absent here only honours the
    #: global bound.  Batch kinds typically get small quotas so a train
    #: storm cannot crowd out interactive queries.
    max_pending_per_kind: Mapping[str, int] = field(default_factory=dict)
    #: Floor for retry_after hints when no latency history exists yet.
    min_retry_after: float = 0.05


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    reason: str = ""
    retry_after: Optional[float] = None


class AdmissionController:
    """Decides accept vs shed from queue depth and service-time EWMA."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self._ewma_latency: Optional[float] = None

    # ------------------------------------------------------------------
    def observe_latency(self, seconds: float, alpha: float = 0.3) -> None:
        """Feed one completed job's service latency into the EWMA."""
        seconds = max(0.0, float(seconds))
        if self._ewma_latency is None:
            self._ewma_latency = seconds
        else:
            self._ewma_latency += alpha * (seconds - self._ewma_latency)

    def retry_after(self, pending: int, workers: int) -> float:
        """Deterministic hint: backlog drain time at current throughput."""
        base = self._ewma_latency if self._ewma_latency is not None else 0.0
        workers = max(1, int(workers))
        estimate = (pending + 1) * base / workers
        return max(self.config.min_retry_after, estimate)

    # ------------------------------------------------------------------
    def admit(
        self,
        job: Job,
        pending: int,
        pending_by_kind: Dict[str, int],
        workers: int,
    ) -> AdmissionDecision:
        cfg = self.config
        quota = cfg.max_pending_per_kind.get(job.kind)
        if quota is not None and pending_by_kind.get(job.kind, 0) >= quota:
            return AdmissionDecision(
                False,
                reason=f"{job.kind} quota full ({quota} pending)",
                retry_after=self.retry_after(pending, workers),
            )
        if pending >= cfg.max_pending:
            return AdmissionDecision(
                False,
                reason=f"queue saturated ({pending}/{cfg.max_pending} pending)",
                retry_after=self.retry_after(pending, workers),
            )
        return AdmissionDecision(True)


__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionDecision"]
