"""Bench trajectory: append-only history of per-kernel speedups.

``BENCH_timing.json`` is a single point in time — every run overwrites
the last, so a slow drift (or a one-PR regression masked by a noisy
baseline refresh) is invisible.  ``python -m repro.bench --history
BENCH_history.jsonl`` appends one schema-versioned summary row per run
instead; ``python -m repro report --bench-trend BENCH_history.jsonl``
renders the per-kernel speedup trajectories and names the kernels
whose **latest** speedup fell more than ``tolerance`` below their
**trajectory median** — an attributed trend check, much harder for a
single noisy sample to flap than the point-in-time gate.

Row format (one JSON object per line)::

    {"schema": 1, "t": <unix seconds>, "quick": bool, "label": str|null,
     "speedups": {"<kernel>/<design>/<field>": float, ...}}

The flat ``kernel/design/field`` keys mirror the problem strings of
:func:`repro.bench.compare_reports`, so a trend line and a gate failure
name the same metric.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

#: Version of the history row schema (bump on incompatible change).
HISTORY_SCHEMA = 1

#: Latest speedup below (1 - tolerance) * trajectory median = regressed.
DEFAULT_TOLERANCE = 0.25


def summary_row(
    report: Dict[str, Any],
    timestamp: Optional[float] = None,
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """Compress one bench report into a history row."""
    from repro.bench import _SPEEDUP_FIELDS

    speedups: Dict[str, float] = {}
    for kernel, fields in _SPEEDUP_FIELDS.items():
        for design, row in (report.get("kernels", {}).get(kernel) or {}).items():
            for field in fields:
                if field in row:
                    speedups[f"{kernel}/{design}/{field}"] = float(row[field])
    return {
        "schema": HISTORY_SCHEMA,
        "t": float(timestamp if timestamp is not None else time.time()),
        "quick": bool(report.get("quick", False)),
        "report_version": report.get("version"),
        "label": label,
        "speedups": speedups,
    }


def append_history(
    report: Dict[str, Any],
    path: Union[str, Path],
    timestamp: Optional[float] = None,
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one summary row for ``report`` to the history JSONL."""
    row = summary_row(report, timestamp=timestamp, label=label)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read every history row, oldest first.

    Raises ``ValueError`` with the offending line number on corrupt
    rows; rows written by a *newer* schema are kept (their known keys
    still render) so mixed-version files stay readable.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(f"bench history not found: {path}")
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt bench history row ({exc})"
                ) from exc
            if not isinstance(row, dict) or "speedups" not in row:
                raise ValueError(
                    f"{path}:{lineno}: not a bench history row"
                )
            rows.append(row)
    return rows


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def summarize_trends(
    rows: Sequence[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Dict[str, Any]]:
    """Per-metric trajectory stats keyed by ``kernel/design/field``.

    ``regressed`` is set when the latest value fell below
    ``(1 - tolerance) * median`` of the whole trajectory — the same
    shape of check as :func:`repro.bench.compare_reports`, but against
    the history median instead of one committed baseline.
    """
    series: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in (row.get("speedups") or {}).items():
            series.setdefault(key, []).append(float(value))
    trends: Dict[str, Dict[str, Any]] = {}
    for key in sorted(series):
        values = series[key]
        median = _median(values)
        latest = values[-1]
        trends[key] = {
            "values": values,
            "runs": len(values),
            "median": median,
            "latest": latest,
            "best": max(values),
            "worst": min(values),
            "regressed": len(values) >= 2
            and latest < (1.0 - tolerance) * median,
        }
    return trends


_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def render_trends(
    rows: Sequence[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Text report of per-kernel speedup trajectories."""
    lines = [f"Bench trend ({len(rows)} runs on record)"]
    if not rows:
        return lines[0] + "\n"
    trends = summarize_trends(rows, tolerance=tolerance)
    width = max((len(k) for k in trends), default=0)
    regressed: List[str] = []
    for key, t in trends.items():
        flag = "  REGRESSED" if t["regressed"] else ""
        lines.append(
            f"  {key.ljust(width)}  {_sparkline(t['values'])}  "
            f"latest {t['latest']:.2f}x  median {t['median']:.2f}x  "
            f"range [{t['worst']:.2f}, {t['best']:.2f}]x{flag}"
        )
        if t["regressed"]:
            regressed.append(key)
    if regressed:
        lines.append(
            f"  {len(regressed)} metric(s) below "
            f"{1.0 - tolerance:.0%} of trajectory median: "
            + ", ".join(regressed)
        )
    else:
        lines.append("  no metric below trajectory median tolerance")
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_TOLERANCE",
    "HISTORY_SCHEMA",
    "append_history",
    "load_history",
    "render_trends",
    "summarize_trends",
    "summary_row",
]
