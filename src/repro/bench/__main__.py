"""CLI entry point: ``python -m repro.bench``.

Examples
--------
Full run, write the committed baseline::

    python -m repro.bench --out BENCH_timing.json

Quick smoke (two small designs) checked against the baseline::

    python -m repro.bench --quick --check BENCH_timing.json

Exit codes: 0 on success, 2 when ``--check`` finds a regression.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.bench import (
    ALL_KERNELS,
    FULL_DESIGNS,
    QUICK_DESIGNS,
    compare_reports,
    load_report,
    run_benchmarks,
    save_report,
)
from repro.obs import Telemetry, setup_logging, telemetry_session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the STA / incremental / evaluator timing kernels.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small designs only {QUICK_DESIGNS} (default adds {FULL_DESIGNS[-1]})",
    )
    parser.add_argument(
        "--design",
        action="append",
        dest="designs",
        metavar="NAME",
        help="benchmark only NAME (repeatable; overrides --quick's design set)",
    )
    parser.add_argument(
        "--kernel",
        action="append",
        dest="kernels",
        metavar="NAME",
        choices=ALL_KERNELS,
        help=f"benchmark only kernel NAME (repeatable; one of {ALL_KERNELS})",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats per kernel")
    parser.add_argument(
        "--queries", type=int, default=12, help="moves per incremental-query benchmark"
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report to PATH")
    parser.add_argument(
        "--history",
        metavar="PATH",
        help="append one per-kernel speedup summary row to the history "
        "JSONL at PATH; render with `python -m repro report "
        "--bench-trend PATH`",
    )
    parser.add_argument(
        "--label",
        metavar="TEXT",
        default=None,
        help="free-form label recorded in the --history row "
        "(e.g. a commit hash)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare speedups against a committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression for --check (default 0.25)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a telemetry trace (JSONL) to PATH; see `python -m repro report`",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0, help="more console logging"
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, help="less console logging"
    )
    args = parser.parse_args(argv)
    setup_logging(args.verbose - args.quiet)

    with contextlib.ExitStack() as stack:
        if args.trace:
            tel = stack.enter_context(Telemetry(path=args.trace))
            stack.enter_context(telemetry_session(tel))
        report = run_benchmarks(
            designs=args.designs,
            quick=args.quick,
            repeats=args.repeats,
            queries=args.queries,
            log=print,
            kernels=args.kernels,
        )
    if args.trace:
        print(f"[bench] trace written to {args.trace}")
    if args.out:
        save_report(report, args.out)
        print(f"[bench] report written to {args.out}")
    if args.history:
        from repro.bench.history import append_history

        row = append_history(report, args.history, label=args.label)
        print(
            f"[bench] appended {len(row['speedups'])} speedup metrics "
            f"to {args.history}"
        )
    if args.check:
        problems = compare_reports(report, load_report(args.check), tolerance=args.tolerance)
        if problems:
            for p in problems:
                print(f"[bench] REGRESSION {p}", file=sys.stderr)
            return 2
        print(f"[bench] no regressions vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
