"""Perf-bench harness for the timing kernels (``python -m repro.bench``).

Measures the hot paths this repo's refinement loop leans on and emits
a machine-readable report (``BENCH_timing.json``):

* ``forest_build`` — full-design initial Steiner construction: the
  per-net reference constructor vs the flat degree-bucketed kernels
  (``build_forest(kernel=...)``); trees asserted bitwise equal.
* ``groute`` — whole-design single-pass L-pattern routing (the
  congestion probe): per-edge python vs the batched ``(n_edges, 2)``
  scorer (``repro.groute.flat_route``); routes asserted bitwise equal.
* ``full_sta`` — one sign-off STA pass over a whole design: the
  reference per-net Python engine vs the flat CSR/batched-Elmore
  kernel (``STAEngine.run(kernel=...)``).
* ``mcmm_sta`` — cross-scenario sign-off over the MCMM ``signoff``
  preset: one scenario-batched :class:`~repro.mcmm.ScenarioSTA` pass
  vs N independent single-scenario passes (docs/MCMM.md).
* ``incremental`` — repeated sparse-move timing queries (the hybrid
  validator's workload): move a small fraction of Steiner points, ask
  for WNS/TNS, repeat.  Compares the reference engine, the full flat
  kernel, and :class:`~repro.sta.incremental.IncrementalSTA`.
* ``evaluator`` — the GNN evaluator forward (arrival prediction): the
  reference closure-graph engine vs replaying the compiled instruction
  tape (``docs/PERFORMANCE.md``).  Also records the one-off tape
  compile cost the first iteration amortizes.
* ``evaluator_backward`` — the refinement gradient (forward + penalty
  + backward through the whole evaluator): closure graph vs tape.
* ``refine_iter`` — a short end-to-end ``refine()`` run per kernel;
  asserts the two trajectories are *bitwise identical* and reports the
  per-iteration speedup (cold = compile included, warm = cached tape).
* ``serve_throughput`` — serving-layer jobs/sec on burst traffic:
  query fusion on vs off over the same warm cache, per-job results
  asserted equal (docs/SERVING.md, "Scaling").
* ``eco_loop`` — ECO candidate validation (docs/ECO.md): a fixed
  deterministic batch of apply/re-time/revert trials through one warm
  :class:`~repro.eco.driver.EcoContext` vs a cold context rebuilt per
  candidate, per-candidate WNS/TNS verdicts asserted bitwise equal.

Every kernel records a *speedup* ratio comparing the fast kernel
against the reference kernel **on the same workload** — never
warm-vs-cold of one kernel — so the committed baseline stays
meaningful across machines.  ``compare_reports`` flags any kernel whose
speedup regressed by more than ``tolerance`` (default 25%) — the
``bench-smoke`` pytest marker runs exactly that check against the
committed baseline.

Long-running kernels use ``min`` over repeats (the minimum is the
least noisy estimator of the true cost); sub-millisecond kernels use
a warmup pass plus the **median of at least three amortized batch
samples** (``_best_amortized``), which resists the single lucky
sample that makes min-based ratios flap under CI load.  Every run can
also append one summary row to a history JSONL
(``python -m repro.bench --history BENCH_history.jsonl``;
:mod:`repro.bench.history`), turning the point-in-time gate into a
trend check rendered by ``python -m repro report --bench-trend``.
"""

from __future__ import annotations

import json
import logging
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_telemetry

_log = logging.getLogger("repro.bench")

QUICK_DESIGNS: Tuple[str, ...] = ("usb_cdc_core", "picorv32a")
FULL_DESIGNS: Tuple[str, ...] = ("usb_cdc_core", "picorv32a", "des3")

#: Fraction of Steiner points moved per incremental query — matches the
#: sparse proposals the refinement loop actually issues.
MOVE_FRACTION = 0.02


def _best(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``repeats`` calls."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_amortized(
    fn: Callable[[], object], repeats: int, min_sample_s: float = 0.005
) -> float:
    """Median per-call seconds, timing batches of calls when ``fn`` is short.

    Sub-millisecond kernels (the flat builders on small designs) can't
    be timed stably one call at a time — scheduler noise swamps the
    signal and the speedup ratios the regression gate compares flap.
    Each timing sample therefore runs enough back-to-back calls to
    last at least ``min_sample_s`` and reports the amortized per-call
    time, over at least three samples with the median taken: unlike
    ``min``, the median is insensitive to the one lucky sample that a
    frequency-boost burst produces, which is exactly the flap the CI
    gate kept hitting.  The calibration call doubles as a warmup pass
    (allocator, caches, branch predictors) and is never counted as a
    sample.
    """
    t0 = time.perf_counter()
    fn()  # warmup + calibration; excluded from the samples below
    once = time.perf_counter() - t0
    inner = max(1, int(math.ceil(min_sample_s / max(once, 1e-9))))
    samples: List[float] = []
    for _ in range(max(3, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - t0) / inner)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _trees_bitwise_equal(a, b) -> bool:
    """Bitwise equality of two forests' trees (coords, edges, order)."""
    if len(a.trees) != len(b.trees):
        return False
    return all(
        ta.net_index == tb.net_index
        and ta.pin_ids == tb.pin_ids
        and np.array_equal(ta.pin_xy, tb.pin_xy)
        and np.array_equal(ta.steiner_xy, tb.steiner_xy)
        and ta.edges == tb.edges
        for ta, tb in zip(a.trees, b.trees)
    )


def bench_forest_build(netlist, repeats: int = 3) -> Dict[str, float]:
    """Full-design Steiner construction: per-net reference vs flat batched.

    Both kernels build every tree of the design from scratch
    (``cache=False``); the trees are asserted **bitwise equal** (pin
    order, Steiner coordinates, edge lists — the flat builder's
    contract, docs/PERFORMANCE.md) before any timing is reported.
    ``cached_ms`` additionally measures a warm ``build_forest`` hit on
    the geometry-digest memo (the serve warm-state rebuild path).
    """
    from repro.steiner.forest import build_forest, clear_forest_cache

    ref_forest = build_forest(netlist, kernel="reference", cache=False)
    flat_forest = build_forest(netlist, kernel="flat", cache=False)
    if not _trees_bitwise_equal(ref_forest, flat_forest):
        raise RuntimeError(
            "flat forest construction diverged bitwise from the per-net reference"
        )
    wl_delta = abs(ref_forest.total_wirelength() - flat_forest.total_wirelength())

    # Construction is milliseconds-scale on the small designs;
    # amortized samples keep the speedup ratio the regression gate
    # compares from flapping on scheduler noise.
    ref_s = _best_amortized(
        lambda: build_forest(netlist, kernel="reference", cache=False), max(repeats, 5)
    )
    flat_s = _best_amortized(
        lambda: build_forest(netlist, kernel="flat", cache=False), max(repeats, 5)
    )
    clear_forest_cache()
    build_forest(netlist)  # prime the digest memo
    cached_s = _best_amortized(lambda: build_forest(netlist), max(repeats, 5))
    return {
        "trees": float(ref_forest.num_trees),
        "reference_ms": ref_s * 1e3,
        "flat_ms": flat_s * 1e3,
        "cached_ms": cached_s * 1e3,
        "speedup": ref_s / flat_s,
        "trees_bitwise_equal": 1.0,
        "wirelength_delta": wl_delta,
    }


def bench_groute(netlist, forest, repeats: int = 3) -> Dict[str, float]:
    """Whole-design L-pattern routing: per-edge python vs flat batched.

    Times the single-pass congestion estimate (the probe every
    ``optimize()`` call pays) both ways on a freshly reset grid and
    asserts shape choices, path costs, committed usage, and overflow
    are **bitwise equal** first.
    """
    from repro.groute.flat_route import pattern_route_flat, pattern_route_reference
    from repro.routegrid.grid import GCellGrid

    grid_ref = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
    grid_flat = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
    ref = pattern_route_reference(grid_ref, forest)
    flat = pattern_route_flat(grid_flat, forest)
    if not (
        np.array_equal(ref.choice, flat.choice)
        and np.array_equal(ref.cost, flat.cost)
        and np.array_equal(grid_ref.use_h, grid_flat.use_h)
        and np.array_equal(grid_ref.use_v, grid_flat.use_v)
        and ref.overflow == flat.overflow
    ):
        raise RuntimeError(
            "flat pattern route diverged bitwise from the per-edge reference"
        )

    def run_ref():
        grid_ref.reset_usage()
        pattern_route_reference(grid_ref, forest)

    def run_flat():
        grid_flat.reset_usage()
        pattern_route_flat(grid_flat, forest)

    # The flat pass is sub-millisecond on small designs; amortized
    # samples keep the ~30x speedup ratio from flapping the gate.
    ref_s = _best_amortized(run_ref, max(repeats, 5))
    flat_s = _best_amortized(run_flat, max(repeats, 5))
    return {
        "edges": float(ref.num_edges),
        "reference_ms": ref_s * 1e3,
        "flat_ms": flat_s * 1e3,
        "speedup": ref_s / flat_s,
        "routes_bitwise_equal": 1.0,
        "overflow": float(ref.overflow),
    }


def bench_full_sta(netlist, forest, repeats: int = 3) -> Dict[str, float]:
    """Whole-design sign-off STA: reference engine vs flat kernel."""
    from repro.sta.engine import STAEngine

    engine = STAEngine(netlist)
    # Warm both paths once (library parsing, levelization, flat build).
    ref_report = engine.run(forest, kernel="reference")
    flat_report = engine.run(forest, kernel="flat")
    ref_s = _best(lambda: engine.run(forest, kernel="reference"), repeats)
    flat_s = _best(lambda: engine.run(forest, kernel="flat"), repeats)
    return {
        "reference_ms": ref_s * 1e3,
        "flat_ms": flat_s * 1e3,
        "speedup": ref_s / flat_s,
        "wns_delta": abs(ref_report.wns - flat_report.wns),
        "tns_delta": abs(ref_report.tns - flat_report.tns),
    }


def bench_incremental(
    netlist, forest, queries: int = 12, repeats: int = 2, seed: int = 13
) -> Dict[str, float]:
    """Repeated sparse-move timing queries (pre-route validator workload).

    Each query moves ``MOVE_FRACTION`` of the Steiner points by a small
    random offset, writes the coordinates back and asks for a fresh
    WNS/TNS.  The reported per-query times include the coordinate
    write-back — that is the cost the refinement loop pays.

    A second measurement (``polish_*``) repeats the experiment moving a
    *single* Steiner point per query — the workload of the oracle-polish
    stage and the sparse tail of the proposal schedule, where the dirty
    cone is one net's fanout and incremental re-timing pays off most.
    """
    from repro.sta.engine import STAEngine
    from repro.sta.incremental import IncrementalSTA

    engine = STAEngine(netlist)
    base = forest.get_steiner_coords()
    rng = np.random.default_rng(seed)
    n = len(base)
    moves = []
    for _ in range(queries):
        c = base.copy()
        k = max(1, int(n * MOVE_FRACTION))
        idx = rng.choice(n, size=k, replace=False)
        c[idx] += rng.normal(0.0, 1.5, size=(k, 2))
        moves.append(forest.clamp_coords(c))

    polish_moves = []
    for _ in range(queries):
        c = base.copy()
        i = int(rng.integers(n))
        c[i] += rng.normal(0.0, 1.5, size=2)
        polish_moves.append(forest.clamp_coords(c))

    def run_queries(query_fn, move_set) -> float:
        t0 = time.perf_counter()
        for c in move_set:
            forest.set_steiner_coords(c)
            query_fn()
        return (time.perf_counter() - t0) / len(move_set)

    def ref_query():
        engine.run(forest, kernel="reference")

    def flat_query():
        engine.run(forest, kernel="flat")

    inc = IncrementalSTA(netlist, forest, engine=engine)

    def inc_query():
        inc.run()

    # Warm each path on the base coordinates first.
    forest.set_steiner_coords(base)
    engine.run(forest, kernel="reference")
    engine.run(forest, kernel="flat")
    inc.run()

    reps = max(1, repeats)
    ref_s = min(run_queries(ref_query, moves) for _ in range(reps))
    flat_s = min(run_queries(flat_query, moves) for _ in range(reps))
    inc_s = min(run_queries(inc_query, moves) for _ in range(reps))
    flat_polish_s = min(run_queries(flat_query, polish_moves) for _ in range(reps))
    inc.invalidate()
    inc.run()  # re-warm after the flat pass left coords at polish_moves[-1]
    inc_polish_s = min(run_queries(inc_query, polish_moves) for _ in range(reps))
    forest.set_steiner_coords(base)  # leave the forest as we found it
    return {
        "queries": float(queries),
        "reference_ms_per_query": ref_s * 1e3,
        "flat_ms_per_query": flat_s * 1e3,
        "incremental_ms_per_query": inc_s * 1e3,
        "speedup_vs_reference": ref_s / inc_s,
        "speedup_vs_flat": flat_s / inc_s,
        "polish_flat_ms_per_query": flat_polish_s * 1e3,
        "polish_incremental_ms_per_query": inc_polish_s * 1e3,
        "polish_speedup_vs_flat": flat_polish_s / inc_polish_s,
    }


def bench_mcmm_sta(netlist, forest, repeats: int = 3) -> Dict[str, float]:
    """Cross-scenario sign-off STA: batched vs independent per-scenario runs.

    Times a full STA pass over the ``signoff`` scenario set (typ,
    slow_setup, fast_hold) two ways: one scenario-batched
    :class:`~repro.mcmm.ScenarioSTA` pass sharing the topology walk
    across all scenarios, and N independent single-scenario passes.
    Both sides use the same batched kernel (``force_batched``) so the
    ratio isolates the cross-scenario sharing, and the per-scenario
    metrics are asserted bitwise identical before any timing is
    reported (docs/MCMM.md).
    """
    from repro.mcmm import ScenarioSTA, ScenarioSet

    scenarios = ScenarioSet.signoff()
    batched = ScenarioSTA(netlist, forest, scenarios, force_batched=True)
    singles = [
        ScenarioSTA(netlist, forest, ScenarioSet((sc,)), force_batched=True)
        for sc in scenarios
    ]

    # Warm (levelization, flat build) and check parity once.
    batched_report = batched.run()
    single_metrics = [s.run().scenarios[0] for s in singles]
    for got, want in zip(batched_report.scenarios, single_metrics):
        if not (
            got.wns == want.wns
            and got.tns == want.tns
            and np.array_equal(got.arrival, want.arrival, equal_nan=True)
        ):
            raise RuntimeError(
                f"batched scenario {got.name} diverged from its "
                f"independent run (wns {got.wns} vs {want.wns})"
            )

    def run_batched():
        batched.invalidate()
        batched.run()

    def run_independent():
        for s in singles:
            s.invalidate()
            s.run()

    # Amortized samples keep the sharing ratio stable enough for the
    # smoke regression gate on the small designs.
    batched_s = _best_amortized(run_batched, max(repeats, 5))
    independent_s = _best_amortized(run_independent, max(repeats, 5))
    return {
        "scenarios": float(len(scenarios)),
        "independent_ms": independent_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "speedup": independent_s / batched_s,
        "metrics_bitwise_equal": 1.0,
    }


def _evaluator_setup(netlist, forest):
    """(graph, model, objective, coords) shared by the evaluator benches."""
    from repro.core.penalty import PenaltyConfig
    from repro.timing_model.compiled import get_compiled_objective
    from repro.timing_model.graph import build_timing_graph
    from repro.timing_model.model import EvaluatorConfig, TimingEvaluator

    graph = build_timing_graph(netlist, forest)
    model = TimingEvaluator(EvaluatorConfig(seed=0))
    coords = forest.get_steiner_coords()
    obj = get_compiled_objective(model, graph, PenaltyConfig().gamma)
    if obj is None:  # pragma: no cover - every bench design compiles
        raise RuntimeError("tape compilation fell back; nothing to benchmark")
    return graph, model, obj, coords


def bench_evaluator(netlist, forest, repeats: int = 5) -> Dict[str, float]:
    """Evaluator forward: closure-graph reference vs compiled-tape replay.

    Both kernels produce the per-pin arrival array for the same
    coordinates; ``speedup`` is closure time over (warm) tape time.
    ``compile_ms`` is the one-off tape build a cold graph pays — it is
    informational, not part of the speedup ratio.
    """
    from repro.core.penalty import PenaltyConfig
    from repro.timing_model.compiled import get_compiled_objective

    graph, model, obj, coords = _evaluator_setup(netlist, forest)

    # Warm both paths (numpy, allocator, evaluator static tensors).
    ref_arrival = model.predict_arrivals(graph, coords)
    tape_arrival = obj.evaluate(coords)

    closure_s = _best(lambda: model.predict_arrivals(graph, coords), repeats)
    tape_s = _best(lambda: obj.evaluate(coords), repeats)

    def compile_cold():
        graph._static.clear()
        get_compiled_objective(model, graph, PenaltyConfig().gamma)

    compile_s = _best(compile_cold, max(1, repeats - 2))
    return {
        "closure_ms": closure_s * 1e3,
        "tape_ms": tape_s * 1e3,
        "compile_ms": compile_s * 1e3,
        "speedup": closure_s / tape_s,
        "arrival_delta": float(np.max(np.abs(ref_arrival - tape_arrival))),
    }


def bench_evaluator_backward(netlist, forest, repeats: int = 5) -> Dict[str, float]:
    """Refinement gradient (forward + penalty + backward): closure vs tape.

    Alternates between two coordinate sets so the tape's forward-state
    memoization (which legitimately skips the arrival prefix when the
    refinement loop re-differentiates the coordinates it just
    evaluated) never fires — each call pays the full replay, matching
    the closure's workload exactly.
    """
    from repro.autodiff.tensor import Tensor
    from repro.core.penalty import PenaltyConfig, smoothed_penalty

    graph, model, obj, coords = _evaluator_setup(netlist, forest)
    pcfg = PenaltyConfig()
    rng = np.random.default_rng(7)
    alt = forest.clamp_coords(coords + rng.normal(0.0, 0.5, size=coords.shape))
    pair = [coords, alt]

    def closure_grad():
        for c in pair:
            t = Tensor(c, requires_grad=True)
            out = model(graph, t)
            penalty, _, _ = smoothed_penalty(
                out["arrival"], graph.endpoints, graph.required, pcfg
            )
            penalty.backward()

    def tape_grad():
        for c in pair:
            obj.gradient(c, pcfg)

    closure_grad()  # warm
    tape_grad()
    closure_s = _best(closure_grad, repeats) / len(pair)
    tape_s = _best(tape_grad, repeats) / len(pair)

    # Bitwise parity of the gradients themselves (the tape's contract).
    t = Tensor(coords, requires_grad=True)
    out = model(graph, t)
    penalty, _, _ = smoothed_penalty(out["arrival"], graph.endpoints, graph.required, pcfg)
    penalty.backward()
    grad_tape, _, _ = obj.gradient(coords, pcfg)
    bitwise = bool(np.array_equal(t.grad, grad_tape, equal_nan=True))
    return {
        "closure_ms": closure_s * 1e3,
        "tape_ms": tape_s * 1e3,
        "speedup": closure_s / tape_s,
        "grad_bitwise_equal": float(bitwise),
    }


def bench_refine_iter(netlist, forest, iterations: int = 10) -> Dict[str, float]:
    """End-to-end ``refine()`` per kernel with bitwise trajectory check.

    Runs a short evaluator-acceptance refinement three times — closure
    reference, tape with a cold cache (compile included), tape warm —
    and *asserts* the closure and tape trajectories (every history
    entry plus the best WNS/TNS) are bitwise identical before reporting
    any timing.  ``speedup`` is closure over warm tape; ``speedup_cold``
    charges the tape its one-off compile.
    """
    from repro.core.refine import RefinementConfig, refine
    from repro.timing_model.graph import build_timing_graph
    from repro.timing_model.model import EvaluatorConfig, TimingEvaluator

    graph = build_timing_graph(netlist, forest)
    model = TimingEvaluator(EvaluatorConfig(seed=0))
    coords = forest.get_steiner_coords()
    cfg = RefinementConfig(
        max_iterations=iterations, acceptance="evaluator", polish_probes=0
    )

    saved_kernel = model.kernel
    timings: Dict[str, float] = {}
    results: Dict[str, object] = {}
    # Closure and warm-tape run twice (min taken, like ``_best``); the
    # cold run is once by construction — repeating it would re-measure
    # a warm cache.
    sequence = (
        ("closure", "closure", True),
        ("tape_cold", "tape", True),
        ("tape_warm", "tape", False),
        ("closure", "closure", False),
        ("tape_warm", "tape", False),
    )
    try:
        for label, kernel, clear in sequence:
            model.kernel = kernel
            if clear:
                graph._static.clear()
            t0 = time.perf_counter()
            result = refine(model, graph, coords, config=cfg, clamp_fn=forest.clamp_coords)
            elapsed = time.perf_counter() - t0
            timings[label] = min(elapsed, timings.get(label, float("inf")))
            results.setdefault(label, result)
    finally:
        model.kernel = saved_kernel

    ref, tape = results["closure"], results["tape_cold"]
    same = (
        ref.best_wns == tape.best_wns
        and ref.best_tns == tape.best_tns
        and len(ref.history) == len(tape.history)
        and all(tuple(a) == tuple(b) for a, b in zip(ref.history, tape.history))
    )
    if not same:
        raise RuntimeError(
            "refine() trajectory diverged between closure and tape kernels "
            f"(closure best WNS/TNS {ref.best_wns}/{ref.best_tns}, "
            f"tape {tape.best_wns}/{tape.best_tns})"
        )
    n = max(1, ref.iterations)
    closure_s, tape_cold_s, tape_warm_s = (
        timings["closure"],
        timings["tape_cold"],
        timings["tape_warm"],
    )
    return {
        "iterations": float(n),
        "closure_ms_per_iter": closure_s / n * 1e3,
        "tape_cold_ms_per_iter": tape_cold_s / n * 1e3,
        "tape_ms_per_iter": tape_warm_s / n * 1e3,
        "speedup": closure_s / tape_warm_s,
        "speedup_cold": closure_s / tape_cold_s,
        "trajectory_bitwise_equal": 1.0,
    }


def bench_serve_throughput(
    design: str, jobs: int = 32, repeats: int = 3
) -> Dict[str, float]:
    """Serving-layer query throughput: fused vs unfused dispatch.

    Drives one :class:`~repro.serve.service.SignoffService` with the
    seeded burst traffic of :mod:`repro.serve.loadgen` (whatif-heavy,
    no commits, back-to-back groups of 8 against one design) twice over
    the **same** warm cache: batching off, then batching on.  Because
    the mix never commits coordinates, the two runs answer identical
    queries against identical warm state — the per-job result values
    are asserted equal before any timing is reported (the fused
    ``probe_batch`` path's bitwise contract, docs/SERVING.md).

    ``speedup`` is fused jobs/sec over unfused jobs/sec; the fused run
    also reports its achieved fusion ratio and mean batch width so the
    committed baseline records how much coalescing the traffic allowed.
    """
    import asyncio

    from repro.serve.batcher import BatchConfig
    from repro.serve.handlers import default_handlers
    from repro.serve.loadgen import TrafficConfig, run_load
    from repro.serve.service import SignoffService
    from repro.serve.state import WarmStateCache

    cache = WarmStateCache()
    handlers = default_handlers(cache)
    traffic = TrafficConfig(
        jobs=jobs,
        designs=(design,),
        seed=7,
        mix=(5.0, 2.0, 0.0, 0.0),  # whatif-heavy, nothing commits
        burst_size=8,
    )

    def run_once(batching):
        async def _drive():
            async with SignoffService(
                handlers=handlers, warm=cache, workers=2, batching=batching
            ) as svc:
                return await run_load(svc, traffic)

        t0 = time.perf_counter()
        report = asyncio.run(_drive())
        elapsed = time.perf_counter() - t0
        if report.lost or report.quarantined or report.shed:
            raise RuntimeError(
                f"serve_throughput traffic misbehaved: lost {report.lost}, "
                f"quarantined {report.quarantined}, shed {report.shed}"
            )
        return elapsed, report

    # Warm the design, probe engine and scenario STAs once — the bench
    # measures steady-state serving, not the first-query warmup.
    run_once(None)
    batching = BatchConfig(max_batch=8, linger_s=0.0)
    unfused_s = float("inf")
    fused_s = float("inf")
    unfused_values = fused_values = None
    fused_report = None
    for _ in range(max(1, repeats)):
        elapsed, rep = run_once(None)
        if elapsed < unfused_s:
            unfused_s = elapsed
        unfused_values = [r.value for r in rep.results]
        elapsed, rep = run_once(batching)
        if elapsed < fused_s:
            fused_s = elapsed
        fused_values = [r.value for r in rep.results]
        fused_report = rep
    if unfused_values != fused_values:
        raise RuntimeError(
            "fused serving diverged from unbatched execution on "
            f"{design} (per-job results not equal)"
        )
    return {
        "jobs": float(jobs),
        "unfused_jobs_per_s": jobs / unfused_s,
        "fused_jobs_per_s": jobs / fused_s,
        "speedup": unfused_s / fused_s,
        "batches": float(fused_report.batches),
        "mean_batch_width": float(fused_report.mean_batch_width),
        "fusion_ratio": float(fused_report.fusion_ratio),
        "results_equal": 1.0,
    }


def bench_eco_loop(
    netlist, forest, candidates: int = 8, repeats: int = 3
) -> Dict[str, float]:
    """ECO candidate validation: warm EcoContext vs cold rebuild per op.

    The closed-loop driver's hot path is apply → re-time → revert over
    a ranked candidate list (docs/ECO.md).  This kernel times a fixed
    deterministic batch of Steiner-nudge candidates on the longest
    trees — the geometry trials the greedy polish and SA arms issue,
    which re-time through the pinned scenario STA's dirty-tree
    incremental path — two ways: through one warm
    :class:`~repro.eco.driver.EcoContext`, and rebuilding a cold
    context — engine construction, levelization, first full pass — for
    every candidate.  The per-candidate (merged WNS, merged TNS)
    verdicts are asserted **bitwise equal** before any timing is
    reported; both sides run force-batched over the ``signoff``
    scenario set.
    """
    from repro.eco.driver import EcoContext, evaluate_candidates
    from repro.eco.ops import NudgeOp
    from repro.mcmm import ScenarioSet

    scenarios = ScenarioSet.signoff()
    trees = sorted(
        (t for t in forest.trees if t.n_steiner > 0),
        key=lambda t: (-t.wirelength(), t.net_index),
    )
    ops = []
    for tree in trees:
        if len(ops) >= candidates:
            break
        ops.append(NudgeOp(tree.net_index, 2.0, 0.0))
        if len(ops) < candidates:
            ops.append(NudgeOp(tree.net_index, 0.0, -2.0))
    if not ops:
        raise RuntimeError("design has no nudgeable trees to benchmark")

    warm_ctx = EcoContext(netlist, forest, scenarios)
    warm_ctx.run()  # prime levelization, flat build, scenario state
    warm = evaluate_candidates(netlist, forest, ops, context=warm_ctx)
    cold = [
        evaluate_candidates(netlist, forest, [op], scenarios=scenarios)[0]
        for op in ops
    ]
    if warm != cold:
        raise RuntimeError(
            "warm ECO verdicts diverged bitwise from cold per-candidate rebuilds"
        )

    def run_warm():
        evaluate_candidates(netlist, forest, ops, context=warm_ctx)

    def run_cold():
        for op in ops:
            evaluate_candidates(netlist, forest, [op], scenarios=scenarios)

    warm_s = _best(run_warm, repeats)
    cold_s = _best(run_cold, repeats)
    n = len(ops)
    return {
        "candidates": float(n),
        "scenarios": float(len(scenarios)),
        "cold_ms_per_op": cold_s / n * 1e3,
        "warm_ms_per_op": warm_s / n * 1e3,
        "speedup": cold_s / warm_s,
        "verdicts_bitwise_equal": 1.0,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
#: Every benchmarkable kernel, in run order.
ALL_KERNELS: Tuple[str, ...] = (
    "forest_build",
    "groute",
    "full_sta",
    "mcmm_sta",
    "incremental",
    "evaluator",
    "evaluator_backward",
    "refine_iter",
    "serve_throughput",
    "eco_loop",
)


def run_benchmarks(
    designs: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeats: int = 3,
    queries: int = 12,
    log: Optional[Callable[[str], None]] = None,
    telemetry=None,
    kernels: Optional[Sequence[str]] = None,
) -> Dict:
    """Run every kernel over ``designs`` and return the report dict.

    Progress goes through ``log`` when given, the ``repro.bench``
    logger otherwise; ``telemetry`` (default: the process global)
    records one annotated span per (design, kernel) pair.  ``kernels``
    restricts the run to a subset of :data:`ALL_KERNELS` (the CI
    named-metric gates time only the kernels they check).
    """
    from repro.flow.pipeline import prepare_design

    if log is None:
        log = _log.info
    tel = telemetry if telemetry is not None else get_telemetry()
    if designs is None:
        designs = QUICK_DESIGNS if quick else FULL_DESIGNS
    if kernels is None:
        wanted = set(ALL_KERNELS)
    else:
        unknown = set(kernels) - set(ALL_KERNELS)
        if unknown:
            raise ValueError(f"unknown bench kernels: {sorted(unknown)}")
        wanted = set(kernels)
    report: Dict = {
        "version": 3,
        "quick": quick,
        "designs": list(designs),
        "kernels": {k: {} for k in ALL_KERNELS if k in wanted},
    }
    for name in designs:
        log(f"[bench] preparing {name} ...")
        with tel.span("bench.prepare", design=name):
            netlist, forest = prepare_design(name)
        if "forest_build" in wanted:
            with tel.span("bench.forest_build", design=name) as sp:
                r = bench_forest_build(netlist, repeats=repeats)
                sp.annotate(
                    reference_ms=r["reference_ms"],
                    flat_ms=r["flat_ms"],
                    speedup=r["speedup"],
                )
            report["kernels"]["forest_build"][name] = r
            log(
                f"[bench] {name} forest_build: reference {r['reference_ms']:.2f} ms, "
                f"flat {r['flat_ms']:.2f} ms  ({r['speedup']:.1f}x; "
                f"cached {r['cached_ms']:.2f} ms, bitwise parity "
                f"{r['trees_bitwise_equal']:.0f})"
            )
        if "groute" in wanted:
            with tel.span("bench.groute", design=name) as sp:
                r = bench_groute(netlist, forest, repeats=repeats)
                sp.annotate(
                    reference_ms=r["reference_ms"],
                    flat_ms=r["flat_ms"],
                    speedup=r["speedup"],
                )
            report["kernels"]["groute"][name] = r
            log(
                f"[bench] {name} groute: reference {r['reference_ms']:.2f} ms, "
                f"flat {r['flat_ms']:.2f} ms  ({r['speedup']:.1f}x; "
                f"bitwise parity {r['routes_bitwise_equal']:.0f})"
            )
        if "full_sta" in wanted:
            with tel.span("bench.full_sta", design=name) as sp:
                r = bench_full_sta(netlist, forest, repeats=repeats)
                sp.annotate(
                    reference_ms=r["reference_ms"], flat_ms=r["flat_ms"], speedup=r["speedup"]
                )
            report["kernels"]["full_sta"][name] = r
            log(
                f"[bench] {name} full_sta: reference {r['reference_ms']:.2f} ms, "
                f"flat {r['flat_ms']:.2f} ms  ({r['speedup']:.1f}x)"
            )
        if "mcmm_sta" in wanted:
            with tel.span("bench.mcmm_sta", design=name) as sp:
                r = bench_mcmm_sta(netlist, forest, repeats=repeats)
                sp.annotate(
                    independent_ms=r["independent_ms"],
                    batched_ms=r["batched_ms"],
                    speedup=r["speedup"],
                )
            report["kernels"]["mcmm_sta"][name] = r
            log(
                f"[bench] {name} mcmm_sta: {int(r['scenarios'])} scenarios, "
                f"independent {r['independent_ms']:.2f} ms, "
                f"batched {r['batched_ms']:.2f} ms  ({r['speedup']:.1f}x)"
            )
        if "incremental" in wanted:
            with tel.span("bench.incremental", design=name) as sp:
                r = bench_incremental(
                    netlist, forest, queries=queries, repeats=max(1, repeats - 1)
                )
                sp.annotate(
                    incremental_ms_per_query=r["incremental_ms_per_query"],
                    speedup_vs_reference=r["speedup_vs_reference"],
                    speedup_vs_flat=r["speedup_vs_flat"],
                )
            report["kernels"]["incremental"][name] = r
            log(
                f"[bench] {name} incremental: {r['incremental_ms_per_query']:.2f} ms/query "
                f"({r['speedup_vs_reference']:.1f}x vs reference, "
                f"{r['speedup_vs_flat']:.1f}x vs full flat; single-point "
                f"{r['polish_incremental_ms_per_query']:.2f} ms, "
                f"{r['polish_speedup_vs_flat']:.1f}x vs flat)"
            )
        if "evaluator" in wanted:
            with tel.span("bench.evaluator", design=name) as sp:
                r = bench_evaluator(netlist, forest, repeats=repeats)
                sp.annotate(
                    closure_ms=r["closure_ms"], tape_ms=r["tape_ms"], speedup=r["speedup"]
                )
            report["kernels"]["evaluator"][name] = r
            log(
                f"[bench] {name} evaluator: closure {r['closure_ms']:.2f} ms, "
                f"tape {r['tape_ms']:.2f} ms  ({r['speedup']:.1f}x; "
                f"compile {r['compile_ms']:.1f} ms)"
            )
        if "evaluator_backward" in wanted:
            with tel.span("bench.evaluator_backward", design=name) as sp:
                r = bench_evaluator_backward(netlist, forest, repeats=repeats)
                sp.annotate(
                    closure_ms=r["closure_ms"], tape_ms=r["tape_ms"], speedup=r["speedup"]
                )
            report["kernels"]["evaluator_backward"][name] = r
            log(
                f"[bench] {name} evaluator_backward: closure {r['closure_ms']:.2f} ms, "
                f"tape {r['tape_ms']:.2f} ms  ({r['speedup']:.1f}x)"
            )
        if "refine_iter" in wanted:
            with tel.span("bench.refine_iter", design=name) as sp:
                r = bench_refine_iter(netlist, forest)
                sp.annotate(
                    closure_ms_per_iter=r["closure_ms_per_iter"],
                    tape_ms_per_iter=r["tape_ms_per_iter"],
                    speedup=r["speedup"],
                )
            report["kernels"]["refine_iter"][name] = r
            log(
                f"[bench] {name} refine_iter: closure {r['closure_ms_per_iter']:.1f} ms/iter, "
                f"tape {r['tape_ms_per_iter']:.1f} ms/iter  ({r['speedup']:.1f}x warm, "
                f"{r['speedup_cold']:.1f}x cold)"
            )
        if "serve_throughput" in wanted:
            with tel.span("bench.serve_throughput", design=name) as sp:
                r = bench_serve_throughput(name, repeats=repeats)
                sp.annotate(
                    unfused_jobs_per_s=r["unfused_jobs_per_s"],
                    fused_jobs_per_s=r["fused_jobs_per_s"],
                    speedup=r["speedup"],
                )
            report["kernels"]["serve_throughput"][name] = r
            log(
                f"[bench] {name} serve_throughput: unfused "
                f"{r['unfused_jobs_per_s']:.1f} jobs/s, fused "
                f"{r['fused_jobs_per_s']:.1f} jobs/s  ({r['speedup']:.1f}x; "
                f"fusion ratio {r['fusion_ratio']:.2f}, "
                f"mean width {r['mean_batch_width']:.2f})"
            )
        if "eco_loop" in wanted:
            with tel.span("bench.eco_loop", design=name) as sp:
                r = bench_eco_loop(netlist, forest, repeats=repeats)
                sp.annotate(
                    cold_ms_per_op=r["cold_ms_per_op"],
                    warm_ms_per_op=r["warm_ms_per_op"],
                    speedup=r["speedup"],
                )
            report["kernels"]["eco_loop"][name] = r
            log(
                f"[bench] {name} eco_loop: cold {r['cold_ms_per_op']:.2f} ms/op, "
                f"warm {r['warm_ms_per_op']:.2f} ms/op  ({r['speedup']:.1f}x; "
                f"bitwise parity {r['verdicts_bitwise_equal']:.0f})"
            )
    return report


#: Per-kernel speedup fields checked by :func:`compare_reports`.
_SPEEDUP_FIELDS = {
    "forest_build": ("speedup",),
    "groute": ("speedup",),
    "full_sta": ("speedup",),
    "mcmm_sta": ("speedup",),
    "incremental": ("speedup_vs_reference",),
    "evaluator": ("speedup",),
    "evaluator_backward": ("speedup",),
    "refine_iter": ("speedup",),
    "serve_throughput": ("speedup",),
    "eco_loop": ("speedup",),
}


def compare_reports(new: Dict, baseline: Dict, tolerance: float = 0.25) -> List[str]:
    """Regressions of ``new`` vs ``baseline``; empty list means clean.

    A kernel regresses when its speedup falls below
    ``(1 - tolerance) * baseline_speedup``.  Only (kernel, design,
    field) triples present in *both* reports are compared, so a quick
    run can be checked against a committed full baseline.
    """
    problems: List[str] = []
    for kernel, fields in _SPEEDUP_FIELDS.items():
        new_k = new.get("kernels", {}).get(kernel, {})
        base_k = baseline.get("kernels", {}).get(kernel, {})
        for design in sorted(set(new_k) & set(base_k)):
            for f in fields:
                if f not in new_k[design] or f not in base_k[design]:
                    continue
                got, want = float(new_k[design][f]), float(base_k[design][f])
                floor = (1.0 - tolerance) * want
                if got < floor:
                    problems.append(
                        f"metric {kernel}/{design}/{f}: measured {got:.2f}x "
                        f"below threshold {floor:.2f}x "
                        f"(baseline {want:.2f}x, tolerance {tolerance:.0%})"
                    )
    return problems


def load_report(path) -> Dict:
    return json.loads(Path(path).read_text())


def save_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
