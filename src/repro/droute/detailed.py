"""Detailed-routing surrogate.

Real detailed routers (TritonRoute) take global-route guides and produce
track-exact wires, with runtime dominated by iterative design-rule
violation repair in congested regions.  This surrogate reproduces the
three *observable* outputs the paper reports (Table II: WL, #Vias,
#DRV) and the *runtime shape* (Table IV: DR time falls when the guide
quality improves):

* **Wirelength** — global-route length plus a track-snapping adjustment
  per bend and per pin access (detailed WL is always slightly above the
  guide length).
* **Vias** — layer-assignment vias plus pin-access vias per connected
  pin.
* **DRVs** — a deterministic, seeded model: each GCell contributes
  violations with intensity growing superlinearly in its residual
  overflow; a repair loop then resolves most of them, doing real work
  per iteration so that measured runtime scales with violation count
  exactly as the paper's Table IV shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.routegrid.grid import GCellGrid
from repro.steiner.forest import SteinerForest


@dataclass
class DetailedRouterConfig:
    """Surrogate knobs; defaults calibrated to paper-like magnitudes."""

    seed: int = 1234
    snap_per_bend: float = 0.35  # um of extra wire per bend
    pin_access_wl: float = 0.8  # um of extra wire per pin connection
    pin_access_vias: int = 1
    drv_intensity: float = 0.8  # expected DRVs per unit overflow heat
    repair_iterations: int = 8
    repair_rate: float = 0.55  # fraction of DRVs fixed per iteration


@dataclass
class DetailedRouteResult:
    """Observable detailed-routing metrics (Table II columns)."""

    wirelength: float  # um
    num_vias: int
    num_drvs: int
    repair_rounds_used: int
    timed_out: bool = False  # budget expired; repair loop cut short

    def as_row(self) -> Tuple[float, int, int]:
        return (self.wirelength, self.num_vias, self.num_drvs)


class DetailedRouter:
    """Converts a global-route solution into detailed-route metrics."""

    def __init__(self, grid: GCellGrid, config: Optional[DetailedRouterConfig] = None) -> None:
        self.grid = grid
        self.config = config or DetailedRouterConfig()

    def route(
        self, forest: SteinerForest, global_result: GlobalRouteResult, budget=None
    ) -> DetailedRouteResult:
        """Detail-route one design.

        ``budget`` (a :class:`repro.runtime.Budget`) stops the DRV
        repair loop at the next iteration boundary once expired: the
        unrepaired violations stay in ``num_drvs`` and the result is
        flagged ``timed_out=True``.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        # ---- wirelength ----
        guide_wl = global_result.total_wirelength
        total_bends = sum(s.bends for s in global_result.segments.values())
        n_pin_connections = sum(t.n_pins for t in forest.trees)
        wirelength = (
            guide_wl
            + cfg.snap_per_bend * total_bends
            + cfg.pin_access_wl * n_pin_connections
        )

        # ---- vias ----
        num_vias = (
            sum(s.vias for s in global_result.segments.values())
            + cfg.pin_access_vias * n_pin_connections
        )

        # ---- DRVs from residual congestion ----
        heat = self.grid.overflow_map()
        # Hotspots breed violations superlinearly: a 2x-overflowed GCell
        # is much worse than two 1x ones.
        intensity = cfg.drv_intensity * (heat**1.5)
        raw_drvs = rng.poisson(np.minimum(intensity, 50.0)).sum()

        # ---- repair loop (does real work so wall time tracks DRVs) ----
        remaining = int(raw_drvs)
        rounds = 0
        timed_out = False
        while remaining > 0 and rounds < cfg.repair_iterations:
            if budget is not None and budget.expired():
                timed_out = True
                break
            rounds += 1
            self._repair_pass(remaining, heat)
            fixed = int(np.ceil(remaining * cfg.repair_rate))
            remaining -= fixed

        return DetailedRouteResult(
            wirelength=float(wirelength),
            num_vias=int(num_vias),
            num_drvs=int(remaining),
            repair_rounds_used=rounds,
            timed_out=timed_out,
        )

    @staticmethod
    def _repair_pass(n_violations: int, heat: np.ndarray) -> None:
        """Perform work proportional to the violation count.

        Each violation triggers a local search over its neighbourhood —
        modelled as a stencil relaxation over the heat map repeated per
        batch of violations.  The result is discarded; only the time
        matters for Table IV fidelity.
        """
        batches = max(1, n_violations // 25)
        work = heat.copy()
        for _ in range(batches):
            padded = np.pad(work, 1, mode="edge")
            work = (
                padded[1:-1, 1:-1] * 0.5
                + 0.125 * (padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:])
            )
