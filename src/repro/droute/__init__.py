"""Detailed-routing surrogate (TritonRoute stand-in)."""

from repro.droute.detailed import DetailedRouteResult, DetailedRouter, DetailedRouterConfig

__all__ = ["DetailedRouteResult", "DetailedRouter", "DetailedRouterConfig"]
