"""Scenario-batched PERT kernels: a leading scenario axis over flat STA.

These are line-by-line mirrors of :mod:`repro.sta.engine`'s vectorized
kernels with every per-pin array widened to ``(S, n_pins)`` — one row
per scenario — over the *shared* levelized topology.  Per-scenario
physics enters through three inputs only:

* ``wire_delay`` / ``wire_deg`` / ``net_load`` rows carry each
  scenario's derated Elmore results (wire R/C derates);
* ``cell_derate`` (``(S, 1)``) scales NLDM delays and output slews;
* ``early=True`` flips the arc reduction from latest (setup) to
  earliest (hold) arrival.

Every operation is elementwise or an ``axis=1`` segmented reduction, so
each row of the batch is bitwise-identical to running the unbatched
kernel on that scenario alone — the property the MCMM parity tests pin
down (tests/test_mcmm.py).  A neutral row (all derates exactly 1.0)
reproduces today's single-scenario engine bit for bit because
``x * 1.0`` is a bitwise no-op on finite floats.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.pdk.clocks import ClockSpec
from repro.sta import flat as flatmod
from repro.sta.engine import DEFAULT_INPUT_SLEW, LevelizedPins, PertLevel, STAEngine


def launch_arrays_batched(
    engine: STAEngine, clocks: Sequence[ClockSpec]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fresh ``(S, n_pins)`` arrival/slew arrays with per-scenario launch."""
    n_pins = engine.netlist.num_pins
    S = len(clocks)
    arrival = np.full((S, n_pins), np.nan)
    slew = np.full((S, n_pins), DEFAULT_INPUT_SLEW)
    pi = np.array(
        [port.index for port in engine.netlist.primary_inputs()], dtype=np.int64
    )
    ck = np.array(sorted(engine._clock_pins), dtype=np.int64)
    for s, clock in enumerate(clocks):
        launch = clock.launch_time()
        if pi.size:
            arrival[s, pi] = launch + clock.input_delay
        if ck.size:
            arrival[s, ck] = launch
    return arrival, slew


def _eval_cell_arcs_batched(
    pert: LevelizedPins,
    lv: PertLevel,
    arrival: np.ndarray,
    slew: np.ndarray,
    net_load: np.ndarray,
    dest_net: np.ndarray,
    start: np.ndarray,
    counts: np.ndarray,
    arc_rows: Optional[np.ndarray],
    cell_derate: np.ndarray,
    early: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched max/min-arrival and winner slew per destination.

    Mirrors ``engine._eval_cell_arcs`` with arrays shaped ``(S, .)``;
    ``early`` selects the hold-style earliest-arrival reduction.
    Returns ``(best, winner_slew, valid)`` each ``(S, n_dests)``.
    """
    if arc_rows is None:
        cell_in = lv.cell_in
        n_arc = cell_in.size
        group_iter = lv.arc_groups
    else:
        cell_in = lv.cell_in[arc_rows]
        n_arc = arc_rows.size
        gids = lv.arc_group_id[arc_rows]
        group_iter = []
        if gids.size:
            order = np.argsort(gids, kind="stable")
            sg = gids[order]
            bnd = np.flatnonzero(sg[1:] != sg[:-1]) + 1
            g_starts = np.concatenate((np.zeros(1, dtype=np.int64), bnd))
            g_ends = np.append(bnd, sg.size)
            group_iter = [
                (lv.arc_groups[int(sg[s])][0], order[s:e])
                for s, e in zip(g_starts, g_ends)
            ]
    S = arrival.shape[0]
    a_in = arrival[:, cell_in]
    s_in = slew[:, cell_in]
    safe_net = np.maximum(dest_net, 0)
    load_dest = np.where(dest_net >= 0, net_load[:, safe_net], 0.0)
    load_arc = np.repeat(load_dest, counts, axis=1)
    delays = np.empty((S, n_arc), dtype=np.float64)
    oslews = np.empty((S, n_arc), dtype=np.float64)
    if pert.shared_axes is not None:
        sa, la = pert.shared_axes
        s = np.minimum(np.maximum(s_in, sa[0]), sa[-1])
        c = np.minimum(np.maximum(load_arc, la[0]), la[-1])
        i = np.minimum(np.maximum(np.searchsorted(sa, s) - 1, 0), sa.size - 2)
        j = np.minimum(np.maximum(np.searchsorted(la, c) - 1, 0), la.size - 2)
        s0, s1 = sa[i], sa[i + 1]
        c0, c1 = la[j], la[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        omts = 1 - ts
        omtc = 1 - tc
        for arc, pos in group_iter:
            ip, jp = i[:, pos], j[:, pos]
            tsp, tcp = ts[:, pos], tc[:, pos]
            omtsp, omtcp = omts[:, pos], omtc[:, pos]
            for tbl, out in ((arc.delay, delays), (arc.output_slew, oslews)):
                v = tbl.values
                out[:, pos] = (
                    v[ip, jp] * omtsp * omtcp
                    + v[ip + 1, jp] * tsp * omtcp
                    + v[ip, jp + 1] * omtsp * tcp
                    + v[ip + 1, jp + 1] * tsp * tcp
                )
    else:
        for arc, pos in group_iter:
            delays[:, pos] = arc.delay.lookup_many(s_in[:, pos], load_arc[:, pos])
            oslews[:, pos] = arc.output_slew.lookup_many(
                s_in[:, pos], load_arc[:, pos]
            )
    # PVT derate on cell timing; 1.0 rows are bitwise no-ops.
    delays *= cell_derate
    oslews *= cell_derate
    sentinel = np.inf if early else -np.inf
    cand = np.where(np.isnan(a_in), sentinel, a_in + delays)
    seg_starts = start[:-1]
    reduce = np.minimum if early else np.maximum
    best = reduce.reduceat(cand, seg_starts, axis=1)
    row_ids = np.arange(n_arc, dtype=np.int64)
    masked = np.where(cand == np.repeat(best, counts, axis=1), row_ids, n_arc)
    first = np.minimum.reduceat(masked, seg_starts, axis=1)
    valid = best < np.inf if early else best > -np.inf
    gather = np.take_along_axis(oslews, np.minimum(first, max(n_arc - 1, 0)), axis=1)
    winner_slew = np.where(valid, gather, DEFAULT_INPUT_SLEW)
    return best, winner_slew, valid


def propagate_levels_batched(
    pert: LevelizedPins,
    arrival: np.ndarray,
    slew: np.ndarray,
    wire_delay: np.ndarray,
    wire_slew_deg: np.ndarray,
    net_load: np.ndarray,
    net_has_tree: np.ndarray,
    cell_derate: np.ndarray,
    early: bool = False,
) -> None:
    """One full batched PERT pass over all levels (in place).

    All per-pin/per-net inputs carry a leading scenario axis except the
    shared ``net_has_tree`` topology mask.
    """
    for lv in pert.levels:
        if lv.net_dst.size:
            src, dst = lv.net_src, lv.net_dst
            a_drv = arrival[:, src]
            ok = ~np.isnan(a_drv)
            arrival[:, dst] = np.where(ok, a_drv + wire_delay[:, dst], arrival[:, dst])
            s_drv = slew[:, src]
            has_t = net_has_tree[lv.net_net]
            peri = np.sqrt(s_drv * s_drv + wire_slew_deg[:, dst])
            slew[:, dst] = np.where(
                ok, np.where(has_t, peri, s_drv), slew[:, dst]
            )
        if lv.cell_dest.size:
            best, winner_slew, valid = _eval_cell_arcs_batched(
                pert, lv, arrival, slew, net_load,
                lv.cell_dest_net, lv.cell_start, lv.cell_counts, None,
                cell_derate, early,
            )
            dsts = lv.cell_dest
            arrival[:, dsts] = np.where(valid, best, arrival[:, dsts])
            slew[:, dsts] = np.where(valid, winner_slew, slew[:, dsts])


def propagate_from_batched(
    pert: LevelizedPins,
    arrival: np.ndarray,
    slew: np.ndarray,
    wire_delay: np.ndarray,
    wire_slew_deg: np.ndarray,
    net_load: np.ndarray,
    net_has_tree: np.ndarray,
    cell_derate: np.ndarray,
    recompute: np.ndarray,
    early: bool = False,
) -> int:
    """Batched levelized cone propagation from a seeded frontier.

    ``recompute`` is a shared ``(n_pins,)`` seed mask — the union over
    scenarios of pins whose wire timing or driver load changed.  The
    frontier mask is likewise shared (a pin re-evaluates everywhere if
    it changed in *any* scenario); rows whose inputs did not change
    recompute to bitwise-equal values, so the result matches a full
    batched pass exactly.  Returns the number of levels touched.
    """
    changed = np.zeros(pert.n_pins, dtype=bool)
    levels_touched = 0
    for lv in pert.levels:
        level_touched = False
        if lv.net_dst.size:
            m = recompute[lv.net_dst] | changed[lv.net_src]
            if m.any():
                level_touched = True
                src = lv.net_src[m]
                dst = lv.net_dst[m]
                a_drv = arrival[:, src]
                ok = ~np.isnan(a_drv)
                new_a = np.where(ok, a_drv + wire_delay[:, dst], np.nan)
                s_drv = slew[:, src]
                ht = net_has_tree[lv.net_net[m]]
                peri = np.sqrt(s_drv * s_drv + wire_slew_deg[:, dst])
                new_s = np.where(
                    ok, np.where(ht, peri, s_drv), DEFAULT_INPUT_SLEW
                )
                old_a = arrival[:, dst]
                ch = ~((new_a == old_a) | (np.isnan(new_a) & np.isnan(old_a)))
                ch |= new_s != slew[:, dst]
                arrival[:, dst] = new_a
                slew[:, dst] = new_s
                changed[dst] |= ch.any(axis=0)
        if lv.cell_dest.size:
            dsel = recompute[lv.cell_dest]
            if lv.cell_in.size:
                dsel = dsel | np.logical_or.reduceat(
                    changed[lv.cell_in], lv.cell_start[:-1]
                )
            idx = np.flatnonzero(dsel)
            if idx.size == 0:
                if level_touched:
                    levels_touched += 1
                continue
            level_touched = True
            starts = lv.cell_start[:-1][idx]
            ends = lv.cell_start[1:][idx]
            arc_rows = flatmod._expand_ranges(starts, ends)
            counts = ends - starts
            sub_start = np.zeros(idx.size + 1, dtype=np.int64)
            np.cumsum(counts, out=sub_start[1:])
            best, wslew, valid = _eval_cell_arcs_batched(
                pert, lv, arrival, slew, net_load,
                lv.cell_dest_net[idx], sub_start, counts, arc_rows,
                cell_derate, early,
            )
            dsts = lv.cell_dest[idx]
            new_a = np.where(valid, best, np.nan)
            old_a = arrival[:, dsts]
            ch = ~((new_a == old_a) | (np.isnan(new_a) & np.isnan(old_a)))
            ch |= wslew != slew[:, dsts]
            arrival[:, dsts] = new_a
            slew[:, dsts] = wslew
            changed[dsts] |= ch.any(axis=0)
        if level_touched:
            levels_touched += 1
    return levels_touched


__all__ = [
    "launch_arrays_batched",
    "propagate_levels_batched",
    "propagate_from_batched",
]
