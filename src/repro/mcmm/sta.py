"""`ScenarioSTA`: incremental multi-corner/multi-mode sign-off STA.

One facade answers the MCMM sign-off query: *given the forest's current
Steiner coordinates, what are WNS/TNS/violations in every scenario, and
what is the merged verdict?*  It owns:

* **wire groups** — scenarios sharing a ``(wire R, wire C)`` derate pair
  share one Elmore pass (``Corner.wire_key``), so the expensive RC part
  scales with distinct wire corners, not scenarios;
* **check blocks** — setup scenarios batch into one ``(S_setup, n_pins)``
  latest-arrival propagation, hold scenarios into one earliest-arrival
  propagation (repro.mcmm.batch);
* **incremental state** — the same dirty-tree/frontier machinery as
  :class:`repro.sta.incremental.IncrementalSTA`, widened by the
  scenario axis.  Every incremental answer is bitwise-identical to a
  full batched rebuild.

A one-element *neutral* scenario set (``typ@func``) delegates to the
plain `IncrementalSTA`, keeping the pre-MCMM path bitwise untouched;
``force_batched=True`` routes even that case through the batched
kernels (the parity tests compare both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.sta import flat as flatmod
from repro.sta.engine import STAEngine, TimingReport
from repro.sta.hold import DEFAULT_HOLD_TIME
from repro.sta.incremental import IncrementalSTA
from repro.steiner.forest import SteinerForest
from repro.mcmm.batch import (
    launch_arrays_batched,
    propagate_from_batched,
    propagate_levels_batched,
)
from repro.mcmm.scenario import Scenario, ScenarioSet


@dataclass
class ScenarioMetrics:
    """Sign-off result of one scenario (setup slacks or hold slacks)."""

    name: str
    check: str  # "setup" or "hold"
    wns: float
    tns: float
    num_violations: int
    slack: Dict[int, float]
    arrival: np.ndarray  # (n_pins,) propagated arrivals for this scenario


@dataclass
class ScenarioReport:
    """Per-scenario metrics plus the merged MCMM verdict."""

    scenarios: List[ScenarioMetrics]
    merged_wns: float  # worst WNS over all scenarios
    merged_tns: float  # summed TNS over all scenarios
    merged_violations: int

    def by_name(self, name: str) -> ScenarioMetrics:
        for m in self.scenarios:
            if m.name == name:
                return m
        raise KeyError(name)

    def wns_vector(self) -> np.ndarray:
        return np.array([m.wns for m in self.scenarios], dtype=np.float64)

    @staticmethod
    def merge(metrics: List[ScenarioMetrics]) -> "ScenarioReport":
        return ScenarioReport(
            scenarios=metrics,
            merged_wns=min(m.wns for m in metrics),
            merged_tns=sum(m.tns for m in metrics),
            merged_violations=sum(m.num_violations for m in metrics),
        )


@dataclass
class _BatchState:
    """Everything cached between batched queries."""

    flat: flatmod.FlatForest
    coords: np.ndarray
    xy: np.ndarray
    routed: bool
    base_r: np.ndarray  # (E,) nominal edge resistance (dirty-diff basis)
    base_c: np.ndarray
    group_r: np.ndarray  # (G, E) derated edge R per wire group
    group_c: np.ndarray
    elmores: List[flatmod.ElmoreState]  # one per wire group
    wire_delay_G: np.ndarray  # (G, n_pins)
    wire_deg_G: np.ndarray  # (G, n_pins)
    net_load_G: np.ndarray  # (G, n_nets)
    net_has_tree: np.ndarray  # (n_nets,) bool, shared topology
    # Per check block: (S_block, n_pins) propagated state.
    arr_setup: Optional[np.ndarray]
    slew_setup: Optional[np.ndarray]
    arr_hold: Optional[np.ndarray]
    slew_hold: Optional[np.ndarray]


class ScenarioSTA:
    """MCMM STA query object bound to one (netlist, forest) pair.

    Same contract as `IncrementalSTA`: callers move Steiner points on
    ``forest`` and re-query; topology edits trigger a full rebuild; any
    exception mid-update drops the cache before propagating.
    """

    def __init__(
        self,
        netlist: Netlist,
        forest: SteinerForest,
        scenarios: Optional[ScenarioSet] = None,
        engine: Optional[STAEngine] = None,
        tol: float = 0.0,
        force_batched: bool = False,
    ) -> None:
        self.netlist = netlist
        self.forest = forest
        self.scenarios = scenarios if scenarios is not None else ScenarioSet.default()
        self.engine = engine if engine is not None else STAEngine(netlist)
        self.tol = float(tol)
        self._delegate: Optional[IncrementalSTA] = None
        if self.scenarios.is_single_neutral() and not force_batched:
            self._delegate = IncrementalSTA(
                netlist, forest, engine=self.engine, tol=tol
            )
        self._state: Optional[_BatchState] = None
        self.num_queries = 0
        self.num_full = 0
        self.last_dirty_trees = 0
        #: Per-probe dirty-tree counts of the last :meth:`probe_batch`.
        self.last_probe_dirty: List[int] = []

        # Wire groups: scenarios sharing (r_derate, c_derate) share one
        # Elmore pass.  First-occurrence order keeps the neutral group
        # (if any) deterministic.
        keys: List[Tuple[float, float]] = []
        self._group_of: List[int] = []
        for sc in self.scenarios:
            k = sc.corner.wire_key
            if k not in keys:
                keys.append(k)
            self._group_of.append(keys.index(k))
        self._wire_keys = keys

        # Check blocks.
        self._setup_idx = list(self.scenarios.setup_indices())
        self._hold_idx = list(self.scenarios.hold_indices())
        self._clocks = [sc.clock(netlist.clock) for sc in self.scenarios]

        # Per-scenario finalize data.
        pert = self.engine.pert()
        self._setup_req: List[np.ndarray] = []
        self._setup_enabled: List[Optional[np.ndarray]] = []
        for s in self._setup_idx:
            sc = self.scenarios[s]
            self._setup_req.append(self._required_array(sc))
            self._setup_enabled.append(self._enabled_mask(sc, pert.endpoints_arr))
        # Hold endpoints: register data pins in register iteration order
        # (matches repro.sta.hold.run_hold_analysis).
        hold_ep: List[int] = []
        for cell in netlist.registers():
            ct = cell.cell_type
            for in_name in ct.input_pins:
                if in_name != ct.clock_pin:
                    hold_ep.append(cell.pin_indices[in_name])
        self._hold_ep = np.array(hold_ep, dtype=np.int64)
        self._hold_enabled: List[Optional[np.ndarray]] = [
            self._enabled_mask(self.scenarios[s], self._hold_ep)
            for s in self._hold_idx
        ]

    # ------------------------------------------------------------------
    def _required_array(self, sc: Scenario) -> np.ndarray:
        """Per-endpoint required times under one setup scenario, aligned
        with ``pert.endpoints_arr`` (the engine's endpoint order)."""
        clock = sc.clock(self.netlist.clock)
        margin = sc.corner.setup_margin
        req: Dict[int, float] = {}
        for cell in self.netlist.registers():
            ct = cell.cell_type
            for in_name in ct.input_pins:
                if in_name != ct.clock_pin:
                    req[cell.pin_indices[in_name]] = clock.required_at_register(
                        ct.setup_time + margin
                    )
        for port in self.netlist.primary_outputs():
            req[port.index] = clock.required_at_output()
        return np.array(
            [req[ep] for ep in self.engine._endpoints], dtype=np.float64
        )

    @staticmethod
    def _enabled_mask(sc: Scenario, endpoints: np.ndarray) -> Optional[np.ndarray]:
        if not sc.mode.disabled_endpoints:
            return None
        disabled = np.array(sc.mode.disabled_endpoints, dtype=np.int64)
        return ~np.isin(endpoints, disabled)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached state; the next query runs a full pass."""
        if self._delegate is not None:
            self._delegate.invalidate()
        self._state = None

    reset = invalidate

    def full_recompute(
        self,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> ScenarioReport:
        self.invalidate()
        return self.run(route_result=route_result, utilization=utilization)

    # ------------------------------------------------------------------
    def run(
        self,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> ScenarioReport:
        """Scenario-merged timing under the current Steiner coordinates."""
        self.num_queries += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("mcmm.sta_queries")
        if self._delegate is not None:
            report = self._delegate.run(
                route_result=route_result, utilization=utilization
            )
            self.num_full = self._delegate.num_full
            self.last_dirty_trees = self._delegate.last_dirty_trees
            return self._wrap_single(report)
        pert = self.engine.pert()
        flat = flatmod.flat_forest_of(self.forest, pert.pin_caps)
        coords = self.forest.get_steiner_coords()
        st = self._state
        if st is None or st.flat is not flat:
            return self._full(flat, coords, route_result, utilization)
        try:
            return self._incremental(st, coords, route_result, utilization)
        except Exception:
            self._state = None
            raise

    def _wrap_single(self, report: TimingReport) -> ScenarioReport:
        sc = self.scenarios[0]
        m = ScenarioMetrics(
            name=sc.name,
            check="setup",
            wns=report.wns,
            tns=report.tns,
            num_violations=report.num_violations,
            slack=dict(report.slack),
            arrival=report.arrival,
        )
        return ScenarioReport.merge([m])

    # ------------------------------------------------------------------
    def _full(
        self,
        flat: flatmod.FlatForest,
        coords: np.ndarray,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> ScenarioReport:
        self.num_full += 1
        self.last_dirty_trees = flat.n_trees
        tel = get_telemetry()
        if tel.enabled:
            tel.count("mcmm.full_rebuilds")
        engine = self.engine
        pert = engine.pert()
        xy = flatmod.node_positions(flat, coords)
        routed = route_result is not None
        if routed:
            base_r, base_c = flatmod.routed_edge_rc(
                flat, engine.technology, xy, route_result,
                utilization, engine.COUPLING_K,
            )
        else:
            base_r, base_c = flatmod.preroute_edge_rc(flat, engine.technology, xy)

        G = len(self._wire_keys)
        n_pins = pert.n_pins
        group_r = np.empty((G, base_r.size))
        group_c = np.empty((G, base_c.size))
        elmores: List[flatmod.ElmoreState] = []
        wire_delay_G = np.zeros((G, n_pins))
        wire_deg_G = np.zeros((G, n_pins))
        net_load_G = np.empty((G, pert.n_nets))
        for g, (rd, cd) in enumerate(self._wire_keys):
            group_r[g] = base_r * rd
            group_c[g] = base_c * cd
            el = flatmod.elmore_forest(flat, group_r[g], group_c[g])
            elmores.append(el)
            wire_delay_G[g, flat.sink_pin] = el.sink_delay
            wire_deg_G[g, flat.sink_pin] = el.sink_slew_deg
            net_load_G[g] = pert.lumped_net_cap
            net_load_G[g, flat.net_of_tree] = el.total_cap
        net_has_tree = np.zeros(pert.n_nets, dtype=bool)
        net_has_tree[flat.net_of_tree] = True

        st = _BatchState(
            flat=flat,
            coords=np.array(coords, dtype=np.float64, copy=True),
            xy=xy,
            routed=routed,
            base_r=base_r,
            base_c=base_c,
            group_r=group_r,
            group_c=group_c,
            elmores=elmores,
            wire_delay_G=wire_delay_G,
            wire_deg_G=wire_deg_G,
            net_load_G=net_load_G,
            net_has_tree=net_has_tree,
            arr_setup=None,
            slew_setup=None,
            arr_hold=None,
            slew_hold=None,
        )
        for idx, early in ((self._setup_idx, False), (self._hold_idx, True)):
            if not idx:
                continue
            arrival, slew = launch_arrays_batched(
                engine, [self._clocks[s] for s in idx]
            )
            wd, deg, nl, derate = self._block_arrays(st, idx)
            propagate_levels_batched(
                pert, arrival, slew, wd, deg, nl, net_has_tree, derate, early=early
            )
            if early:
                st.arr_hold, st.slew_hold = arrival, slew
            else:
                st.arr_setup, st.slew_setup = arrival, slew
        self._state = st
        return self._finalize(st)

    def _block_arrays(
        self, st: _BatchState, idx: List[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expand group-level wire arrays to one row per block scenario."""
        g_rows = np.array([self._group_of[s] for s in idx], dtype=np.int64)
        derate = np.array(
            [[self.scenarios[s].corner.cell_derate] for s in idx]
        )
        return (
            st.wire_delay_G[g_rows],
            st.wire_deg_G[g_rows],
            st.net_load_G[g_rows],
            derate,
        )

    # ------------------------------------------------------------------
    def _incremental(
        self,
        st: _BatchState,
        coords: np.ndarray,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> ScenarioReport:
        engine = self.engine
        pert = engine.pert()
        flat = st.flat
        routed = route_result is not None

        dirty_mask = np.zeros(flat.n_trees, dtype=bool)
        if routed or st.routed:
            xy = st.xy
            if flat.steiner_rows.size:
                xy[flat.steiner_rows] = coords[flat.steiner_flat]
            if routed:
                new_r, new_c = flatmod.routed_edge_rc(
                    flat, engine.technology, xy, route_result,
                    utilization, engine.COUPLING_K,
                )
            else:
                new_r, new_c = flatmod.preroute_edge_rc(flat, engine.technology, xy)
            diff = (new_r != st.base_r) | (new_c != st.base_c)
            dirty_mask[flat.edge_tree[diff]] = True
            st.base_r, st.base_c = new_r, new_c
            st.coords = np.array(coords, dtype=np.float64, copy=True)
        else:
            delta = np.abs(coords - st.coords)
            if self.tol > 0.0:
                moved = np.any(delta > self.tol, axis=1)
            else:
                moved = np.any(coords != st.coords, axis=1)
            dirty_mask[flat.steiner_tree[moved]] = True
            coord_rows = dirty_mask[flat.steiner_tree]
            st.coords[coord_rows] = coords[coord_rows]
            xy = st.xy
            m = coord_rows[flat.steiner_flat]
            if m.any():
                xy[flat.steiner_rows[m]] = coords[flat.steiner_flat[m]]
            dirty = np.flatnonzero(dirty_mask)
            if dirty.size:
                e_rows = flat.edge_rows_of_trees(dirty)
                flatmod.preroute_edge_rc(
                    flat, engine.technology, xy,
                    edge_rows=e_rows, out_r=st.base_r, out_c=st.base_c,
                )
        st.routed = routed

        dirty = np.flatnonzero(dirty_mask)
        self.last_dirty_trees = int(dirty.size)
        tel = get_telemetry()
        if tel.enabled:
            tel.hist("mcmm.dirty_trees", int(dirty.size))
        recompute = np.zeros(pert.n_pins, dtype=bool)
        if dirty.size:
            e_rows = flat.edge_rows_of_trees(dirty)
            sink_sel = flat.sink_rows_of_trees(dirty)
            pins = flat.sink_pin[sink_sel]
            nets = flat.net_of_tree[dirty]
            for g, (rd, cd) in enumerate(self._wire_keys):
                # Refresh the derated rows of the dirty trees, then the
                # partial Elmore pass (bitwise-identical to full).
                st.group_r[g, e_rows] = st.base_r[e_rows] * rd
                st.group_c[g, e_rows] = st.base_c[e_rows] * cd
                el = st.elmores[g]
                flatmod.elmore_update(
                    flat, st.group_r[g], st.group_c[g], el, trees=dirty
                )
                new_wd = el.sink_delay[sink_sel]
                new_deg = el.sink_slew_deg[sink_sel]
                w_ch = (st.wire_delay_G[g, pins] != new_wd) | (
                    st.wire_deg_G[g, pins] != new_deg
                )
                st.wire_delay_G[g, pins] = new_wd
                st.wire_deg_G[g, pins] = new_deg
                recompute[pins[w_ch]] = True
                new_load = el.total_cap[dirty]
                l_ch = st.net_load_G[g, nets] != new_load
                st.net_load_G[g, nets] = new_load
                recompute[pert.net_driver[nets[l_ch]]] = True

        if recompute.any():
            for idx, early in ((self._setup_idx, False), (self._hold_idx, True)):
                if not idx:
                    continue
                arrival = st.arr_hold if early else st.arr_setup
                slew = st.slew_hold if early else st.slew_setup
                wd, deg, nl, derate = self._block_arrays(st, idx)
                propagate_from_batched(
                    pert, arrival, slew, wd, deg, nl, st.net_has_tree,
                    derate, recompute, early=early,
                )
        return self._finalize(st)

    # ------------------------------------------------------------------
    def _finalize(self, st: _BatchState) -> ScenarioReport:
        """Per-scenario slacks/WNS/TNS from the propagated blocks."""
        return self._finalize_blocks(st.arr_setup, st.arr_hold)

    def _finalize_blocks(
        self,
        arr_setup: Optional[np.ndarray],
        arr_hold: Optional[np.ndarray],
        light: bool = False,
    ) -> ScenarioReport:
        """Metrics from explicit ``(S_block, n_pins)`` arrival blocks.

        ``light=True`` skips the per-endpoint slack dict and the arrival
        copy — WNS/TNS/violation counts are unchanged bitwise; the
        what-if probe path uses it because a probe answer is consumed as
        a scalar delta, never as a slack map.
        """
        pert = self.engine.pert()
        metrics: List[Optional[ScenarioMetrics]] = [None] * len(self.scenarios)
        for row, s in enumerate(self._setup_idx):
            sc = self.scenarios[s]
            clock = self._clocks[s]
            launch = clock.launch_time()
            arrival = arr_setup[row]
            req_arr = self._setup_req[row]
            eps = pert.endpoints_arr
            arr_ep = arrival[eps]
            nan_ep = np.isnan(arr_ep)
            svals = np.where(nan_ep, req_arr - launch, req_arr - arr_ep)
            enabled = self._setup_enabled[row]
            if enabled is not None:
                eps = eps[enabled]
                svals = svals[enabled]
            if light:
                slack: Dict[int, float] = {}
            else:
                slack = {int(ep): float(v) for ep, v in zip(eps, svals)}
            wns = float(svals.min()) if svals.size else 0.0
            neg = np.minimum(svals, 0.0)
            tns = float(neg.sum()) if svals.size else 0.0
            vios = int(np.count_nonzero(svals < 0.0))
            metrics[s] = ScenarioMetrics(
                name=sc.name, check="setup", wns=wns, tns=tns,
                num_violations=vios, slack=slack,
                arrival=arrival if light else arrival.copy(),
            )
        for row, s in enumerate(self._hold_idx):
            sc = self.scenarios[s]
            clock = self._clocks[s]
            launch = clock.launch_time()
            requirement = DEFAULT_HOLD_TIME + sc.corner.hold_margin + clock.uncertainty
            arrival = arr_hold[row]
            eps = self._hold_ep
            enabled = self._hold_enabled[row]
            if enabled is not None:
                eps = eps[enabled]
            arr_ep = arrival[eps]
            ok = ~np.isnan(arr_ep)
            svals = arr_ep[ok] - launch - requirement
            if light:
                slack = {}
            else:
                slack = {int(ep): float(v) for ep, v in zip(eps[ok], svals)}
            whs = float(svals.min()) if svals.size else 0.0
            neg = np.minimum(svals, 0.0)
            tns = float(neg.sum()) if svals.size else 0.0
            vios = int(np.count_nonzero(svals < 0.0))
            metrics[s] = ScenarioMetrics(
                name=sc.name, check="hold", wns=whs, tns=tns,
                num_violations=vios, slack=slack,
                arrival=arrival if light else arrival.copy(),
            )
        return ScenarioReport.merge([m for m in metrics if m is not None])

    # ------------------------------------------------------------------
    def probe_batch(
        self, coords_list: Sequence[np.ndarray]
    ) -> Tuple[ScenarioReport, List[ScenarioReport]]:
        """Time K candidate coordinate sets in one batched PERT pass.

        The query-fusion layer's kernel (docs/SERVING.md): each entry of
        ``coords_list`` is a full ``(S, 2)`` Steiner coordinate array —
        typically the committed coordinates with one point moved — and
        becomes its own row group of the ``(K * S_block, n_pins)`` check
        blocks.  Per probe the dirty trees are re-Elmored exactly like
        :meth:`_incremental` (partial RC + ``elmore_update``), the
        mutated base-state slices are restored bit-for-bit, and one
        shared :func:`propagate_from_batched` sweep with the **union**
        recompute mask re-times every probe row at once.  Rows whose
        inputs did not change recompute to bitwise-equal values (see
        ``repro.mcmm.batch``), so every probe report is bitwise-identical
        to running that move alone — ``probe_batch([c])`` *is* the
        serial path, which is what makes fused and unfused serving
        byte-comparable.

        Nothing is committed: the cached state (and the forest) are
        exactly as before the call.  Returns ``(base_report, probes)``
        where ``base_report`` re-synchronizes with the forest's current
        coordinates first.  Probe reports are "light": WNS/TNS and
        violation counts only (empty slack maps).

        Requires ``force_batched=True`` (the delegate path has no
        scenario axis to widen) and pre-route probing.
        """
        if self._delegate is not None:
            raise ValueError(
                "probe_batch requires force_batched=True — the neutral "
                "delegate has no scenario axis to widen"
            )
        base = self.run()
        st = self._state
        engine = self.engine
        pert = engine.pert()
        flat = st.flat
        K = len(coords_list)
        self.last_probe_dirty = []
        tel = get_telemetry()
        if tel.enabled:
            tel.count("mcmm.probe_batches")
            tel.hist("mcmm.probe_width", K)
        if K == 0:
            return base, []

        # One (K * S_block, n_pins) workspace per check block, seeded
        # with the committed propagated state tiled K times.
        blocks = []
        for idx, early in ((self._setup_idx, False), (self._hold_idx, True)):
            if not idx:
                blocks.append(None)
                continue
            bwd, bdeg, bnl, derate = self._block_arrays(st, idx)
            arr0 = st.arr_hold if early else st.arr_setup
            slew0 = st.slew_hold if early else st.slew_setup
            blocks.append(
                {
                    "idx": idx,
                    "early": early,
                    "wd": np.tile(bwd, (K, 1)),
                    "deg": np.tile(bdeg, (K, 1)),
                    "nl": np.tile(bnl, (K, 1)),
                    "derate": np.tile(derate, (K, 1)),
                    "arr": np.tile(arr0, (K, 1)),
                    "slew": np.tile(slew0, (K, 1)),
                }
            )

        groups_used = sorted(set(self._group_of))
        recompute = np.zeros(pert.n_pins, dtype=bool)
        try:
            for k in range(K):
                coords = np.asarray(coords_list[k], dtype=np.float64)
                moved = np.any(coords != st.coords, axis=1)
                dirty_mask = np.zeros(flat.n_trees, dtype=bool)
                dirty_mask[flat.steiner_tree[moved]] = True
                dirty = np.flatnonzero(dirty_mask)
                self.last_probe_dirty.append(int(dirty.size))
                if dirty.size == 0:
                    continue
                e_rows = flat.edge_rows_of_trees(dirty)
                node_rows = flat.node_rows_of_trees(dirty)
                sink_sel = flat.sink_rows_of_trees(dirty)
                pins = flat.sink_pin[sink_sel]
                nets = flat.net_of_tree[dirty]
                coord_rows = dirty_mask[flat.steiner_tree]
                m = coord_rows[flat.steiner_flat]
                xy_rows = flat.steiner_rows[m]

                # Save exactly the slices the probe mutates; restoring
                # them leaves the committed base state bit-identical.
                saved_xy = st.xy[xy_rows].copy()
                saved_r = st.base_r[e_rows].copy()
                saved_c = st.base_c[e_rows].copy()
                saved_groups = {}
                try:
                    st.xy[xy_rows] = coords[flat.steiner_flat[m]]
                    flatmod.preroute_edge_rc(
                        flat, engine.technology, st.xy,
                        edge_rows=e_rows, out_r=st.base_r, out_c=st.base_c,
                    )
                    for g in groups_used:
                        rd, cd = self._wire_keys[g]
                        el = st.elmores[g]
                        saved_groups[g] = (
                            st.group_r[g, e_rows].copy(),
                            st.group_c[g, e_rows].copy(),
                            el.node_cap[node_rows].copy(),
                            el.subtree_cap[node_rows].copy(),
                            el.delay[node_rows].copy(),
                            el.total_cap[dirty].copy(),
                            el.sink_delay[sink_sel].copy(),
                            el.sink_slew_deg[sink_sel].copy(),
                        )
                        st.group_r[g, e_rows] = st.base_r[e_rows] * rd
                        st.group_c[g, e_rows] = st.base_c[e_rows] * cd
                        flatmod.elmore_update(
                            flat, st.group_r[g], st.group_c[g], el, trees=dirty
                        )
                    for block in blocks:
                        if block is None:
                            continue
                        S = len(block["idx"])
                        for row_s, s in enumerate(block["idx"]):
                            g = self._group_of[s]
                            el = st.elmores[g]
                            row = k * S + row_s
                            new_wd = el.sink_delay[sink_sel]
                            new_deg = el.sink_slew_deg[sink_sel]
                            w_ch = (st.wire_delay_G[g, pins] != new_wd) | (
                                st.wire_deg_G[g, pins] != new_deg
                            )
                            block["wd"][row, pins] = new_wd
                            block["deg"][row, pins] = new_deg
                            recompute[pins[w_ch]] = True
                            new_load = el.total_cap[dirty]
                            l_ch = st.net_load_G[g, nets] != new_load
                            block["nl"][row, nets] = new_load
                            recompute[pert.net_driver[nets[l_ch]]] = True
                finally:
                    for g, sv in saved_groups.items():
                        el = st.elmores[g]
                        st.group_r[g, e_rows] = sv[0]
                        st.group_c[g, e_rows] = sv[1]
                        el.node_cap[node_rows] = sv[2]
                        el.subtree_cap[node_rows] = sv[3]
                        el.delay[node_rows] = sv[4]
                        el.total_cap[dirty] = sv[5]
                        el.sink_delay[sink_sel] = sv[6]
                        el.sink_slew_deg[sink_sel] = sv[7]
                    st.base_r[e_rows] = saved_r
                    st.base_c[e_rows] = saved_c
                    st.xy[xy_rows] = saved_xy

            if recompute.any():
                for block in blocks:
                    if block is None:
                        continue
                    propagate_from_batched(
                        pert, block["arr"], block["slew"], block["wd"],
                        block["deg"], block["nl"], st.net_has_tree,
                        block["derate"], recompute, early=block["early"],
                    )
        except Exception:
            # Same safety contract as run(): never keep possibly
            # half-restored state behind an exception.
            self._state = None
            raise

        setup_block, hold_block = blocks
        S_su = len(self._setup_idx)
        S_h = len(self._hold_idx)
        probes: List[ScenarioReport] = []
        for k in range(K):
            a_su = (
                setup_block["arr"][k * S_su:(k + 1) * S_su]
                if setup_block is not None
                else None
            )
            a_h = (
                hold_block["arr"][k * S_h:(k + 1) * S_h]
                if hold_block is not None
                else None
            )
            probes.append(self._finalize_blocks(a_su, a_h, light=True))
        return base, probes


__all__ = ["ScenarioMetrics", "ScenarioReport", "ScenarioSTA"]
