"""Scenario model: operating modes and corner x mode scenario sets.

A *scenario* is the unit every sign-off query is judged against in
MCMM flows: one PVT :class:`~repro.pdk.corners.Corner` combined with
one operating :class:`Mode`.  A :class:`ScenarioSet` is the cross
product the design must close simultaneously; the merged verdict is
the worst WNS over scenarios and the summed TNS (docs/MCMM.md).

The neutral scenario (``typ`` corner, ``func`` mode) reproduces the
single-scenario engine exactly: every derate is 1.0, the clock is
unscaled and no endpoint is disabled, so a one-element neutral set is
contractually bitwise-identical to pre-MCMM behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from repro.pdk.clocks import ClockSpec
from repro.pdk.corners import Corner, get_corner


@dataclass(frozen=True)
class Mode:
    """One operating mode: a clock configuration plus false endpoints.

    ``clock_scale`` multiplies the design's base clock period (an
    overdrive mode runs a shorter cycle); ``disabled_endpoints`` lists
    endpoint pin indices excluded from the mode's WNS/TNS verdict
    (paths that are false or unused in this mode).
    """

    name: str
    clock_scale: float = 1.0
    disabled_endpoints: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.clock_scale <= 0:
            raise ValueError("clock_scale must be positive")

    @property
    def is_neutral(self) -> bool:
        return self.clock_scale == 1.0 and not self.disabled_endpoints


#: Named mode presets.  ``func`` is the nominal functional mode.
PRESET_MODES: Dict[str, Mode] = {
    m.name: m
    for m in (
        Mode("func"),
        Mode("overdrive", clock_scale=0.9),
        Mode("relaxed", clock_scale=1.25),
    )
}


def get_mode(name: str) -> Mode:
    """Look a preset mode up by name."""
    try:
        return PRESET_MODES[name]
    except KeyError:
        raise KeyError(
            f"unknown mode {name!r}; presets: {', '.join(sorted(PRESET_MODES))}"
        ) from None


@dataclass(frozen=True)
class Scenario:
    """One sign-off scenario: a corner timed under a mode."""

    corner: Corner
    mode: Mode

    @property
    def name(self) -> str:
        return f"{self.corner.name}@{self.mode.name}"

    @property
    def check(self) -> str:
        return self.corner.check

    @property
    def is_neutral(self) -> bool:
        return self.corner.is_neutral and self.mode.is_neutral

    def clock(self, base: ClockSpec) -> ClockSpec:
        """The base clock under this scenario's mode and corner.

        For the neutral scenario every factor is exactly 1.0, so the
        returned spec is value-identical to ``base`` (``x * 1.0`` is
        bitwise ``x`` for finite floats).
        """
        return ClockSpec(
            period=base.period * self.mode.clock_scale,
            uncertainty=base.uncertainty * self.corner.uncertainty_scale,
            latency=base.latency,
            input_delay=base.input_delay,
            output_delay=base.output_delay,
        )


class ScenarioSet:
    """An ordered, named collection of scenarios (corners x modes)."""

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValueError("a ScenarioSet needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names: {names}")
        self.scenarios: Tuple[Scenario, ...] = scenarios

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, i: int) -> Scenario:
        return self.scenarios[i]

    def __repr__(self) -> str:
        return f"ScenarioSet({', '.join(self.names)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScenarioSet) and self.scenarios == other.scenarios

    def __hash__(self) -> int:
        return hash(self.scenarios)

    # -- queries -------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.scenarios)

    def is_single_neutral(self) -> bool:
        """True when this set is exactly the pre-MCMM single scenario.

        Callers use this to route one-element neutral sets through the
        unbatched engine, preserving bitwise-identical behaviour.
        """
        return len(self.scenarios) == 1 and self.scenarios[0].is_neutral

    def setup_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, s in enumerate(self.scenarios) if s.check == "setup")

    def hold_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, s in enumerate(self.scenarios) if s.check == "hold")

    # -- constructors --------------------------------------------------
    @staticmethod
    def from_names(
        corners: Sequence[str], modes: Sequence[str] = ("func",)
    ) -> "ScenarioSet":
        """Cross product of preset corner and mode names."""
        return ScenarioSet(
            [
                Scenario(get_corner(c), get_mode(m))
                for m in modes
                for c in corners
            ]
        )

    @staticmethod
    def default() -> "ScenarioSet":
        """The neutral single scenario (``typ@func``)."""
        return ScenarioSet.from_names(("typ",))

    @staticmethod
    def signoff() -> "ScenarioSet":
        """The three-corner sign-off set: typ, slow-setup, fast-hold."""
        return ScenarioSet.from_names(("typ", "slow_setup", "fast_hold"))
