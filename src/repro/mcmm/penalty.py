"""Scenario-merged refinement penalty (worst-over-scenarios LSE).

Refinement under MCMM must descend a *merged* objective so gradients
flow from every violating corner, not just the nominal one.  This
module composes the paper's Eq. (5)-(6) smoothed penalty per scenario
and merges with a second Log-Sum-Exp:

    P_merged = LSE_gamma_m( P_s : s active )  ~=  max_s P_s

Each scenario's endpoint slack is built from the evaluator's predicted
*nominal* arrivals through a first-order derate surrogate:

    arr_s   = launch + delay_scale_s * (arr - launch)
    setup:   slack_s = required_s - arr_s
    hold:    slack_s = delay_scale_s * (arr - launch) - hold_req_s

The surrogate is deliberately cheap — one scalar per corner
(``Corner.delay_scale``) — because the *verdict* never relies on it:
accept/revert uses exact hard metrics over **all** scenarios, and in
hybrid mode the validator re-times candidates with the exact batched
`ScenarioSTA`.  Dominance pruning (repro.mcmm.prune) may drop scenarios
from the merged *gradient*, never from the hard metrics.

The neutral single-scenario case never reaches this module: `refine()`
routes it through the original oracle, keeping that path bitwise
untouched (tests/test_mcmm.py pins this down).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.core.penalty import PenaltyConfig, smoothed_from_slack
from repro.mcmm.scenario import ScenarioSet
from repro.sta.hold import DEFAULT_HOLD_TIME
from repro.timing_model.graph import TimingGraph


class _ScenarioSpec:
    """Precomputed per-scenario finalize data over the graph endpoints."""

    __slots__ = (
        "name", "check", "launch", "delay_scale", "ep_idx", "required", "hold_req",
    )

    def __init__(self, name, check, launch, delay_scale, ep_idx, required, hold_req):
        self.name = name
        self.check = check
        self.launch = launch
        self.delay_scale = delay_scale
        self.ep_idx = ep_idx  # endpoint pin indices this scenario checks
        self.required = required  # (len(ep_idx),) setup required times
        self.hold_req = hold_req  # scalar hold requirement (hold only)


class ScenarioPenalty:
    """Merged smoothed penalty + exact per-scenario hard metrics."""

    def __init__(
        self,
        graph: TimingGraph,
        scenarios: ScenarioSet,
        mcmm_gamma: float = 10.0,
    ) -> None:
        self.scenarios = scenarios
        self.mcmm_gamma = float(mcmm_gamma)
        netlist = graph.netlist
        base_clock = netlist.clock

        # Graph endpoint order: register data pins then primary outputs
        # (repro.timing_model.graph).  Collect per-endpoint setup times
        # and the register/PO split once.
        eps: List[int] = []
        setup_times: List[float] = []
        is_reg: List[bool] = []
        for cell in netlist.registers():
            ct = cell.cell_type
            for in_name in ct.input_pins:
                if in_name != ct.clock_pin:
                    eps.append(cell.pin_indices[in_name])
                    setup_times.append(ct.setup_time)
                    is_reg.append(True)
        for port in netlist.primary_outputs():
            eps.append(port.index)
            setup_times.append(0.0)
            is_reg.append(False)
        eps_arr = np.array(eps, dtype=np.int64)
        st_arr = np.array(setup_times, dtype=np.float64)
        reg_mask = np.array(is_reg, dtype=bool)

        self.specs: List[_ScenarioSpec] = []
        for sc in scenarios:
            clock = sc.clock(base_clock)
            launch = clock.launch_time()
            enabled = np.ones(eps_arr.size, dtype=bool)
            if sc.mode.disabled_endpoints:
                disabled = np.array(sc.mode.disabled_endpoints, dtype=np.int64)
                enabled &= ~np.isin(eps_arr, disabled)
            if sc.check == "setup":
                req = np.where(
                    reg_mask,
                    clock.period + clock.latency
                    - (st_arr + sc.corner.setup_margin) - clock.uncertainty,
                    clock.period - clock.output_delay - clock.uncertainty,
                )
                self.specs.append(_ScenarioSpec(
                    name=sc.name, check="setup", launch=launch,
                    delay_scale=sc.corner.delay_scale,
                    ep_idx=eps_arr[enabled], required=req[enabled],
                    hold_req=0.0,
                ))
            else:
                en = enabled & reg_mask
                self.specs.append(_ScenarioSpec(
                    name=sc.name, check="hold", launch=launch,
                    delay_scale=sc.corner.delay_scale,
                    ep_idx=eps_arr[en], required=None,
                    hold_req=DEFAULT_HOLD_TIME + sc.corner.hold_margin
                    + clock.uncertainty,
                ))

    # ------------------------------------------------------------------
    def _slack_tensor(self, arrival: Tensor, spec: _ScenarioSpec) -> Tensor:
        arr = arrival[spec.ep_idx]
        shifted = (arr - spec.launch) * spec.delay_scale
        if spec.check == "setup":
            return Tensor(spec.required) - (shifted + spec.launch)
        return shifted - spec.hold_req

    @staticmethod
    def _zero_slack_baseline(n_endpoints: int, config: PenaltyConfig) -> float:
        """Eq. (5)-(6) penalty of an all-zero-slack endpoint vector.

        The smoothed WNS carries a ``-gamma * log(n)`` offset and the
        smoothed TNS a ``-gamma * log(2) * n`` one, so raw per-scenario
        penalties are dominated by endpoint *count*, not criticality:
        merged naively, a clean scenario with many endpoints outweighs
        a violating one with few and the LSE gradient descends the
        wrong corner.  Subtracting this constant calibrates every
        scenario to "how bad relative to timing-clean" before merging.
        """
        wns0 = -config.gamma * math.log(n_endpoints)
        tns0 = -config.gamma * math.log(2.0) * n_endpoints
        return config.lambda_wns * wns0 + config.lambda_tns * tns0

    def merged_penalty(
        self,
        arrival: Tensor,
        config: PenaltyConfig,
        active: Optional[np.ndarray] = None,
    ) -> Tensor:
        """LSE-merged differentiable penalty over the active scenarios.

        Each scenario's Eq. (6) penalty is calibrated by its zero-slack
        baseline (see :meth:`_zero_slack_baseline`) so the merge weighs
        violations, not endpoint counts.  ``active`` is the dominance
        pruner's mask; ``None`` means all.  At least one scenario must
        be active (the pruner guarantees the current worst always is).
        """
        terms: List[Tensor] = []
        for s, spec in enumerate(self.specs):
            if active is not None and not active[s]:
                continue
            if spec.ep_idx.size == 0:
                continue
            p, _, _ = smoothed_from_slack(self._slack_tensor(arrival, spec), config)
            terms.append(p - self._zero_slack_baseline(spec.ep_idx.size, config))
        if not terms:
            raise ValueError("no active scenario with endpoints to penalize")
        if len(terms) == 1:
            return terms[0]
        return F.logsumexp(F.stack(terms), gamma=self.mcmm_gamma)

    # ------------------------------------------------------------------
    def hard_all(
        self, arrival: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float, float]:
        """Exact surrogate metrics over **all** scenarios.

        Returns ``(per_wns, per_tns, merged_wns, merged_tns)`` where the
        merged WNS is the worst over scenarios and the merged TNS the
        sum — pruning never narrows this verdict.
        """
        arrival = np.asarray(arrival)
        per_wns = np.zeros(len(self.specs))
        per_tns = np.zeros(len(self.specs))
        for s, spec in enumerate(self.specs):
            if spec.ep_idx.size == 0:
                continue
            shifted = (arrival[spec.ep_idx] - spec.launch) * spec.delay_scale
            if spec.check == "setup":
                slack = spec.required - (shifted + spec.launch)
            else:
                slack = shifted - spec.hold_req
            per_wns[s] = float(slack.min())
            per_tns[s] = float(np.minimum(slack, 0.0).sum())
        return per_wns, per_tns, float(per_wns.min()), float(per_tns.sum())


__all__ = ["ScenarioPenalty"]
