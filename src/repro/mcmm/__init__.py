"""MCMM scenario engine: multi-corner/multi-mode sign-off (docs/MCMM.md).

Makes every sign-off query scenario-aware:

* :mod:`repro.mcmm.scenario` — `Corner` x `Mode` scenario model with
  named presets (``typ``, ``slow_setup``, ``fast_hold``, …);
* :mod:`repro.mcmm.batch` — scenario-batched PERT kernels (one leading
  scenario axis over the shared levelized topology);
* :mod:`repro.mcmm.sta` — `ScenarioSTA`, the incremental cross-scenario
  facade with per-scenario and merged WNS/TNS/violations;
* :mod:`repro.mcmm.penalty` — the LSE-merged worst-over-scenarios
  refinement penalty;
* :mod:`repro.mcmm.prune` — dominance pruning of non-critical scenarios
  during refinement.

A one-element neutral `ScenarioSet` is contractually bitwise-identical
to the pre-MCMM single-scenario path.
"""

from repro.mcmm.scenario import (
    Mode,
    PRESET_MODES,
    Scenario,
    ScenarioSet,
    get_mode,
)
from repro.mcmm.sta import ScenarioMetrics, ScenarioReport, ScenarioSTA
from repro.mcmm.penalty import ScenarioPenalty
from repro.mcmm.prune import DominancePruner

__all__ = [
    "Mode",
    "PRESET_MODES",
    "Scenario",
    "ScenarioSet",
    "get_mode",
    "ScenarioMetrics",
    "ScenarioReport",
    "ScenarioSTA",
    "ScenarioPenalty",
    "DominancePruner",
]
