"""Dominance pruning of MCMM scenarios during refinement.

A scenario whose WNS sits comfortably above the merged (worst) WNS for
``prune_after`` consecutive *accepted* iterations is dominated: its
smoothed penalty contributes almost nothing to the LSE-merged gradient,
so it is dropped from the merged penalty to save evaluator work.  Two
safety rails keep pruning sound:

* the hard accept/revert verdict always scores **all** scenarios
  (`ScenarioPenalty.hard_all`), so pruning can never hide a regression;
* every ``recheck_every`` gradient evaluations all pruned scenarios are
  restored for a full re-check, catching scenarios that drifted back
  toward criticality while pruned.

Telemetry: ``mcmm.pruned`` / ``mcmm.restored`` counters and a
``mcmm_prune`` event per transition (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.obs import get_telemetry


class DominancePruner:
    """Tracks per-scenario dominance streaks and the active mask."""

    def __init__(
        self,
        names: Sequence[str],
        prune_after: int = 3,
        recheck_every: int = 10,
        margin: float = 0.05,
        telemetry=None,
    ) -> None:
        self.names = tuple(names)
        self.prune_after = int(prune_after)
        self.recheck_every = int(recheck_every)
        self.margin = float(margin)
        self.telemetry = telemetry
        n = len(self.names)
        self.active = np.ones(n, dtype=bool)
        self.streak = np.zeros(n, dtype=np.int64)
        self.evals = 0

    def _tel(self):
        return self.telemetry if self.telemetry is not None else get_telemetry()

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Per gradient evaluation: periodic full re-check of pruned
        scenarios (restores everything, resets streaks)."""
        self.evals += 1
        if self.recheck_every > 0 and self.evals % self.recheck_every == 0:
            restored = int(np.count_nonzero(~self.active))
            if restored:
                tel = self._tel()
                if tel.enabled:
                    tel.count("mcmm.restored", restored)
                    tel.event(
                        "mcmm_prune", action="restore", n=restored,
                        evals=self.evals,
                    )
                self.active[:] = True
            self.streak[:] = 0

    def observe(self, per_wns: np.ndarray) -> None:
        """Update dominance streaks after an *accepted* iteration.

        ``per_wns`` is the hard per-scenario WNS vector of the accepted
        candidate.  A scenario is dominated when its WNS exceeds the
        merged (minimum) WNS by more than ``margin``; the argmin
        scenario is never pruned, so the merged gradient always sees
        the current worst corner.
        """
        per_wns = np.asarray(per_wns, dtype=np.float64)
        merged = float(per_wns.min())
        dominated = per_wns > merged + self.margin
        self.streak = np.where(dominated, self.streak + 1, 0)
        newly = self.active & (self.streak >= self.prune_after)
        newly[int(np.argmin(per_wns))] = False
        if newly.any():
            self.active[newly] = False
            tel = self._tel()
            if tel.enabled:
                tel.count("mcmm.pruned", int(np.count_nonzero(newly)))
                tel.event(
                    "mcmm_prune",
                    action="prune",
                    scenarios=[self.names[i] for i in np.flatnonzero(newly)],
                    merged_wns=merged,
                )

    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Checkpoint payload (restored by :meth:`load_state_arrays`)."""
        return {
            "mcmm_active": self.active.copy(),
            "mcmm_streak": self.streak.copy(),
            "mcmm_evals": np.int64(self.evals),
        }

    def load_state_arrays(self, arrays) -> None:
        self.active = np.array(arrays["mcmm_active"], dtype=bool, copy=True)
        self.streak = np.array(arrays["mcmm_streak"], dtype=np.int64, copy=True)
        self.evals = int(arrays["mcmm_evals"])


__all__ = ["DominancePruner"]
