"""Flat batched L-pattern routing — the whole-design congestion probe.

:class:`~repro.groute.router.GlobalRouter` is the production router:
sequential, negotiated, with Z-shape and maze escalation — every
segment sees the usage committed by the segments before it.  That
ordering dependency is what makes it slow (per-edge python) and what
the congestion *probe* never needed: the evaluator only wants a
congestion field estimate, and the refinement loop re-probes it every
accepted move.

This module scores **both L-shapes of every tree edge at once** against
the grid's current cost field — one ``(n_edges, 2)`` accumulation over
the run lengths instead of per-edge python — picks the cheaper shape
per edge, and commits all usage with two ``bincount`` scatters.  The
semantics are deliberately single-pass: every edge is costed against
the *incoming* usage state (no sequential commit feedback), which makes
the estimate order-free and batchable.  A per-edge reference
implementation with identical semantics (:func:`pattern_route_reference`)
is kept as the parity oracle; the two agree **bitwise** on shape
choice, path cost, committed usage, and overflow
(tests/test_flat_steiner.py).

Shape convention, shared with the Steiner construction corner rule
(``steiner/rsmt.py::_corner_for``): shape 0 bends at ``(x2, y1)``,
shape 1 at ``(x1, y2)``; cost ties pick shape 0.  Cost of a shape is
accumulated horizontal-leg-first in increasing edge index, which both
kernels follow so their float sums are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.routegrid.grid import GCellGrid
from repro.steiner.forest import SteinerForest


@dataclass
class FlatRouteResult:
    """One-shot pattern-route estimate over all tree edges."""

    choice: np.ndarray  # (E,) 0 = bend at (x2, y1), 1 = bend at (x1, y2)
    cost: np.ndarray  # (E,) congestion cost of the chosen shape
    overflow: float  # grid overflow after committing all edges
    max_utilization: float

    @property
    def num_edges(self) -> int:
        return int(self.choice.shape[0])


def _expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]``.

    Same helper as ``sta/flat.py`` (copied to keep ``groute`` free of a
    dependency on the STA package).
    """
    counts = (ends - starts).astype(np.int64)
    keep = counts > 0
    starts, counts = starts[keep], counts[keep]
    if counts.size == 0:
        return np.zeros(0, dtype=np.int64)
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    cuts = np.cumsum(counts[:-1])
    out[0] = starts[0]
    out[cuts] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


class _EdgeGeometry:
    """CSR view of the forest's tree edges, memoized on the forest.

    Topology is fixed after construction (refinement only moves
    coordinates), so the per-tree node offsets and global edge endpoint
    rows are built once.  Validity is checked by object identity of
    each tree and its ``edges`` list — every topology rewrite in the
    codebase *reassigns* ``tree.edges`` rather than mutating it.
    """

    def __init__(self, forest: SteinerForest) -> None:
        trees = forest.trees
        self.refs: List[Tuple[object, object]] = [(t, t.edges) for t in trees]
        n_trees = len(trees)
        self.node_off = np.zeros(n_trees + 1, dtype=np.int64)
        self.pin_counts = np.empty(n_trees, dtype=np.int64)
        for i, t in enumerate(trees):
            self.node_off[i + 1] = self.node_off[i] + t.n_nodes
            self.pin_counts[i] = t.n_pins
        eu: List[int] = []
        ev: List[int] = []
        off = self.node_off
        for i, t in enumerate(trees):
            base = off[i]
            for u, v in t.edges:
                eu.append(base + u)
                ev.append(base + v)
        self.eu = np.asarray(eu, dtype=np.int64)
        self.ev = np.asarray(ev, dtype=np.int64)
        self.n_nodes = int(off[-1])

    def valid_for(self, forest: SteinerForest) -> bool:
        trees = forest.trees
        if len(trees) != len(self.refs):
            return False
        return all(t is rt and t.edges is re for t, (rt, re) in zip(trees, self.refs))

    def gather_coords(self, forest: SteinerForest) -> np.ndarray:
        """(n_nodes, 2) current node coordinates, tree-contiguous."""
        xy = np.empty((self.n_nodes, 2), dtype=np.float64)
        off = self.node_off
        for i, tree in enumerate(forest.trees):
            s = off[i]
            p = s + tree.n_pins
            xy[s:p] = tree.pin_xy
            if tree.n_steiner:
                xy[p : off[i + 1]] = tree.steiner_xy
        return xy


def _geometry_of(forest: SteinerForest) -> _EdgeGeometry:
    geom: Optional[_EdgeGeometry] = getattr(forest, "_flat_route_geom", None)
    if geom is None or not geom.valid_for(forest):
        geom = _EdgeGeometry(forest)
        forest._flat_route_geom = geom
    return geom


def cost_fields(
    grid: GCellGrid, overflow_penalty: float = 8.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-edge congestion cost fields, elementwise bitwise-equal to
    :meth:`GCellGrid.edge_cost` over the whole grid."""

    def field(cap: np.ndarray, use: np.ndarray, hist: np.ndarray) -> np.ndarray:
        util = (use + 1.0) / np.maximum(cap, 1e-9)
        extra = np.where(
            util > 1.0,
            overflow_penalty * (util - 1.0) ** 2,
            np.where(util > 0.7, (util - 0.7) * 2.0, 0.0),
        )
        return (1.0 + hist) + extra

    return (
        field(grid.cap_h, grid.use_h, grid.hist_h),
        field(grid.cap_v, grid.use_v, grid.hist_v),
    )


def pattern_route_flat(
    grid: GCellGrid,
    forest: SteinerForest,
    overflow_penalty: float = 8.0,
    commit: bool = True,
) -> FlatRouteResult:
    """Score + commit the cheaper L-shape of every tree edge, batched."""
    geom = _geometry_of(forest)
    xy = geom.gather_coords(forest)
    gx = np.clip(xy[:, 0] / grid.gcell, 0, grid.nx - 1).astype(np.int64)
    gy = np.clip(xy[:, 1] / grid.gcell, 0, grid.ny - 1).astype(np.int64)
    x1, y1 = gx[geom.eu], gy[geom.eu]
    x2, y2 = gx[geom.ev], gy[geom.ev]
    n_edges = x1.shape[0]

    h_lo = np.minimum(x1, x2)
    h_len = np.abs(x1 - x2)
    v_lo = np.minimum(y1, y2)
    v_len = np.abs(y1 - y2)
    # Shape 0 bends at (x2, y1): H leg on row y1, V leg on column x2.
    # Shape 1 bends at (x1, y2): H leg on row y2, V leg on column x1.
    row0, row1 = y1, y2
    col0, col1 = x2, x1

    cost_h, cost_v = cost_fields(grid, overflow_penalty)
    acc0 = np.zeros(n_edges, dtype=np.float64)
    acc1 = np.zeros(n_edges, dtype=np.float64)
    # Sequential accumulation over the run length (vector over edges,
    # scalar over steps) so sums match the per-edge reference bitwise —
    # a reduceat/cumsum would pairwise-sum and drift by ulps.
    h_max_i = cost_h.shape[0] - 1
    for k in range(int(h_len.max()) if n_edges else 0):
        live = h_len > k
        i = np.minimum(h_lo + k, h_max_i)
        acc0 += np.where(live, cost_h[i, row0], 0.0)
        acc1 += np.where(live, cost_h[i, row1], 0.0)
    v_max_j = cost_v.shape[1] - 1
    for k in range(int(v_len.max()) if n_edges else 0):
        live = v_len > k
        j = np.minimum(v_lo + k, v_max_j)
        acc0 += np.where(live, cost_v[col0, j], 0.0)
        acc1 += np.where(live, cost_v[col1, j], 0.0)

    choice = np.where(acc0 <= acc1, 0, 1).astype(np.int64)
    cost = np.where(choice == 0, acc0, acc1)

    if commit and n_edges:
        h_row = np.where(choice == 0, row0, row1)
        v_col = np.where(choice == 0, col0, col1)
        h_cols = _expand_ranges(h_lo, h_lo + h_len)
        if h_cols.size:
            lin = h_cols * grid.ny + np.repeat(h_row, h_len)
            grid.use_h += np.bincount(lin, minlength=cost_h.size).reshape(
                cost_h.shape
            )
        v_rows = _expand_ranges(v_lo, v_lo + v_len)
        if v_rows.size:
            lin = np.repeat(v_col, v_len) * cost_v.shape[1] + v_rows
            grid.use_v += np.bincount(lin, minlength=cost_v.size).reshape(
                cost_v.shape
            )

    return FlatRouteResult(
        choice=choice,
        cost=cost,
        overflow=grid.overflow(),
        max_utilization=grid.max_utilization(),
    )


def pattern_route_reference(
    grid: GCellGrid,
    forest: SteinerForest,
    overflow_penalty: float = 8.0,
    commit: bool = True,
) -> FlatRouteResult:
    """Per-edge python implementation of the same single-pass estimate.

    The parity oracle for :func:`pattern_route_flat`: same edge order
    (tree order, then edge order), same H-leg-then-V-leg accumulation,
    same tie-break — but through :meth:`GCellGrid.edge_cost` calls.
    """
    choices: List[int] = []
    costs: List[float] = []
    runs: List[Tuple[int, int, int, int, int, int]] = []
    for tree in forest.trees:
        xy = tree.node_xy()
        for u, v in tree.edges:
            x1, y1 = grid.locate(xy[u][0], xy[u][1])
            x2, y2 = grid.locate(xy[v][0], xy[v][1])
            h_lo, h_hi = min(x1, x2), max(x1, x2)
            v_lo, v_hi = min(y1, y2), max(y1, y2)
            cost0 = 0.0
            for i in range(h_lo, h_hi):
                cost0 += grid.edge_cost("H", i, y1, overflow_penalty)
            for j in range(v_lo, v_hi):
                cost0 += grid.edge_cost("V", x2, j, overflow_penalty)
            cost1 = 0.0
            for i in range(h_lo, h_hi):
                cost1 += grid.edge_cost("H", i, y2, overflow_penalty)
            for j in range(v_lo, v_hi):
                cost1 += grid.edge_cost("V", x1, j, overflow_penalty)
            pick = 0 if cost0 <= cost1 else 1
            choices.append(pick)
            costs.append(cost0 if pick == 0 else cost1)
            runs.append(
                (h_lo, h_hi, y1 if pick == 0 else y2, v_lo, v_hi, x2 if pick == 0 else x1)
            )
    if commit:
        # Committed after scoring: every edge is costed against the
        # incoming usage state, exactly like the batched kernel.
        for h_lo, h_hi, row, v_lo, v_hi, col in runs:
            for i in range(h_lo, h_hi):
                grid.add_usage("H", i, row)
            for j in range(v_lo, v_hi):
                grid.add_usage("V", col, j)
    return FlatRouteResult(
        choice=np.asarray(choices, dtype=np.int64),
        cost=np.asarray(costs, dtype=np.float64),
        overflow=grid.overflow(),
        max_utilization=grid.max_utilization(),
    )


def estimate_congestion(
    netlist, forest: SteinerForest, kernel: str = "flat"
) -> np.ndarray:
    """Congestion field estimate for the timing evaluator.

    Replaces the sequential pattern+maze probe on the hot path: builds
    a fresh grid, one-shot routes every edge, returns the utilization
    map.  ``kernel="reference"`` runs the per-edge oracle instead.
    """
    from repro.obs import get_telemetry

    tel = get_telemetry()
    grid = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
    with tel.span("groute.flat_estimate", design=netlist.name, kernel=kernel):
        if kernel == "flat":
            if tel.enabled:
                tel.count("groute.estimates_flat")
            pattern_route_flat(grid, forest)
        elif kernel == "reference":
            if tel.enabled:
                tel.count("groute.estimates_reference")
            pattern_route_reference(grid, forest)
        else:
            raise ValueError(f"unknown pattern-route kernel {kernel!r}")
    return grid.utilization_map()


__all__ = [
    "FlatRouteResult",
    "cost_fields",
    "pattern_route_flat",
    "pattern_route_reference",
    "estimate_congestion",
]
