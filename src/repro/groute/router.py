"""Congestion-driven global router.

Routes every two-pin segment of the Steiner forest decomposition on the
GCell grid:

1. **Pattern routing** — both L-shapes are costed; if the cheaper one
   is congested, a family of Z-shapes is tried.
2. **Maze routing** — segments that remain congested (or become
   overflowed after the first pass) are ripped up and rerouted with
   Dijkstra over congestion + history costs, the classic negotiated-
   congestion scheme.
3. **Layer assignment** — see :mod:`repro.groute.layer_assign`.

The router is deterministic: identical forests produce identical
routes, which the accept/revert loop of TSteiner depends on (noise in
the oracle would defeat the gradient signal).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.routegrid.grid import GCellGrid
from repro.steiner.forest import SteinerForest

GridPoint = Tuple[int, int]
SegmentKey = Tuple[int, int]  # (tree index in forest, edge index in tree)


@dataclass
class SegmentRoute:
    """Routed geometry of one tree edge."""

    key: SegmentKey
    net_index: int
    h_length: float  # um of horizontal wire
    v_length: float  # um of vertical wire
    bends: int
    path: List[GridPoint] = field(default_factory=list)
    h_layer: int = 2  # filled by layer assignment
    v_layer: int = 3
    vias: int = 0

    @property
    def length(self) -> float:
        return self.h_length + self.v_length


@dataclass
class RouterConfig:
    """Global router knobs."""

    overflow_penalty: float = 8.0
    zshape_candidates: int = 4
    congestion_threshold: float = 2.5  # pattern cost/edge above which maze kicks in
    ripup_rounds: int = 2
    history_increment: float = 0.5


@dataclass
class GlobalRouteResult:
    """All routed segments plus congestion summary."""

    segments: Dict[SegmentKey, SegmentRoute]
    overflow: float
    max_utilization: float
    total_wirelength: float
    maze_routed: int
    timed_out: bool = False  # budget expired; negotiation degraded/cut short

    def segment(self, key: SegmentKey) -> SegmentRoute:
        return self.segments[key]


class GlobalRouter:
    """Routes a Steiner forest onto a GCell grid."""

    def __init__(self, grid: GCellGrid, config: Optional[RouterConfig] = None) -> None:
        self.grid = grid
        self.config = config or RouterConfig()

    # ------------------------------------------------------------------
    def route(self, forest: SteinerForest, budget=None) -> GlobalRouteResult:
        """Route every tree edge; returns the committed result.

        ``budget`` (a :class:`repro.runtime.Budget`) makes the router
        cooperative: once it expires, remaining segments take their
        cheapest pattern route (no maze search) and the rip-up
        negotiation rounds stop, so the caller always gets a complete —
        if congestion-degraded — routing flagged ``timed_out=True``.
        """
        self.grid.reset_usage()
        timed_out = False
        jobs: List[Tuple[SegmentKey, int, GridPoint, GridPoint, float, float]] = []
        for t_idx, tree in enumerate(forest.trees):
            xy = tree.node_xy()
            for e_idx, (u, v) in enumerate(tree.edges):
                p1 = self.grid.locate(xy[u][0], xy[u][1])
                p2 = self.grid.locate(xy[v][0], xy[v][1])
                dx = abs(float(xy[u][0] - xy[v][0]))
                dy = abs(float(xy[u][1] - xy[v][1]))
                jobs.append(((t_idx, e_idx), tree.net_index, p1, p2, dx, dy))

        # Long segments first: they need contiguous corridors, short
        # ones fit in the gaps (standard global-routing ordering).
        jobs.sort(key=lambda j: -(abs(j[2][0] - j[3][0]) + abs(j[2][1] - j[3][1])))

        segments: Dict[SegmentKey, SegmentRoute] = {}
        deltas: Dict[SegmentKey, Tuple[float, float]] = {}
        maze_count = 0
        for job_idx, (key, net_index, p1, p2, dx, dy) in enumerate(jobs):
            if not timed_out and budget is not None and job_idx % 64 == 0 and budget.expired():
                timed_out = True
            if timed_out:
                # Degraded completion: cheapest pattern, no maze search.
                path, _ = self._best_pattern(p1, p2) if p1 != p2 else ([p1], 0.0)
                used_maze = False
            else:
                path, used_maze = self._route_segment(p1, p2)
            if used_maze:
                maze_count += 1
            self._commit(path)
            deltas[key] = (dx, dy)
            segments[key] = self._measure(key, net_index, p1, p2, dx, dy, path)

        # Negotiation rounds: rip up segments crossing overflowed edges.
        for _ in range(self.config.ripup_rounds):
            if self.grid.overflow() <= 0:
                break
            if budget is not None and budget.expired():
                timed_out = True
                break
            self.grid.bump_history(self.config.history_increment)
            victims = [k for k, s in segments.items() if self._crosses_overflow(s.path)]
            for key in victims:
                seg = segments[key]
                self._uncommit(seg.path)
                path, _ = self._route_segment(seg.path[0], seg.path[-1], force_maze=True)
                maze_count += 1
                self._commit(path)
                dx, dy = deltas[key]
                segments[key] = self._measure(
                    key, seg.net_index, path[0], path[-1], dx, dy, path
                )

        total_wl = sum(s.length for s in segments.values())
        return GlobalRouteResult(
            segments=segments,
            overflow=self.grid.overflow(),
            max_utilization=self.grid.max_utilization(),
            total_wirelength=total_wl,
            maze_routed=maze_count,
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------
    # Per-segment routing
    # ------------------------------------------------------------------
    def _route_segment(
        self, p1: GridPoint, p2: GridPoint, force_maze: bool = False
    ) -> Tuple[List[GridPoint], bool]:
        if p1 == p2:
            return [p1], False
        if force_maze:
            return self._maze(p1, p2), True
        best_path, best_cost = self._best_pattern(p1, p2)
        n_edges = max(len(best_path) - 1, 1)
        if best_cost / n_edges > self.config.congestion_threshold:
            return self._maze(p1, p2), True
        return best_path, False

    def _best_pattern(self, p1: GridPoint, p2: GridPoint) -> Tuple[List[GridPoint], float]:
        candidates: List[List[GridPoint]] = []
        x1, y1 = p1
        x2, y2 = p2
        if x1 == x2 or y1 == y2:
            candidates.append(self._straight(p1, p2))
        else:
            candidates.append(self._l_shape(p1, p2, corner=(x2, y1)))
            candidates.append(self._l_shape(p1, p2, corner=(x1, y2)))
            for mid in self._z_midpoints(p1, p2):
                candidates.append(self._z_shape(p1, p2, mid))
        best_path: List[GridPoint] = candidates[0]
        best_cost = self._path_cost(candidates[0])
        for path in candidates[1:]:
            cost = self._path_cost(path)
            if cost < best_cost:
                best_cost = cost
                best_path = path
        return best_path, best_cost

    def _z_midpoints(self, p1: GridPoint, p2: GridPoint) -> List[int]:
        """Intermediate x-coordinates for HVH Z-shapes."""
        x1, x2 = sorted((p1[0], p2[0]))
        if x2 - x1 < 2:
            return []
        k = min(self.config.zshape_candidates, x2 - x1 - 1)
        return list(np.linspace(x1 + 1, x2 - 1, k).astype(int))

    @staticmethod
    def _straight(p1: GridPoint, p2: GridPoint) -> List[GridPoint]:
        pts = [p1]
        x, y = p1
        sx = int(np.sign(p2[0] - x))
        sy = int(np.sign(p2[1] - y))
        while (x, y) != p2:
            x += sx
            y += sy
            pts.append((x, y))
        return pts

    def _l_shape(self, p1: GridPoint, p2: GridPoint, corner: GridPoint) -> List[GridPoint]:
        leg1 = self._straight(p1, corner)
        leg2 = self._straight(corner, p2)
        return leg1 + leg2[1:]

    def _z_shape(self, p1: GridPoint, p2: GridPoint, mid_x: int) -> List[GridPoint]:
        c1 = (mid_x, p1[1])
        c2 = (mid_x, p2[1])
        part1 = self._straight(p1, c1)
        part2 = self._straight(c1, c2)
        part3 = self._straight(c2, p2)
        return part1 + part2[1:] + part3[1:]

    def _path_cost(self, path: List[GridPoint]) -> float:
        cost = 0.0
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if y1 == y2:
                cost += self.grid.edge_cost("H", min(x1, x2), y1, self.config.overflow_penalty)
            else:
                cost += self.grid.edge_cost("V", x1, min(y1, y2), self.config.overflow_penalty)
        return cost

    def _maze(self, p1: GridPoint, p2: GridPoint) -> List[GridPoint]:
        """Dijkstra on the GCell graph with congestion costs."""
        grid = self.grid
        dist: Dict[GridPoint, float] = {p1: 0.0}
        prev: Dict[GridPoint, GridPoint] = {}
        heap: List[Tuple[float, GridPoint]] = [(0.0, p1)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            if node == p2:
                break
            visited.add(node)
            x, y = node
            neighbours = []
            if x + 1 < grid.nx:
                neighbours.append(((x + 1, y), grid.edge_cost("H", x, y)))
            if x - 1 >= 0:
                neighbours.append(((x - 1, y), grid.edge_cost("H", x - 1, y)))
            if y + 1 < grid.ny:
                neighbours.append(((x, y + 1), grid.edge_cost("V", x, y)))
            if y - 1 >= 0:
                neighbours.append(((x, y - 1), grid.edge_cost("V", x, y - 1)))
            for nxt, cost in neighbours:
                nd = d + cost
                if nd < dist.get(nxt, np.inf):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        if p2 not in prev and p1 != p2:
            # Unreachable should not happen on a full grid; fall back.
            return self._l_shape(p1, p2, corner=(p2[0], p1[1])) if p1[0] != p2[0] and p1[1] != p2[1] else self._straight(p1, p2)
        path = [p2]
        while path[-1] != p1:
            path.append(prev[path[-1]])
        return list(reversed(path))

    # ------------------------------------------------------------------
    # Usage bookkeeping
    # ------------------------------------------------------------------
    def _commit(self, path: List[GridPoint], amount: float = 1.0) -> None:
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if y1 == y2:
                self.grid.add_usage("H", min(x1, x2), y1, amount)
            else:
                self.grid.add_usage("V", x1, min(y1, y2), amount)

    def _uncommit(self, path: List[GridPoint]) -> None:
        self._commit(path, amount=-1.0)

    def _crosses_overflow(self, path: List[GridPoint]) -> bool:
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if y1 == y2:
                i = min(x1, x2)
                if self.grid.use_h[i, y1] > self.grid.cap_h[i, y1]:
                    return True
            else:
                j = min(y1, y2)
                if self.grid.use_v[x1, j] > self.grid.cap_v[x1, j]:
                    return True
        return False

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _measure(
        self,
        key: SegmentKey,
        net_index: int,
        p1: GridPoint,
        p2: GridPoint,
        direct_dx: float,
        direct_dy: float,
        path: List[GridPoint],
    ) -> SegmentRoute:
        """Convert a grid path into physical wire lengths and bends.

        Physical length = the direct Manhattan deltas plus one GCell per
        grid-level detour step beyond the minimum, split by direction.
        """
        h_edges = sum(1 for (x1, y1), (x2, y2) in zip(path, path[1:]) if y1 == y2)
        v_edges = len(path) - 1 - h_edges
        min_h = abs(p1[0] - p2[0])
        min_v = abs(p1[1] - p2[1])
        g = self.grid.gcell
        h_len = direct_dx + max(h_edges - min_h, 0) * g
        v_len = direct_dy + max(v_edges - min_v, 0) * g
        bends = 0
        for a, b, c in zip(path, path[1:], path[2:]):
            turn_1 = (b[0] - a[0], b[1] - a[1])
            turn_2 = (c[0] - b[0], c[1] - b[1])
            if turn_1 != turn_2:
                bends += 1
        if direct_dx > 0 and direct_dy > 0 and bends == 0:
            bends = 1  # sub-GCell L still bends once physically
        return SegmentRoute(
            key=key,
            net_index=net_index,
            h_length=h_len,
            v_length=v_len,
            bends=bends,
            path=path,
        )
