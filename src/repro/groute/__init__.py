"""Global routing substrate (CUGR stand-in).

Pattern routing (L/Z) with congestion-aware costs, negotiation-style
rip-up-and-reroute with history costs, maze routing fallback, and
timing-aware layer assignment.  The output is per-tree-edge routed
geometry that the sign-off STA engine converts to RC.
"""

from repro.groute.router import GlobalRouter, GlobalRouteResult, RouterConfig, SegmentRoute
from repro.groute.flat_route import (
    FlatRouteResult,
    estimate_congestion,
    pattern_route_flat,
    pattern_route_reference,
)
from repro.groute.layer_assign import assign_layers

__all__ = [
    "GlobalRouter",
    "GlobalRouteResult",
    "RouterConfig",
    "SegmentRoute",
    "FlatRouteResult",
    "estimate_congestion",
    "pattern_route_flat",
    "pattern_route_reference",
    "assign_layers",
]
