"""Timing-aware layer assignment.

Assigns each routed segment's horizontal wire to one of the H layers
and its vertical wire to one of the V layers.  The policy mirrors
timing-driven layer assignment (CATALYST / TILA-style intuition at
global-routing granularity):

* long segments are promoted to upper (low-resistance) layers, because
  wire RC delay grows quadratically with length on a resistive layer;
* per-layer capacity is respected per GCell *approximately*: a running
  per-layer usage counter demotes segments when an upper layer fills.

Via counts: one via per bend, plus the via stack from the pin layer
(met1) up to the assigned layer at both ends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult, SegmentRoute
from repro.pdk.technology import Technology


def assign_layers(
    result: GlobalRouteResult,
    technology: Technology,
    grid_area_gcells: int,
    promote_quantiles: Tuple[float, float] = (0.55, 0.85),
) -> None:
    """Assign layers to all segments in ``result`` (mutates them).

    ``grid_area_gcells`` scales the per-layer capacity budget; the
    promotion thresholds are length quantiles computed over this
    design's segments, so every design uses its full stack.
    """
    h_layers = [l.index for l in technology.horizontal_layers()]
    v_layers = [l.index for l in technology.vertical_layers()]
    if not h_layers or not v_layers:
        raise ValueError("technology must have both H and V layers")

    lengths = np.array([s.length for s in result.segments.values()])
    if lengths.size == 0:
        return
    q_mid, q_high = np.quantile(lengths, promote_quantiles[0]), np.quantile(
        lengths, promote_quantiles[1]
    )

    # Rough per-tier budget: upper layers hold fewer, longer wires.
    budget = {
        "mid": grid_area_gcells * 4.0,
        "high": grid_area_gcells * 1.5,
    }
    used = {"mid": 0.0, "high": 0.0}

    def pick(layers: List[int], seg_len: float) -> int:
        """Choose a layer index from ``layers`` (sorted low to high)."""
        if len(layers) == 1:
            return layers[0]
        tier = 0
        if seg_len >= q_high and len(layers) >= 3 and used["high"] < budget["high"]:
            tier = 2
            used["high"] += seg_len / max(technology.gcell_size, 1e-9)
        elif seg_len >= q_mid and used["mid"] < budget["mid"]:
            tier = 1
            used["mid"] += seg_len / max(technology.gcell_size, 1e-9)
        tier = min(tier, len(layers) - 1)
        return layers[tier]

    # Deterministic order: longest first, matching routing order.
    for key in sorted(result.segments, key=lambda k: -result.segments[k].length):
        seg = result.segments[key]
        seg.h_layer = pick(h_layers, seg.length)
        seg.v_layer = pick(v_layers, seg.length)
        seg.vias = _count_vias(seg, technology)


def _count_vias(seg: SegmentRoute, technology: Technology) -> int:
    """Vias: bends switch H/V layer; endpoints drop to the pin layer."""
    layer_gap = abs(seg.h_layer - seg.v_layer)
    bend_vias = seg.bends * max(layer_gap, 1)
    # Access vias from met1 (pins) up to whichever layer each end uses.
    access = 0
    if seg.h_length > 0:
        access += seg.h_layer  # met1 is index 0
    if seg.v_length > 0:
        access += seg.v_layer
    if seg.h_length == 0 and seg.v_length == 0:
        access = 0
    return bend_vias + access


def segment_rc(
    seg: SegmentRoute, technology: Technology
) -> Tuple[float, float]:
    """(resistance, capacitance) of a routed segment including vias."""
    r_h, c_h = technology.wire_rc(seg.h_layer, seg.h_length)
    r_v, c_v = technology.wire_rc(seg.v_layer, seg.v_length)
    via_r = 0.0
    via_c = 0.0
    if seg.vias:
        # Use the via between the two assigned layers as representative.
        low, high = sorted((seg.h_layer, seg.v_layer))
        if low == high:
            high = min(high + 1, technology.num_layers - 1)
        per_via_r = technology.via_stack_resistance(low, high) / max(high - low, 1)
        via_r = per_via_r * seg.vias
        via_c = technology.via_between(low, min(low + 1, technology.num_layers - 1)).capacitance * seg.vias if low < technology.num_layers - 1 else 0.0
    return r_h + r_v + via_r, c_h + c_v + via_c
