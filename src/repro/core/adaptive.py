"""Adaptive stepsize scheme (Eq. (8)-(9) of the paper).

Designs span four orders of magnitude in size and gradient scale; a
fixed stepsize that works for ``spm`` would be noise on
``jpeg_encoder``.  The paper's scheme probes the gradient field once:

1. evaluate the gradient ``g`` at the initial coordinates ``X``;
2. take the probe move ``X' = X + alpha * g`` (Eq. (8));
3. evaluate ``g'`` at ``X'``;
4. return ``theta = ||X - X'||_2 / ||g - g'||_2`` (Eq. (9)),

a Barzilai-Borwein-style secant estimate of the inverse local
curvature, automatically matched to each design's scale.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

GradientFn = Callable[[np.ndarray], np.ndarray]


def adaptive_theta(
    coords: np.ndarray,
    gradient_fn: GradientFn,
    alpha: float = 5.0,
    fallback: float = 1.0,
    max_theta: float = 1e4,
) -> float:
    """Compute the adaptive stepsize for one design.

    ``gradient_fn`` maps a flat (S, 2) coordinate matrix to the penalty
    gradient of the same shape.  ``alpha`` is the probe scale
    (paper default 5.0).  Degenerate cases (zero gradient, identical
    probe gradient) fall back to ``fallback``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.size == 0:
        return fallback
    g0 = np.asarray(gradient_fn(coords), dtype=np.float64)
    # A zero or non-finite probe gradient (dead model, NaN poisoning)
    # must yield the fallback stepsize, never propagate into PaperSO.
    if g0.shape != coords.shape or not np.isfinite(g0).all():
        return fallback
    g0_norm = float(np.linalg.norm(g0))
    if not np.isfinite(g0_norm) or g0_norm < 1e-15:
        return fallback
    probe = coords + alpha * g0  # Eq. (8)
    g1 = np.asarray(gradient_fn(probe), dtype=np.float64)
    if g1.shape != coords.shape or not np.isfinite(g1).all():
        return fallback
    dg_norm = float(np.linalg.norm(g0 - g1))
    dx_norm = float(np.linalg.norm(coords - probe))  # == alpha * g0_norm
    if not np.isfinite(dg_norm) or dg_norm < 1e-15:
        return fallback
    theta = dx_norm / dg_norm  # Eq. (9)
    if not np.isfinite(theta) or theta <= 0:
        return fallback
    return float(min(theta, max_theta))
