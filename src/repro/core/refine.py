"""Concurrent Steiner point refinement — Algorithm 1 of the paper.

The loop mirrors the pseudocode line for line:

* initial evaluated WNS/TNS become ``init_*`` and ``best_*`` (lines 1-2);
* the adaptive stepsize seeds the stochastic optimizer (lines 3-5);
* each iteration applies the Eq. (7) update to all Steiner points
  *concurrently* (line 7), evaluates the candidate with the frozen
  GNN evaluator (line 8), and accepts it when either evaluated metric
  improves, reverting otherwise (lines 9-14);
* the loop breaks at ``N`` iterations (line 16) or when either metric
  has improved by the converge ratio ``mu`` (line 19);
* from iteration 5 onward the penalty weights escalate by 1 % per
  iteration (Section IV-A), sharpening the objective once the easy
  gains are taken;
* every candidate is clamped to the routing-grid boundary, and the
  per-iteration displacement is capped by the GCell dimensions
  ("we constrain the largest moving distance according to the width
  and length of the global routing grid graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.optim import AccumulatingSO, PaperSO
from repro.autodiff.tensor import Tensor
from repro.core.adaptive import adaptive_theta
from repro.core.penalty import PenaltyConfig, hard_metrics, smoothed_penalty
from repro.obs import SCHEMA_VERSION, get_telemetry
from repro.runtime import (
    Budget,
    BudgetExceeded,
    CheckpointError,
    ValidatorError,
    atomic_save_npz,
    check_finite,
    load_npz,
    retry_call,
    validate_policy,
)
from repro.timing_model.graph import TimingGraph
from repro.timing_model.model import TimingEvaluator


@dataclass
class RefinementConfig:
    """Algorithm 1 hyper-parameters (paper Section IV-A defaults)."""

    max_iterations: int = 50  # N
    converge_ratio: float = 0.1  # mu
    alpha: float = 5.0  # probe scale for adaptive theta
    beta1: float = 0.9
    beta2: float = 0.999
    # Eq. (7)'s epsilon.  With per-step moments the update degenerates
    # to theta*(1-b1)/sqrt(1-b2)*sign(g) wherever |g| >> eps, moving
    # *every* point the same distance regardless of how critical it is.
    # A larger eps keeps points with tiny gradients nearly still while
    # critical points take full steps — essential for the concurrent
    # update to be accepted by the evaluator.
    eps: float = 1e-2
    penalty: PenaltyConfig = field(default_factory=PenaltyConfig)
    escalation_start: int = 5
    escalation_rate: float = 1.01  # +1 % per iteration
    move_limit_gcells: float = 1.0  # per-iteration displacement cap
    optimizer: str = "paper"  # "paper" (Eq. 7) or "adam" (ablation)
    # Backtracking is an addition over the paper's pseudocode: a
    # rejected candidate leaves coordinates unchanged, so without it
    # Algorithm 1 regenerates the same rejected move forever once theta
    # overshoots.  Shrinking theta on rejection restores progress while
    # preserving the accept/revert semantics.  Set to 1.0 to disable
    # (the ablation bench measures the difference).
    backtrack: float = 0.7
    min_theta: float = 1e-4
    expand_on_accept: float = 1.05  # gentle re-growth, capped at theta0
    # Validation mode.  "evaluator" is the paper's literal Algorithm 1:
    # acceptance judged solely by the GNN evaluator.  "hybrid" keeps
    # evaluator-driven gradients and per-step acceptance but, every
    # ``validate_every`` accepted steps, re-times the candidate with a
    # fast routing+STA probe and reverts if the *real* metrics
    # regressed — guarding against the evaluator being over-optimized
    # into regions where its own error masquerades as improvement.
    acceptance: str = "hybrid"
    validate_every: int = 5
    # Validation acceptance rule: "penalty" scores real metrics with the
    # Eq. (6) weights (|lambda_w|*WNS + |lambda_t|*TNS must improve), so a
    # WNS gain cannot silently sacrifice an outsized amount of TNS;
    # "either" mirrors Algorithm 1's line-9 OR-rule.
    validation_rule: str = "penalty"
    # Fraction of Steiner points moved per iteration, chosen by gradient
    # magnitude (criticality).  1.0 reproduces Eq. (7)'s move-everything
    # semantics; smaller fractions concentrate the move on critical
    # points, which raises the real-acceptance rate of validated steps.
    move_fraction: float = 1.0
    # Proposal schedule for hybrid mode: after each validated revert the
    # loop rotates to the next (move_fraction, theta_scale) profile, so
    # rejected dense moves are followed by sparser, smaller, more
    # surgical candidates — mirroring how greedy per-point search finds
    # the improving moves dense concurrent steps miss.
    proposal_schedule: Tuple[Tuple[float, float], ...] = (
        (1.0, 1.0),
        (0.3, 0.5),
        (0.08, 0.3),
        (0.02, 0.15),
    )
    # Oracle-polish stage (hybrid mode only): after the concurrent
    # gradient phase, a budgeted per-point local search moves the
    # highest-gradient Steiner points one at a time along their negative
    # gradient direction, accepting only oracle-validated improvements.
    # The evaluator supplies criticality ranking and direction; the
    # oracle guarantees the harvest is real.  Set to 0 to disable
    # (recovering the pure concurrent loop for the ablation bench).
    polish_probes: int = 48
    polish_top_k: int = 24
    polish_steps: Tuple[float, ...] = (0.5, 1.0, 2.0)  # in GCell units
    # ---- resilience (docs/RESILIENCE.md) ----
    # Non-finite gradients / arrivals / candidate coordinates either
    # abort the run ("raise", a NumericalError) or skip the poisoned
    # step and shrink theta ("sanitize") so one bad step cannot discard
    # the whole refinement.
    nonfinite_policy: str = "raise"
    # A failing oracle probe is retried with backoff; once retries are
    # exhausted the loop degrades to evaluator-only acceptance
    # (RefinementResult.degraded) instead of crashing Algorithm 1.
    validator_retries: int = 2
    validator_backoff: float = 0.0  # seconds before first retry, doubles
    # ---- MCMM scenario merging (docs/MCMM.md) ----
    # Temperature of the worst-over-scenarios LSE that merges the
    # per-scenario Eq. (6) penalties into one gradient objective.
    mcmm_gamma: float = 10.0
    # Dominance pruning: a scenario whose WNS exceeds the merged WNS by
    # more than ``mcmm_dominance_margin`` (ns) for ``mcmm_prune_after``
    # consecutive accepted iterations is dropped from the merged
    # gradient; every ``mcmm_recheck_every`` gradient evaluations all
    # pruned scenarios are restored for a full re-check.
    mcmm_prune_after: int = 3
    mcmm_recheck_every: int = 10
    mcmm_dominance_margin: float = 0.05


@dataclass
class RefinementResult:
    """Outcome of one refinement run."""

    coords: np.ndarray  # best flat Steiner coordinates
    init_wns: float
    init_tns: float
    best_wns: float
    best_tns: float
    iterations: int
    theta: float
    accepted: int
    history: List[Tuple[float, float]] = field(default_factory=list)
    validations: int = 0  # oracle probes run (hybrid mode)
    validated_reverts: int = 0  # probes that rejected the candidate
    timed_out: bool = False  # a budget expired; best-so-far returned
    degraded: bool = False  # validator failed; evaluator-only acceptance
    skipped_steps: int = 0  # steps dropped by the non-finite guard
    resumed: bool = False  # run continued from a checkpoint

    @property
    def wns_improvement(self) -> float:
        """Relative predicted-WNS improvement (positive is better)."""
        if abs(self.init_wns) < 1e-12:
            return 0.0
        return (self.init_wns - self.best_wns) / self.init_wns

    @property
    def tns_improvement(self) -> float:
        if abs(self.init_tns) < 1e-12:
            return 0.0
        return (self.init_tns - self.best_tns) / self.init_tns


class _Oracle:
    """Caches the evaluator forward/backward machinery for one design.

    Dispatches on ``model.kernel`` (mirroring ``STAEngine``): "tape"
    replays the compiled instruction tape cached on the graph's
    topology cache (falling back to closures when the graph cannot be
    compiled), "closure" always runs the reference engine, and
    "tape-parity" runs both and raises on any bitwise divergence.
    """

    def __init__(
        self,
        model: TimingEvaluator,
        graph: TimingGraph,
        telemetry=None,
        gamma: Optional[float] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.endpoints = graph.endpoints
        self.required = graph.required
        self.telemetry = telemetry
        self.gamma = float(gamma) if gamma is not None else PenaltyConfig().gamma
        self.kernel = getattr(model, "kernel", "closure")

    def _tel(self):
        return self.telemetry if self.telemetry is not None else get_telemetry()

    def _compiled(self):
        from repro.timing_model.compiled import get_compiled_objective

        return get_compiled_objective(
            self.model, self.graph, self.gamma, telemetry=self._tel()
        )

    def gradient(
        self, coords: np.ndarray, pcfg: PenaltyConfig
    ) -> Tuple[np.ndarray, float, float, float]:
        """(dP/dcoords, evaluated WNS, evaluated TNS, penalty) at ``coords``."""
        obj = self._compiled() if self.kernel in ("tape", "tape-parity") else None
        if obj is None:
            return self._closure_gradient(coords, pcfg)
        grad, arrival, penalty = obj.gradient(coords, pcfg)
        self._tel().count("evaluator.backward")
        wns, tns, _ = hard_metrics(arrival, self.endpoints, self.required)
        if self.kernel == "tape-parity":
            from repro.timing_model.compiled import assert_bitwise_equal

            ref = self._closure_gradient(coords, pcfg)
            assert_bitwise_equal("gradient", grad, ref[0])
            assert_bitwise_equal("wns", wns, ref[1])
            assert_bitwise_equal("tns", tns, ref[2])
            assert_bitwise_equal("penalty", penalty, ref[3])
        return grad, wns, tns, float(penalty)

    def _closure_gradient(
        self, coords: np.ndarray, pcfg: PenaltyConfig
    ) -> Tuple[np.ndarray, float, float, float]:
        t_coords = Tensor(coords, requires_grad=True)
        out = self.model(self.graph, t_coords)
        penalty, _, _ = smoothed_penalty(out["arrival"], self.endpoints, self.required, pcfg)
        penalty.backward()
        self._tel().count("evaluator.backward")
        grad = t_coords.grad if t_coords.grad is not None else np.zeros_like(coords)
        wns, tns, _ = hard_metrics(out["arrival"].numpy(), self.endpoints, self.required)
        return np.asarray(grad, dtype=np.float64), wns, tns, float(penalty.item())

    def evaluate(self, coords: np.ndarray) -> Tuple[float, float]:
        obj = self._compiled() if self.kernel in ("tape", "tape-parity") else None
        if obj is None:
            return self._closure_evaluate(coords)
        arrival = obj.evaluate(coords)
        wns, tns, _ = hard_metrics(arrival, self.endpoints, self.required)
        if self.kernel == "tape-parity":
            from repro.timing_model.compiled import assert_bitwise_equal

            ref = self._closure_evaluate(coords)
            assert_bitwise_equal("eval_wns", wns, ref[0])
            assert_bitwise_equal("eval_tns", tns, ref[1])
        return wns, tns

    def _closure_evaluate(self, coords: np.ndarray) -> Tuple[float, float]:
        arrival = self.model.predict_arrivals(self.graph, coords)
        wns, tns, _ = hard_metrics(arrival, self.endpoints, self.required)
        return wns, tns

    def invalidate(self) -> None:
        """Drop cached static evaluator tensors bound to ``self.graph``."""
        static = getattr(self.graph, "_static", None)
        if static is not None:
            static.clear()


class _ScenarioOracle:
    """MCMM oracle: merged-over-scenarios metrics with the `_Oracle`
    interface (docs/MCMM.md).

    ``gradient``/``evaluate`` return MERGED (worst-WNS, summed-TNS)
    metrics, so the Algorithm 1 accept/revert rule operates on the
    sign-off verdict across all scenarios.  The gradient descends the
    LSE-merged penalty over the dominance pruner's *active* scenarios;
    hard metrics always score every scenario.  Runs the closure
    autodiff engine only (the compiled tape is single-scenario).
    """

    def __init__(
        self,
        model: TimingEvaluator,
        graph: TimingGraph,
        scenarios,
        cfg: "RefinementConfig",
        telemetry=None,
    ) -> None:
        from repro.mcmm.penalty import ScenarioPenalty
        from repro.mcmm.prune import DominancePruner

        self.model = model
        self.graph = graph
        self.scenarios = scenarios
        self.telemetry = telemetry
        self.penalty = ScenarioPenalty(graph, scenarios, mcmm_gamma=cfg.mcmm_gamma)
        self.pruner = DominancePruner(
            scenarios.names,
            prune_after=cfg.mcmm_prune_after,
            recheck_every=cfg.mcmm_recheck_every,
            margin=cfg.mcmm_dominance_margin,
            telemetry=telemetry,
        )
        self.last_wns_vector: Optional[np.ndarray] = None

    def _tel(self):
        return self.telemetry if self.telemetry is not None else get_telemetry()

    def gradient(
        self, coords: np.ndarray, pcfg: PenaltyConfig
    ) -> Tuple[np.ndarray, float, float, float]:
        self.pruner.tick()
        t_coords = Tensor(coords, requires_grad=True)
        out = self.model(self.graph, t_coords)
        merged = self.penalty.merged_penalty(
            out["arrival"], pcfg, active=self.pruner.active
        )
        merged.backward()
        self._tel().count("evaluator.backward")
        grad = t_coords.grad if t_coords.grad is not None else np.zeros_like(coords)
        per_wns, _, m_wns, m_tns = self.penalty.hard_all(out["arrival"].numpy())
        self.last_wns_vector = per_wns
        return np.asarray(grad, dtype=np.float64), m_wns, m_tns, float(merged.item())

    def evaluate(self, coords: np.ndarray) -> Tuple[float, float]:
        arrival = self.model.predict_arrivals(self.graph, coords)
        per_wns, _, m_wns, m_tns = self.penalty.hard_all(arrival)
        self.last_wns_vector = per_wns
        return m_wns, m_tns

    def on_accept(self) -> None:
        """Feed the accepted candidate's per-scenario WNS to the pruner."""
        if self.last_wns_vector is not None:
            self.pruner.observe(self.last_wns_vector)

    def invalidate(self) -> None:
        static = getattr(self.graph, "_static", None)
        if static is not None:
            static.clear()


Validator = Callable[[np.ndarray], Tuple[float, float]]


def _reset_validator(validator: Optional[Validator]) -> None:
    """Drop any incremental state a stateful validator carries.

    Incremental-STA-backed validators (see ``TSteiner._make_validator``)
    expose a ``reset`` attribute; after a checkpoint restore or a
    validated revert the cached timing state may describe coordinates
    the trajectory has abandoned, so it must be rebuilt from scratch on
    the next probe.  Plain function validators have no such attribute
    and are left alone.
    """
    reset = getattr(validator, "reset", None)
    if callable(reset):
        reset()


_REFINE_CKPT_KIND = "refine-v1"


def refine(
    model: TimingEvaluator,
    graph: TimingGraph,
    initial_coords: np.ndarray,
    config: Optional[RefinementConfig] = None,
    clamp_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    validator: Optional[Validator] = None,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    telemetry=None,
    scenarios=None,
) -> RefinementResult:
    """Run Algorithm 1; returns the best coordinates found.

    ``clamp_fn`` clamps candidate coordinates to the grid boundary
    (typically ``forest.clamp_coords``); identity when omitted.
    ``validator`` maps coordinates to real (WNS, TNS) — required for
    ``acceptance="hybrid"``, ignored in ``"evaluator"`` mode.

    MCMM (docs/MCMM.md): ``scenarios`` (a ``repro.mcmm.ScenarioSet``)
    switches acceptance, gradients and reported metrics to the merged
    worst-over-scenarios verdict; per-scenario WNS feeds dominance
    pruning.  ``None`` or a one-element neutral set runs the original
    single-scenario path bitwise-unchanged.  An MCMM validator should
    return merged (WNS, TNS) — see ``TSteiner._make_validator``.

    Resilience (docs/RESILIENCE.md): an expired ``budget`` returns the
    best-so-far result flagged ``timed_out=True``; ``checkpoint_path``
    snapshots the full loop state atomically every ``checkpoint_every``
    iterations, and ``resume=True`` continues from such a snapshot
    with byte-identical results to an uninterrupted run.

    Observability (docs/OBSERVABILITY.md): ``telemetry`` records one
    ``refine_iter`` event per iteration (WNS/TNS, smoothed penalty,
    stepsize, penalty weights, accept/revert, probe and checkpoint
    counts) bracketed by ``refine_start``/``refine_end``; defaults to
    the process-global telemetry (NULL — observation-free).
    """
    from repro.steiner.forest import SteinerForest

    tel = telemetry if telemetry is not None else get_telemetry()
    cfg = config or RefinementConfig()
    policy = validate_policy(cfg.nonfinite_policy)
    coords = np.asarray(initial_coords, dtype=np.float64).reshape(-1, 2).copy()
    if coords.shape[0] != graph.num_steiner:
        raise ValueError(
            f"coordinate count {coords.shape[0]} does not match the graph's "
            f"{graph.num_steiner} Steiner nodes"
        )
    clamp = clamp_fn or (lambda c: c)
    mcmm = scenarios is not None and not scenarios.is_single_neutral()
    if mcmm:
        oracle = _ScenarioOracle(model, graph, scenarios, cfg, telemetry=tel)
    else:
        oracle = _Oracle(model, graph, telemetry=tel, gamma=cfg.penalty.gamma)
    use_validator = cfg.acceptance == "hybrid" and validator is not None
    degraded = False
    skipped_steps = 0
    timed_out = False

    if coords.size == 0:
        wns, tns = oracle.evaluate(coords)
        return RefinementResult(coords, wns, tns, wns, tns, 0, 0.0, 0)

    def call_validator(c: np.ndarray) -> Optional[Tuple[float, float]]:
        """Probe the real flow with retry; ``None`` == degrade, don't crash."""
        nonlocal degraded, use_validator
        tel.count("refine.validator_probes")
        if budget is not None:
            budget.spend_probe()

        def probe(arr: np.ndarray) -> Tuple[float, float]:
            rw, rt = validator(arr)
            if not (np.isfinite(rw) and np.isfinite(rt)):
                raise ValidatorError(f"validator returned non-finite metrics ({rw}, {rt})")
            return float(rw), float(rt)

        try:
            return retry_call(
                probe,
                c,
                attempts=cfg.validator_retries + 1,
                backoff=cfg.validator_backoff,
            )
        except BudgetExceeded:
            raise
        except Exception as exc:
            degraded = True
            use_validator = False
            tel.event("validator_degraded", error=f"{type(exc).__name__}: {exc}")
            return None

    pcfg = cfg.penalty

    ckpt = None
    if resume and checkpoint_path is not None and Path(checkpoint_path).exists():
        ckpt = load_npz(checkpoint_path)
        meta = ckpt.get("meta") or {}
        if meta.get("kind") != _REFINE_CKPT_KIND:
            raise CheckpointError(f"{checkpoint_path} is not a refinement checkpoint")
        if np.asarray(ckpt["coords"]).shape != coords.shape:
            raise CheckpointError(
                f"checkpoint coords shape {np.asarray(ckpt['coords']).shape} does "
                f"not match design shape {coords.shape}"
            )
        # Scenario state must survive resume exactly: a snapshot taken
        # under one scenario set cannot seed a run under another.
        ckpt_scen = meta.get("mcmm_scenarios")
        run_scen = list(scenarios.names) if mcmm else None
        if ckpt_scen != run_scen:
            raise CheckpointError(
                f"checkpoint scenario set {ckpt_scen} does not match this "
                f"run's {run_scen}"
            )
        # Stitch this trace onto the interrupted run's trajectory: the
        # snapshot carries the run-id of the telemetry that wrote it.
        tel.event(
            "checkpoint_resume",
            what="refine",
            parent_run=meta.get("telemetry_run"),
            parent_schema=meta.get("telemetry_schema"),
            iteration=int(ckpt["t"]),
        )

    if ckpt is None:
        # Lines 1-2: initial evaluated metrics.
        init_wns, init_tns = oracle.evaluate(coords)
        best_wns, best_tns = init_wns, init_tns

        # Line 3: adaptive stepsize (Eq. 8-9).
        theta = adaptive_theta(
            coords,
            lambda c: oracle.gradient(clamp(c), pcfg)[0],
            alpha=cfg.alpha,
            fallback=graph.netlist.technology.gcell_size * 0.1,
        )
    else:
        init_wns = float(ckpt["init_wns"])
        init_tns = float(ckpt["init_tns"])
        best_wns = float(ckpt["best_wns"])
        best_tns = float(ckpt["best_tns"])
        theta = float(ckpt["theta0"])

    # Line 5: optimizer.
    if cfg.optimizer == "paper":
        so = PaperSO(theta, cfg.beta1, cfg.beta2, cfg.eps)
    elif cfg.optimizer == "adam":
        so = AccumulatingSO(theta, cfg.beta1, cfg.beta2, cfg.eps)
    else:
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    move_cap = cfg.move_limit_gcells * graph.netlist.technology.gcell_size
    best_coords = coords.copy()
    history: List[Tuple[float, float]] = []
    accepted = 0
    t = 0
    checkpoint_saves = 0

    # Hybrid-mode real anchors.
    validations = 0
    validated_reverts = 0
    pending_accepts = 0
    real_wns = real_tns = None
    real_coords = coords.copy()
    prop_idx = 0
    schedule: Sequence[Tuple[float, float]] = cfg.proposal_schedule or ((cfg.move_fraction, 1.0),)

    if ckpt is not None:
        coords = np.array(ckpt["coords"], dtype=np.float64, copy=True)
        best_coords = np.array(ckpt["best_coords"], dtype=np.float64, copy=True)
        real_coords = np.array(ckpt["real_coords"], dtype=np.float64, copy=True)
        history = [(float(w), float(n)) for w, n in np.asarray(ckpt["history"]).reshape(-1, 2)]
        t = int(ckpt["t"])
        accepted = int(ckpt["accepted"])
        pending_accepts = int(ckpt["pending_accepts"])
        prop_idx = int(ckpt["prop_idx"])
        validations = int(ckpt["validations"])
        validated_reverts = int(ckpt["validated_reverts"])
        skipped_steps = int(ckpt["skipped_steps"])
        degraded = bool(ckpt["degraded"])
        use_validator = bool(ckpt["validator_on"]) and validator is not None
        if bool(ckpt["has_real"]):
            real_wns = float(ckpt["real_wns"])
            real_tns = float(ckpt["real_tns"])
        pcfg = PenaltyConfig(
            lambda_wns=float(ckpt["lambda_wns"]),
            lambda_tns=float(ckpt["lambda_tns"]),
            gamma=float(ckpt["gamma"]),
        )
        so.theta = float(ckpt["so_theta"])
        if isinstance(so, AccumulatingSO) and "so_m" in ckpt:
            so._m = np.array(ckpt["so_m"], dtype=np.float64, copy=True)
            so._v = np.array(ckpt["so_v"], dtype=np.float64, copy=True)
            so._t = int(ckpt["so_t"])
        if mcmm:
            oracle.pruner.load_state_arrays(ckpt)
        # A resumed run may hand us a live oracle/validator from the
        # interrupted attempt whose caches describe coordinates the
        # restored trajectory never visited — drop them.
        oracle.invalidate()
        _reset_validator(validator)
    elif use_validator:
        anchor = call_validator(coords)
        validations += 1
        if anchor is not None:
            real_wns, real_tns = anchor

    if tel.enabled:
        tel.event(
            "refine_start",
            init_wns=init_wns,
            init_tns=init_tns,
            theta0=theta,
            points=int(coords.shape[0]),
            max_iterations=cfg.max_iterations,
            acceptance=cfg.acceptance,
            resumed=ckpt is not None,
        )

    def save_checkpoint() -> None:
        nonlocal checkpoint_saves
        arrays = {
            "coords": coords,
            "best_coords": best_coords,
            "real_coords": real_coords,
            "history": np.asarray(history, dtype=np.float64).reshape(-1, 2),
            "t": t,
            "accepted": accepted,
            "pending_accepts": pending_accepts,
            "prop_idx": prop_idx,
            "validations": validations,
            "validated_reverts": validated_reverts,
            "skipped_steps": skipped_steps,
            "best_wns": best_wns,
            "best_tns": best_tns,
            "init_wns": init_wns,
            "init_tns": init_tns,
            "theta0": theta,
            "so_theta": so.theta,
            "lambda_wns": pcfg.lambda_wns,
            "lambda_tns": pcfg.lambda_tns,
            "gamma": pcfg.gamma,
            "degraded": degraded,
            "validator_on": use_validator,
            "has_real": real_wns is not None,
            "real_wns": float("nan") if real_wns is None else real_wns,
            "real_tns": float("nan") if real_tns is None else real_tns,
        }
        if isinstance(so, AccumulatingSO) and so._m is not None:
            arrays["so_m"] = so._m
            arrays["so_v"] = so._v
            arrays["so_t"] = so._t
        meta = {
            "kind": _REFINE_CKPT_KIND,
            "telemetry_run": tel.run_id,
            "telemetry_schema": SCHEMA_VERSION,
        }
        if mcmm:
            arrays.update(oracle.pruner.state_arrays())
            meta["mcmm_scenarios"] = list(scenarios.names)
        atomic_save_npz(checkpoint_path, arrays, meta=meta)
        checkpoint_saves += 1
        tel.count("refine.checkpoint_saves")

    def validate_candidate() -> None:
        """Probe the real flow; keep or revert to the last real anchor.

        Candidates are validated *post-rounding* so the probe times the
        byte-identical geometry the production flow will route — the
        0.01 um snap can flip GCell assignments, so validating the
        unrounded point would anchor on a different route.

        A probe that keeps failing after retries flips the run into
        degraded evaluator-only mode: the pending candidate stays
        accepted on the evaluator's word, and no further probes run.
        """
        nonlocal real_wns, real_tns, real_coords, coords, validations
        nonlocal validated_reverts, pending_accepts, best_wns, best_tns, best_coords
        nonlocal prop_idx

        validations += 1
        rounded = SteinerForest.round_array(coords)
        probed = call_validator(rounded)
        if probed is None:  # degraded — stop validating, keep refining
            pending_accepts = 0
            return
        rw, rt = probed
        if cfg.validation_rule == "penalty":
            w_w = abs(cfg.penalty.lambda_wns)
            w_t = abs(cfg.penalty.lambda_tns)
            improved = (w_w * rw + w_t * rt) > (w_w * real_wns + w_t * real_tns)
        else:
            improved = rw > real_wns or rt > real_tns
        if improved:
            if cfg.validation_rule == "penalty":
                # Anchor metrics must describe the anchor coordinates.
                real_wns, real_tns = rw, rt
            else:
                real_wns = max(real_wns, rw)
                real_tns = max(real_tns, rt)
            real_coords = rounded.copy()
        else:
            validated_reverts += 1
            coords = real_coords.copy()
            best_coords = real_coords.copy()
            # The validator's incremental state now describes the
            # rejected candidate; force a clean rebuild at the anchor.
            _reset_validator(validator)
            # Reset the predicted-metric baseline to the anchor, else
            # the inflated rejected prediction blocks all future accepts.
            best_wns, best_tns = oracle.evaluate(coords)
            # Rotate to the next proposal profile: sparser and smaller.
            prop_idx += 1
            so.theta = max(theta * schedule[prop_idx % len(schedule)][1], cfg.min_theta)
        pending_accepts = 0

    while True:
        # Line 16: iteration cap.
        if t >= cfg.max_iterations:
            break
        # Line 19: auto-convergence at ratio mu.
        if _converged(init_wns, best_wns, cfg.converge_ratio) or _converged(
            init_tns, best_tns, cfg.converge_ratio
        ):
            break
        # Cooperative budget check: wind down with the best-so-far.
        if budget is not None and budget.expired():
            timed_out = True
            tel.event("budget_expired", where="refine", iteration=t)
            break

        # Line 7: concurrent update of all Steiner points.
        lam_w, lam_t = pcfg.lambda_wns, pcfg.lambda_tns
        grad, _, _, penalty_value = oracle.gradient(coords, pcfg)
        step_accepted = False
        step_skipped = False
        candidate = None
        if check_finite(grad, "refinement gradient", policy):
            candidate = so.update(coords, grad)
            step = np.clip(candidate - coords, -move_cap, move_cap)
            fraction = cfg.move_fraction
            if use_validator:
                fraction = min(fraction, schedule[prop_idx % len(schedule)][0])
            if fraction < 1.0 and coords.shape[0] > 4:
                # Concentrate the move on the most critical points.
                magnitude = np.abs(grad).sum(axis=1)
                k = max(1, int(np.ceil(coords.shape[0] * fraction)))
                threshold = np.partition(magnitude, -k)[-k]
                step = step * (magnitude >= threshold)[:, None]
            candidate = clamp(coords + step)
            if not check_finite(candidate, "candidate coordinates", policy):
                candidate = None

        if candidate is None:
            # Poisoned step under the sanitize policy: skip it, shrink
            # theta so the next proposal differs, keep the run alive.
            skipped_steps += 1
            step_skipped = True
            so.theta = max(so.theta * cfg.backtrack, cfg.min_theta)
            history.append((best_wns, best_tns))
        else:
            # Line 8: evaluate the temporary solution.
            wns, tns = oracle.evaluate(candidate)
            if not check_finite((wns, tns), "evaluated metrics", policy):
                skipped_steps += 1
                step_skipped = True
                so.theta = max(so.theta * cfg.backtrack, cfg.min_theta)
                history.append((best_wns, best_tns))
            else:
                history.append((wns, tns))

                # Lines 9-14: accept if either metric improved, else revert.
                if wns > best_wns or tns > best_tns:
                    best_wns = max(best_wns, wns)
                    best_tns = max(best_tns, tns)
                    coords = candidate
                    best_coords = candidate.copy()
                    accepted += 1
                    step_accepted = True
                    pending_accepts += 1
                    if mcmm:
                        # Accepted candidate's per-scenario WNS drives
                        # dominance pruning of the merged gradient.
                        oracle.on_accept()
                    so.theta = min(so.theta * cfg.expand_on_accept, theta)
                    if use_validator and pending_accepts >= cfg.validate_every:
                        validate_candidate()
                else:
                    # Revert; shrink the stepsize so the next candidate differs.
                    so.theta = max(so.theta * cfg.backtrack, cfg.min_theta)

        t += 1
        # Penalty escalation from iteration 5 (Section IV-A).
        if t >= cfg.escalation_start:
            pcfg = pcfg.escalated(cfg.escalation_rate)

        if checkpoint_path is not None and t % max(1, checkpoint_every) == 0:
            save_checkpoint()

        if tel.enabled:
            it_wns, it_tns = history[-1]
            tel.event(
                "refine_iter",
                i=t - 1,
                wns=it_wns,
                tns=it_tns,
                best_wns=best_wns,
                best_tns=best_tns,
                penalty=penalty_value,
                theta=so.theta,
                lambda_w=lam_w,
                lambda_t=lam_t,
                accepted=step_accepted,
                skipped=step_skipped,
                validations=validations,
                validated_reverts=validated_reverts,
                checkpoint_saves=checkpoint_saves,
            )

    if use_validator:
        if pending_accepts and not timed_out:
            validate_candidate()
        # ---- oracle-polish stage ----
        if use_validator and cfg.polish_probes > 0 and coords.size and not timed_out:
            real_coords, real_wns, real_tns, probes, polish_timed_out = _polish(
                oracle,
                call_validator,
                clamp,
                real_coords,
                real_wns,
                real_tns,
                pcfg,
                cfg,
                graph.netlist.technology.gcell_size,
                budget=budget,
            )
            validations += probes
            timed_out = timed_out or polish_timed_out
    if use_validator or (degraded and cfg.acceptance == "hybrid"):
        if use_validator:
            best_coords = real_coords
        else:
            # Degraded mid-run: the surviving coordinates are the
            # evaluator's accepted trajectory; round them so the
            # hybrid-mode contract (routable snapped geometry) holds.
            best_coords = SteinerForest.round_array(best_coords)

    if tel.enabled:
        tel.event(
            "refine_end",
            init_wns=init_wns,
            init_tns=init_tns,
            best_wns=best_wns,
            best_tns=best_tns,
            iterations=t,
            accepted=accepted,
            validations=validations,
            validated_reverts=validated_reverts,
            skipped_steps=skipped_steps,
            checkpoint_saves=checkpoint_saves,
            timed_out=timed_out,
            degraded=degraded,
            resumed=ckpt is not None,
        )
    return RefinementResult(
        coords=best_coords,
        init_wns=init_wns,
        init_tns=init_tns,
        best_wns=best_wns,
        best_tns=best_tns,
        iterations=t,
        theta=theta,
        accepted=accepted,
        history=history,
        validations=validations,
        validated_reverts=validated_reverts,
        timed_out=timed_out,
        degraded=degraded,
        skipped_steps=skipped_steps,
        resumed=ckpt is not None,
    )


def _converged(init: float, best: float, mu: float) -> bool:
    """Line 19 test: relative improvement exceeded the converge ratio."""
    if abs(init) < 1e-12:
        return False
    return (init - best) / init > mu


def _polish(
    oracle: _Oracle,
    call_validator: Callable[[np.ndarray], Optional[Tuple[float, float]]],
    clamp: Callable[[np.ndarray], np.ndarray],
    anchor: np.ndarray,
    anchor_wns: float,
    anchor_tns: float,
    pcfg: PenaltyConfig,
    cfg: RefinementConfig,
    gcell: float,
    budget: Optional[Budget] = None,
) -> Tuple[np.ndarray, float, float, int, bool]:
    """Per-point oracle-validated descent on the most critical points.

    Cycles through the ``polish_top_k`` Steiner points with the largest
    evaluator-gradient magnitude; each probe moves one point by one of
    ``polish_steps`` GCells along its negative gradient direction and
    keeps the move only if the real (validated) weighted penalty
    improves.  The gradient is re-evaluated after every accepted move so
    the ranking tracks the evolving critical paths.

    ``call_validator`` is the retry/degrade wrapper from :func:`refine`:
    a ``None`` probe means the oracle went down and polishing stops at
    the current best.  An expired ``budget`` likewise stops the stage
    (reported through the returned ``timed_out`` flag).
    """
    from repro.steiner.forest import SteinerForest

    w_w = abs(cfg.penalty.lambda_wns)
    w_t = abs(cfg.penalty.lambda_tns)

    def score(wns: float, tns: float) -> float:
        return w_w * wns + w_t * tns

    best = anchor.copy()
    best_wns, best_tns = anchor_wns, anchor_tns
    probes = 0
    timed_out = False

    grad, _, _, _ = oracle.gradient(best, pcfg)
    order = np.argsort(-np.abs(grad).sum(axis=1))[: cfg.polish_top_k]
    cursor = 0
    step_idx = 0
    while probes < cfg.polish_probes and order.size:
        if budget is not None and budget.expired():
            timed_out = True
            break
        point = int(order[cursor % order.size])
        direction = -grad[point]
        norm = float(np.linalg.norm(direction))
        cursor += 1
        if norm < 1e-15:
            if cursor > order.size:  # gradient exhausted
                break
            continue
        step = cfg.polish_steps[step_idx % len(cfg.polish_steps)] * gcell
        step_idx += 1
        candidate = best.copy()
        candidate[point] = candidate[point] + step * direction / norm
        candidate = SteinerForest.round_array(clamp(candidate))
        probed = call_validator(candidate)
        probes += 1
        if probed is None:  # oracle down — keep the validated best
            break
        rw, rt = probed
        if score(rw, rt) > score(best_wns, best_tns):
            best = candidate
            best_wns, best_tns = rw, rt
            grad, _, _, _ = oracle.gradient(best, pcfg)
            order = np.argsort(-np.abs(grad).sum(axis=1))[: cfg.polish_top_k]
            cursor = 0
    return best, best_wns, best_tns, probes, timed_out
