"""TSteiner core: the paper's primary contribution.

* :mod:`repro.core.penalty` — smoothed WNS/TNS penalty (Eq. (4)-(6));
* :mod:`repro.core.adaptive` — adaptive stepsize scheme (Eq. (8)-(9));
* :mod:`repro.core.refine` — concurrent Steiner point refinement
  (Algorithm 1) with the per-step stochastic optimizer of Eq. (7);
* :mod:`repro.core.tsteiner` — user-facing facade tying the pieces to
  a netlist + forest + trained evaluator.
"""

from repro.core.penalty import PenaltyConfig, hard_metrics, smoothed_penalty
from repro.core.adaptive import adaptive_theta
from repro.core.refine import RefinementConfig, RefinementResult, refine
from repro.core.tsteiner import TSteiner

__all__ = [
    "PenaltyConfig",
    "smoothed_penalty",
    "hard_metrics",
    "adaptive_theta",
    "RefinementConfig",
    "RefinementResult",
    "refine",
    "TSteiner",
]
