"""Smoothed sign-off timing penalty (Eq. (4)-(6) of the paper).

WNS and TNS contain min/max operations whose subgradients concentrate
on a single endpoint, cutting every other timing path out of the
optimization.  The paper replaces them with Log-Sum-Exp smoothing so
*all* paths receive gradient weight proportional to their criticality:

* ``WNS = min_e s_e = -max_e(-s_e)`` is smoothed as
  ``-LSE_gamma(-s)`` (Eq. (5));
* each TNS term ``min(0, s_e) = -max(0, -s_e)`` is smoothed as
  ``-gamma * log(1 + exp(-s_e / gamma))`` (the LSE of ``{0, -s_e}``).

The penalty ``P = lambda_w * WNS_g + lambda_t * TNS_g`` (Eq. (6)) uses
*negative* lambdas (paper Section IV-A: -200 and -2): slacks are
negative on violating designs, so descending P raises them toward 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor


@dataclass
class PenaltyConfig:
    """Penalty weights and smoothing temperature (paper defaults)."""

    lambda_wns: float = -200.0
    lambda_tns: float = -2.0
    gamma: float = 10.0

    def escalated(self, factor: float) -> "PenaltyConfig":
        """Scaled-lambda copy (the +1 %/iteration escalation scheme)."""
        return PenaltyConfig(
            lambda_wns=self.lambda_wns * factor,
            lambda_tns=self.lambda_tns * factor,
            gamma=self.gamma,
        )


def smoothed_from_slack(
    slack: Tensor, config: PenaltyConfig
) -> Tuple[Tensor, Tensor, Tensor]:
    """(P_gamma, WNS_gamma, TNS_gamma) from an endpoint-slack tensor.

    Shared by the single-scenario penalty below and the scenario-merged
    MCMM penalty (repro.mcmm.penalty), which builds one slack tensor per
    scenario and composes the per-scenario P_gamma terms.
    """
    neg_slack = -slack
    wns_smooth = -F.logsumexp(neg_slack, gamma=config.gamma)
    # max(0, -s) smoothed: gamma * log(1 + exp(-s/gamma)) == softplus
    # with beta = 1/gamma evaluated at -s.
    tns_smooth = -(F.softplus(neg_slack, beta=1.0 / config.gamma)).sum()
    penalty = wns_smooth * config.lambda_wns + tns_smooth * config.lambda_tns
    return penalty, wns_smooth, tns_smooth


def smoothed_penalty(
    arrival: Tensor,
    endpoints: np.ndarray,
    required: np.ndarray,
    config: PenaltyConfig,
) -> Tuple[Tensor, Tensor, Tensor]:
    """(P_gamma, WNS_gamma, TNS_gamma) — all differentiable scalars."""
    slack = Tensor(required) - arrival[np.asarray(endpoints, dtype=np.int64)]
    return smoothed_from_slack(slack, config)


def hard_metrics(
    arrival: np.ndarray, endpoints: np.ndarray, required: np.ndarray
) -> Tuple[float, float, int]:
    """Exact (WNS, TNS, #violations) from a numpy arrival vector."""
    slack = np.asarray(required) - np.asarray(arrival)[np.asarray(endpoints, dtype=np.int64)]
    wns = float(slack.min()) if slack.size else 0.0
    tns = float(np.minimum(slack, 0.0).sum())
    vios = int((slack < 0.0).sum())
    return wns, tns, vios
