"""User-facing TSteiner facade.

Binds a trained :class:`TimingEvaluator` to a design and runs the full
pre-routing optimization step of Fig. 4: build the two-graph structure,
refine Steiner coordinates with Algorithm 1, write the best solution
back into the forest and round positions in post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.refine import RefinementConfig, RefinementResult, refine
from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.steiner.forest import SteinerForest
from repro.timing_model.graph import build_timing_graph
from repro.timing_model.model import TimingEvaluator


class TSteiner:
    """Concurrent sign-off timing optimizer via Steiner point refinement.

    Example
    -------
    >>> optimizer = TSteiner(trained_model)
    >>> result = optimizer.optimize(netlist, forest)   # mutates forest
    >>> result.wns_improvement
    0.11...
    """

    def __init__(
        self,
        model: TimingEvaluator,
        config: Optional[RefinementConfig] = None,
        scenarios=None,
    ) -> None:
        self.model = model
        self.config = config or RefinementConfig()
        # MCMM: a repro.mcmm.ScenarioSet makes refinement acceptance and
        # hybrid validation scenario-merged (docs/MCMM.md).  None or a
        # one-element neutral set keeps the single-scenario path
        # bitwise-unchanged.
        self.scenarios = scenarios

    def optimize(
        self,
        netlist: Netlist,
        forest: SteinerForest,
        budget=None,
        checkpoint_path=None,
        resume: bool = False,
        graph=None,
        telemetry=None,
    ) -> RefinementResult:
        """Refine ``forest`` in place; returns the refinement record.

        Runs a fast global-routing probe first to obtain the congestion
        field the evaluator consumes — the paper likewise extracts its
        features "from the Steiner tree construction stage in global
        routing" (its Table IV attributes the GR-time increase to this).

        ``graph`` optionally supplies a prebuilt
        :class:`~repro.timing_model.graph.TimingGraph` for this exact
        (netlist, forest) pair — callers that run many flows over the
        same design (the experiment suite) memoize it to skip the
        rebuild.  Its congestion field is refreshed from the probe so
        the evaluator still sees this run's routing pressure.

        ``budget``/``checkpoint_path``/``resume`` are forwarded to
        :func:`repro.core.refine.refine` (see docs/RESILIENCE.md), and
        ``telemetry`` likewise (docs/OBSERVABILITY.md; defaults to the
        process-global telemetry).
        """
        tel = telemetry if telemetry is not None else get_telemetry()
        with tel.span("tsteiner.congestion_probe", design=netlist.name):
            congestion = self._congestion_probe(netlist, forest)
        if graph is not None:
            if graph.num_steiner != forest.num_steiner_points:
                raise ValueError(
                    f"prebuilt graph has {graph.num_steiner} Steiner points, "
                    f"forest has {forest.num_steiner_points}"
                )
            graph.congestion = congestion
        else:
            with tel.span("tsteiner.build_graph", design=netlist.name):
                graph = build_timing_graph(netlist, forest, congestion=congestion)
        with tel.span("tsteiner.refine", design=netlist.name) as sp:
            result = refine(
                self.model,
                graph,
                forest.get_steiner_coords(),
                config=self.config,
                clamp_fn=forest.clamp_coords,
                validator=self._make_validator(netlist, forest, self.scenarios),
                budget=budget,
                checkpoint_path=checkpoint_path,
                resume=resume,
                telemetry=tel,
                scenarios=self.scenarios,
            )
            sp.annotate(
                iterations=result.iterations,
                accepted=result.accepted,
                best_wns=result.best_wns,
                best_tns=result.best_tns,
            )
        import numpy as np

        initial = forest.get_steiner_coords()
        if self.config.acceptance == "hybrid":
            # Hybrid coords are already validated-and-rounded anchors;
            # if no validated improvement was found the initial forest
            # is returned untouched (bit-identical to the baseline arm).
            if not np.array_equal(result.coords, initial):
                forest.set_steiner_coords(result.coords)
        else:
            forest.set_steiner_coords(result.coords)
            forest.round_coords()  # post-processing (Fig. 4)
        return result

    @staticmethod
    def _make_validator(netlist: Netlist, forest: SteinerForest, scenarios=None):
        """Fast sign-off-lite probe: pattern route + STA at candidate coords.

        Used by the hybrid acceptance mode to anchor the evaluator's
        accepted trajectory to real timing.  The probe shares the
        production flow's physics (layer assignment, coupling-aware
        STA) but skips rip-up rounds for speed.

        One probe forest and one incremental STA query object are
        hoisted out of the closure: successive probes in a refinement
        run move a sparse subset of Steiner points, so the incremental
        engine re-times only the affected cones instead of the whole
        design.  The returned callable carries a ``reset`` attribute
        that drops the incremental state; :func:`repro.core.refine.refine`
        invokes it after checkpoint restores and validated reverts.

        With a non-neutral ``scenarios`` set the probe times every
        scenario through `repro.mcmm.ScenarioSTA` and returns the
        *merged* (worst-WNS, summed-TNS) verdict, matching the merged
        acceptance rule inside :func:`refine`.
        """
        from repro.groute.layer_assign import assign_layers
        from repro.groute.router import GlobalRouter, RouterConfig
        from repro.routegrid.grid import GCellGrid
        from repro.sta.engine import STAEngine
        from repro.sta.incremental import IncrementalSTA

        engine = STAEngine(netlist)
        probe = forest.copy()
        mcmm = scenarios is not None and not scenarios.is_single_neutral()
        if mcmm:
            from repro.mcmm.sta import ScenarioSTA

            inc = ScenarioSTA(netlist, probe, scenarios, engine=engine)
        else:
            inc = IncrementalSTA(netlist, probe, engine=engine)

        def validator(coords):
            probe.set_steiner_coords(probe.clamp_coords(coords))
            grid = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
            # Default router config so probe timing matches the final
            # production routing pass bit-for-bit.
            router = GlobalRouter(grid, RouterConfig())
            rr = router.route(probe)
            assign_layers(rr, netlist.technology, grid.nx * grid.ny)
            report = inc.run(route_result=rr, utilization=grid.utilization_map())
            if mcmm:
                return report.merged_wns, report.merged_tns
            return report.wns, report.tns

        validator.reset = inc.invalidate
        return validator

    @staticmethod
    def _congestion_probe(netlist: Netlist, forest: SteinerForest):
        """One quick pattern-routing pass to estimate the congestion field.

        Runs the flat batched L-pattern estimator
        (:mod:`repro.groute.flat_route`) — a single-pass whole-design
        scoring instead of the sequential probe router, which dominated
        every ``optimize()`` call (des3: ~2.3 s -> ~10 ms).  The
        production router used for sign-off validation
        (:meth:`_make_validator`) is unchanged.
        """
        from repro.groute.flat_route import estimate_congestion

        return estimate_congestion(netlist, forest)
