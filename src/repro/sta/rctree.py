"""Per-net RC tree extraction and Elmore delay.

Every Steiner tree edge becomes a distributed RC segment.  Wire
capacitance is lumped half at each end of a segment (the standard
pi-model reduction); sink pin capacitance adds at sink nodes.  Elmore
delay from the driver to node *n* is::

    delay(n) = sum over edges e on path(driver -> n) of R_e * C_sub(e)

where ``C_sub(e)`` is the total capacitance hanging below edge ``e``
(including half of e's own wire cap, lumped at its far end).

Slew degradation across the wire uses the PERI approximation::

    slew_out^2 = slew_in^2 + (ln(9) * elmore)^2
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.layer_assign import segment_rc
from repro.groute.router import GlobalRouteResult
from repro.pdk.technology import Technology
from repro.steiner.tree import SteinerTree

LN9 = math.log(9.0)


@dataclass
class NetTiming:
    """Wire-level timing of one net."""

    net_index: int
    total_cap: float  # pF seen by the driver (wire + sink pins)
    sink_delay: Dict[int, float]  # global sink pin index -> Elmore delay (ns)
    sink_slew_degradation: Dict[int, float]  # ns^2 additive term under PERI


def _coupling_factor(
    seg_path,
    utilization: Optional[np.ndarray],
    coupling_k: float,
) -> float:
    """Capacitance multiplier from neighbour coupling in dense regions.

    At 130 nm the lateral coupling capacitance to adjacent same-layer
    wires is comparable to the ground capacitance; its magnitude scales
    with local routing density.  We model ``c_eff = c * (1 + k * u)``
    with ``u`` the mean GCell utilization along the segment's route —
    a smooth function of where the wire runs, which is exactly the
    channel Steiner-point refinement exploits to escape congestion.
    """
    if utilization is None or coupling_k <= 0 or not seg_path:
        return 1.0
    total = 0.0
    for gx, gy in seg_path:
        total += float(utilization[min(gx, utilization.shape[0] - 1), min(gy, utilization.shape[1] - 1)])
    return 1.0 + coupling_k * total / len(seg_path)


def _edge_rc(
    xy: np.ndarray,
    tree_idx: int,
    edge_idx: int,
    u: int,
    v: int,
    technology: Technology,
    route_result: Optional[GlobalRouteResult],
    default_h_layer: int,
    default_v_layer: int,
    utilization: Optional[np.ndarray] = None,
    coupling_k: float = 0.0,
) -> Tuple[float, float]:
    """Resistance/capacitance of one tree edge at node positions ``xy``."""
    if route_result is not None:
        seg = route_result.segments.get((tree_idx, edge_idx))
        if seg is not None:
            r, c = segment_rc(seg, technology)
            return r, c * _coupling_factor(seg.path, utilization, coupling_k)
    dx = abs(float(xy[u][0] - xy[v][0]))
    dy = abs(float(xy[u][1] - xy[v][1]))
    r_h, c_h = technology.wire_rc(default_h_layer, dx)
    r_v, c_v = technology.wire_rc(default_v_layer, dy)
    return r_h + r_v, c_h + c_v


def compute_net_timing(
    tree: SteinerTree,
    sink_pin_caps: Dict[int, float],
    technology: Technology,
    route_result: Optional[GlobalRouteResult] = None,
    tree_idx: int = -1,
    default_h_layer: int = 2,
    default_v_layer: int = 3,
    utilization: Optional[np.ndarray] = None,
    coupling_k: float = 0.0,
) -> NetTiming:
    """Elmore analysis of one net's Steiner tree.

    ``sink_pin_caps`` maps global sink pin index -> input capacitance.
    ``tree_idx`` is the tree's index inside its forest (needed to find
    routed segments); -1 means unrouted/pre-route mode.
    """
    n = tree.n_nodes
    if n == 1 or not tree.edges:
        total = sum(sink_pin_caps.values())
        return NetTiming(tree.net_index, total, {p: 0.0 for p in tree.pin_ids[1:]}, {p: 0.0 for p in tree.pin_ids[1:]})

    # Memoized driver-rooted topology: directed edges already carry
    # their undirected edge index (routed-segment lookup key), and the
    # parent array replaces the per-call (parent, child) -> slot dict.
    topo = tree.topology()
    directed = topo.directed_list  # (parent, child), driver-rooted
    dir_edge_local = topo.dir_edge_local
    parent_of_node = topo.parent
    xy = tree.node_xy()

    # Node capacitance: half of each incident wire cap + sink pin cap.
    node_cap = np.zeros(n, dtype=np.float64)
    edge_r = np.zeros(len(directed), dtype=np.float64)
    # Edge slot (row in `directed`) keyed by child node.
    slot_of_child = np.full(n, -1, dtype=np.int64)

    for k, (p, c) in enumerate(directed):
        e_idx = int(dir_edge_local[k])
        r, cap = _edge_rc(
            xy, tree_idx, e_idx, p, c, technology, route_result,
            default_h_layer, default_v_layer, utilization, coupling_k,
        )
        edge_r[k] = r
        node_cap[p] += cap * 0.5
        node_cap[c] += cap * 0.5
        slot_of_child[c] = k

    for node_pos, pin_id in enumerate(tree.pin_ids):
        if node_pos == 0:
            continue
        node_cap[node_pos] += sink_pin_caps.get(pin_id, 0.0)

    # Subtree capacitance via reverse BFS order (children before parents).
    order = topo.bfs_order
    subtree_cap = node_cap.copy()
    for node in order[::-1]:
        p = parent_of_node[node]
        if p >= 0:
            subtree_cap[p] += subtree_cap[node]

    # Elmore delay: accumulate R * C_sub along root-to-node paths.
    delay = np.zeros(n, dtype=np.float64)
    for node in order:
        p = parent_of_node[node]
        if p < 0:
            continue
        delay[node] = delay[p] + edge_r[slot_of_child[node]] * subtree_cap[node]

    sink_delay: Dict[int, float] = {}
    sink_slew: Dict[int, float] = {}
    for node_pos, pin_id in enumerate(tree.pin_ids):
        if node_pos == 0:
            continue
        d = float(delay[node_pos])
        sink_delay[pin_id] = d
        sink_slew[pin_id] = (LN9 * d) ** 2

    return NetTiming(
        net_index=tree.net_index,
        total_cap=float(subtree_cap[0]),
        sink_delay=sink_delay,
        sink_slew_degradation=sink_slew,
    )


def _bfs_order(tree: SteinerTree) -> List[int]:
    """Nodes in BFS order from the driver (parents precede children)."""
    return tree.topology().bfs_order.tolist()


