"""Hold (min-delay) analysis.

Setup analysis (the engine's default) propagates *worst* arrivals and
checks them against the capture edge; hold analysis propagates *best*
(earliest) arrivals and checks that new data does not race through and
corrupt the same-cycle capture:

    hold_slack(e) = earliest_arrival(e) - (hold_time + uncertainty)

The paper optimizes setup WNS/TNS only, but a sign-off substitute that
cannot report hold would be incomplete — and the test suite uses hold
analysis as an independent cross-check of the PERT machinery (earliest
arrivals can never exceed latest ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist, PinDirection
from repro.sta.engine import DEFAULT_INPUT_SLEW, STAEngine
from repro.sta.rctree import compute_net_timing
from repro.steiner.forest import SteinerForest

#: assumed register hold requirement (ns); libraries would provide this
DEFAULT_HOLD_TIME = 0.03


@dataclass
class HoldReport:
    """Earliest arrivals and hold slacks."""

    early_arrival: np.ndarray
    hold_slack: Dict[int, float]
    whs: float  # worst hold slack
    num_violations: int


def run_hold_analysis(
    engine: STAEngine,
    forest: SteinerForest,
    route_result: Optional[GlobalRouteResult] = None,
    utilization: Optional[np.ndarray] = None,
    hold_time: float = DEFAULT_HOLD_TIME,
) -> HoldReport:
    """Min-delay PERT traversal over the same timing graph."""
    netlist = engine.netlist
    n_pins = netlist.num_pins
    arrival = np.full(n_pins, np.nan)
    slew = np.full(n_pins, DEFAULT_INPUT_SLEW)

    pin_caps = {
        p.index: p.cap for p in netlist.pins if p.direction == PinDirection.INPUT
    }
    net_timing = {}
    net_load: Dict[int, float] = {}
    for t_idx, tree in enumerate(forest.trees):
        sink_caps = {p: pin_caps.get(p, 0.0) for p in tree.pin_ids[1:]}
        nt = compute_net_timing(
            tree,
            sink_caps,
            engine.technology,
            route_result=route_result,
            tree_idx=t_idx,
            utilization=utilization,
            coupling_k=engine.COUPLING_K,
        )
        net_timing[tree.net_index] = nt
        net_load[tree.net_index] = nt.total_cap
    for net in netlist.nets:
        net_load.setdefault(
            net.index, sum(pin_caps.get(s, 0.0) for s in net.sinks)
        )

    launch = engine.clock.launch_time()
    for port in netlist.primary_inputs():
        arrival[port.index] = launch + engine.clock.input_delay
    clock_pins = set()
    for cell in netlist.registers():
        ck = cell.pin_indices[cell.cell_type.clock_pin]
        clock_pins.add(ck)
        arrival[ck] = launch

    driver_of: Dict[int, int] = {}
    for net in netlist.nets:
        for s in net.sinks:
            driver_of[s] = net.index

    for pin_idx in netlist.topological_pin_order():
        pin = netlist.pins[pin_idx]
        if pin_idx in clock_pins or (
            pin.is_port and pin.direction == PinDirection.OUTPUT
        ):
            continue
        if pin.direction == PinDirection.OUTPUT:
            arcs = engine._cell_arcs.get(pin_idx, [])
            net_idx = netlist.pin_net_map()[pin_idx]
            load = net_load.get(int(net_idx), 0.0) if net_idx >= 0 else 0.0
            best = np.inf
            best_slew = DEFAULT_INPUT_SLEW
            for in_pin, arc in arcs:
                a_in = arrival[in_pin]
                if np.isnan(a_in):
                    continue
                a_out = a_in + arc.delay.lookup(float(slew[in_pin]), load)
                if a_out < best:  # earliest arrival: min over arcs
                    best = a_out
                    best_slew = arc.output_slew.lookup(float(slew[in_pin]), load)
            if best < np.inf:
                arrival[pin_idx] = best
                slew[pin_idx] = best_slew
        else:
            net_idx = driver_of.get(pin_idx)
            if net_idx is None:
                continue
            driver = netlist.nets[net_idx].driver
            a_drv = arrival[driver]
            if np.isnan(a_drv):
                continue
            nt = net_timing.get(net_idx)
            if nt is None:
                arrival[pin_idx] = a_drv
            else:
                arrival[pin_idx] = a_drv + nt.sink_delay.get(pin_idx, 0.0)
                slew[pin_idx] = math.sqrt(
                    float(slew[driver]) ** 2
                    + nt.sink_slew_degradation.get(pin_idx, 0.0)
                )

    requirement = hold_time + engine.clock.uncertainty
    hold_slack: Dict[int, float] = {}
    for cell in netlist.registers():
        ct = cell.cell_type
        for in_name in ct.input_pins:
            if in_name == ct.clock_pin:
                continue
            ep = cell.pin_indices[in_name]
            arr = arrival[ep]
            if not np.isnan(arr):
                hold_slack[ep] = float(arr - launch - requirement)
    whs = min(hold_slack.values()) if hold_slack else 0.0
    vios = sum(1 for s in hold_slack.values() if s < 0)
    return HoldReport(
        early_arrival=arrival,
        hold_slack=hold_slack,
        whs=float(whs),
        num_violations=vios,
    )
