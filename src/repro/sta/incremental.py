"""Incremental sign-off STA with dirty-net tracking.

Algorithm 1's inner loop asks for WNS/TNS after every candidate Steiner
move, but an accepted step usually perturbs a small subset of trees.
`IncrementalSTA` caches the previous query's RC arrays and propagated
arrival/slew state and, on the next query:

1. finds **dirty trees** — pre-route, trees whose Steiner coordinates
   moved more than ``tol`` since the last *applied* query (``tol=0.0``,
   the default, means any bitwise change); post-route, trees whose
   per-edge RC changed (covers re-routes, layer re-assignment and
   congestion-coupling changes exactly);
2. re-runs the batched Elmore kernels only over those trees' flat rows
   (bit-identical to a full pass — see `repro.sta.flat`);
3. seeds the levelized PERT frontier with the pins whose wire timing or
   driver load actually changed, and sweeps level by level, expanding
   the frontier only where recomputed values differ **bitwise** from
   the cached ones.

Consequently, with ``tol=0.0`` every report is bit-identical to a full
recompute; ``tol > 0`` trades exactness for fewer dirty trees.

Safety: if anything raises mid-update (including a budget timeout from
the resilience runtime), the cached state is dropped before the
exception propagates — an interrupted query can never leave a stale
dirty set behind (docs/RESILIENCE.md).  `full_recompute()` is the
explicit escape hatch; ``parity_check=True`` re-runs the full kernel
after every incremental query and asserts bitwise agreement (use with
``tol=0.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.sta import flat as flatmod
from repro.sta.engine import (
    DEFAULT_INPUT_SLEW,
    STAEngine,
    TimingReport,
    _eval_cell_arcs,
    propagate_levels,
)
from repro.steiner.forest import SteinerForest


@dataclass
class _IncState:
    """Everything cached between queries."""

    flat: flatmod.FlatForest
    coords: np.ndarray  # (S, 2) coordinates the state was computed with
    xy: np.ndarray  # (N, 2) flat node positions under ``coords``
    routed: bool
    edge_r: np.ndarray
    edge_c: np.ndarray
    elmore: flatmod.ElmoreState
    wire_delay: np.ndarray  # (n_pins,)
    wire_deg: np.ndarray  # (n_pins,)
    net_load: np.ndarray  # (n_nets,)
    net_has_tree: np.ndarray  # (n_nets,) bool
    arrival: np.ndarray  # (n_pins,)
    slew: np.ndarray  # (n_pins,)


class IncrementalSTA:
    """STA query object bound to one (netlist, forest-topology) pair.

    Reads Steiner coordinates from ``forest`` at each :meth:`run` —
    callers move points (``forest.set_steiner_coords``) and re-query.
    The forest's tree *topology* must stay fixed between queries; a
    topology edit changes the flat fingerprint and triggers a full
    rebuild automatically.
    """

    def __init__(
        self,
        netlist: Netlist,
        forest: SteinerForest,
        engine: Optional[STAEngine] = None,
        tol: float = 0.0,
        parity_check: bool = False,
    ) -> None:
        self.engine = engine if engine is not None else STAEngine(netlist)
        self.forest = forest
        self.tol = float(tol)
        self.parity_check = parity_check
        self._state: Optional[_IncState] = None
        # Query statistics (observability; reset with the state).
        self.num_queries = 0
        self.num_full = 0
        self.last_dirty_trees = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached state; the next query runs a full pass.

        Call after any event that may desynchronize the cache from the
        forest — checkpoint resume, validated revert, topology edits.
        """
        self._state = None

    # The hybrid validator exposes this under ``.reset``.
    reset = invalidate

    def full_recompute(
        self,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> TimingReport:
        """Escape hatch: invalidate and answer with a full pass."""
        self.invalidate()
        return self.run(route_result=route_result, utilization=utilization)

    # ------------------------------------------------------------------
    def run(
        self,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> TimingReport:
        """Timing under the forest's current Steiner coordinates."""
        self.num_queries += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("incsta.queries")
        pert = self.engine.pert()
        flat = flatmod.flat_forest_of(self.forest, pert.pin_caps)
        coords = self.forest.get_steiner_coords()
        st = self._state
        if st is None or st.flat is not flat:
            return self._full(flat, coords, route_result, utilization)
        try:
            report = self._incremental(st, coords, route_result, utilization)
        except Exception:
            # Never leave a stale dirty set: an interrupted update keeps
            # no partial state (budget timeouts land here too).
            self._state = None
            raise
        if self.parity_check:
            if tel.enabled:
                tel.count("incsta.parity_checks")
            self._assert_parity(report, route_result, utilization)
        return report

    # ------------------------------------------------------------------
    def _full(
        self,
        flat: flatmod.FlatForest,
        coords: np.ndarray,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> TimingReport:
        self.num_full += 1
        self.last_dirty_trees = flat.n_trees
        tel = get_telemetry()
        if tel.enabled:
            tel.count("incsta.full_rebuilds")
            tel.hist("incsta.dirty_trees", flat.n_trees)
        engine = self.engine
        pert = engine.pert()
        xy = flatmod.node_positions(flat, coords)
        routed = route_result is not None
        if routed:
            edge_r, edge_c = flatmod.routed_edge_rc(
                flat, engine.technology, xy, route_result,
                utilization, engine.COUPLING_K,
            )
        else:
            edge_r, edge_c = flatmod.preroute_edge_rc(flat, engine.technology, xy)
        elmore = flatmod.elmore_forest(flat, edge_r, edge_c)

        n_pins = pert.n_pins
        wire_delay = np.zeros(n_pins)
        wire_deg = np.zeros(n_pins)
        wire_delay[flat.sink_pin] = elmore.sink_delay
        wire_deg[flat.sink_pin] = elmore.sink_slew_deg
        net_load = pert.lumped_net_cap.copy()
        net_load[flat.net_of_tree] = elmore.total_cap
        net_has_tree = np.zeros(pert.n_nets, dtype=bool)
        net_has_tree[flat.net_of_tree] = True

        arrival, slew = engine.launch_arrays()
        propagate_levels(
            pert, arrival, slew, wire_delay, wire_deg, net_load, net_has_tree
        )
        self._state = _IncState(
            flat=flat,
            coords=np.array(coords, dtype=np.float64, copy=True),
            xy=xy,
            routed=routed,
            edge_r=edge_r,
            edge_c=edge_c,
            elmore=elmore,
            wire_delay=wire_delay,
            wire_deg=wire_deg,
            net_load=net_load,
            net_has_tree=net_has_tree,
            arrival=arrival,
            slew=slew,
        )
        return engine.finalize_report(arrival, slew, net_load, copy_arrays=True)

    # ------------------------------------------------------------------
    def _incremental(
        self,
        st: _IncState,
        coords: np.ndarray,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> TimingReport:
        engine = self.engine
        pert = engine.pert()
        flat = st.flat
        routed = route_result is not None

        dirty_mask = np.zeros(flat.n_trees, dtype=bool)
        if routed or st.routed:
            xy = st.xy
            if flat.steiner_rows.size:
                xy[flat.steiner_rows] = coords[flat.steiner_flat]
            # Post-route (or a mode switch): per-edge RC diffing is the
            # exact dirtiness criterion — it catches coordinate moves
            # (fallback edges), re-routes, layer changes and coupling.
            if routed:
                new_r, new_c = flatmod.routed_edge_rc(
                    flat, engine.technology, xy, route_result,
                    utilization, engine.COUPLING_K,
                )
            else:
                new_r, new_c = flatmod.preroute_edge_rc(
                    flat, engine.technology, xy
                )
            diff = (new_r != st.edge_r) | (new_c != st.edge_c)
            dirty_mask[flat.edge_tree[diff]] = True
            st.edge_r, st.edge_c = new_r, new_c
            st.coords = np.array(coords, dtype=np.float64, copy=True)
        else:
            # Pre-route: dirty = trees whose coordinates moved > tol
            # since the last applied query.
            delta = np.abs(coords - st.coords)
            if self.tol > 0.0:
                moved = np.any(delta > self.tol, axis=1)
            else:
                moved = np.any(coords != st.coords, axis=1)
            dirty_mask[flat.steiner_tree[moved]] = True
            coord_rows = dirty_mask[flat.steiner_tree]
            st.coords[coord_rows] = coords[coord_rows]
            # Apply only the dirty trees' positions to the cached node
            # coordinates — with tol > 0 the rest stay at their last
            # *applied* values, matching ``st.coords``.
            xy = st.xy
            m = coord_rows[flat.steiner_flat]
            if m.any():
                xy[flat.steiner_rows[m]] = coords[flat.steiner_flat[m]]
            dirty = np.flatnonzero(dirty_mask)
            if dirty.size:
                e_rows = flat.edge_rows_of_trees(dirty)
                flatmod.preroute_edge_rc(
                    flat, engine.technology, xy,
                    edge_rows=e_rows, out_r=st.edge_r, out_c=st.edge_c,
                )
        st.routed = routed

        dirty = np.flatnonzero(dirty_mask)
        self.last_dirty_trees = int(dirty.size)
        tel = get_telemetry()
        if tel.enabled:
            tel.hist("incsta.dirty_trees", int(dirty.size))
        n_pins = pert.n_pins
        recompute = np.zeros(n_pins, dtype=bool)
        if dirty.size:
            flatmod.elmore_update(flat, st.edge_r, st.edge_c, st.elmore, trees=dirty)
            # Seed sinks whose wire timing changed ...
            sink_sel = flat.sink_rows_of_trees(dirty)
            pins = flat.sink_pin[sink_sel]
            new_wd = st.elmore.sink_delay[sink_sel]
            new_deg = st.elmore.sink_slew_deg[sink_sel]
            w_ch = (st.wire_delay[pins] != new_wd) | (st.wire_deg[pins] != new_deg)
            st.wire_delay[pins] = new_wd
            st.wire_deg[pins] = new_deg
            recompute[pins[w_ch]] = True
            # ... and drivers whose output load changed.
            nets = flat.net_of_tree[dirty]
            new_load = st.elmore.total_cap[dirty]
            l_ch = st.net_load[nets] != new_load
            st.net_load[nets] = new_load
            recompute[pert.net_driver[nets[l_ch]]] = True

        if recompute.any():
            self._propagate_from(st, recompute)
        return engine.finalize_report(
            st.arrival, st.slew, st.net_load, copy_arrays=True
        )

    def _propagate_from(self, st: _IncState, recompute: np.ndarray) -> None:
        """Levelized cone propagation from the seeded frontier.

        A pin is re-evaluated when it is seeded or any of its fan-in
        pins changed; the frontier stops expanding wherever recomputed
        values equal the cached ones bitwise.
        """
        pert = self.engine.pert()
        arrival, slew = st.arrival, st.slew
        changed = np.zeros(pert.n_pins, dtype=bool)
        levels_touched = 0
        for lv in pert.levels:
            level_touched = False
            if lv.net_dst.size:
                m = recompute[lv.net_dst] | changed[lv.net_src]
                if m.any():
                    level_touched = True
                    src = lv.net_src[m]
                    dst = lv.net_dst[m]
                    a_drv = arrival[src]
                    ok = ~np.isnan(a_drv)
                    new_a = np.where(ok, a_drv + st.wire_delay[dst], np.nan)
                    s_drv = slew[src]
                    ht = st.net_has_tree[lv.net_net[m]]
                    peri = np.sqrt(s_drv * s_drv + st.wire_deg[dst])
                    new_s = np.where(
                        ok, np.where(ht, peri, s_drv), DEFAULT_INPUT_SLEW
                    )
                    old_a = arrival[dst]
                    ch = ~((new_a == old_a) | (np.isnan(new_a) & np.isnan(old_a)))
                    ch |= new_s != slew[dst]
                    arrival[dst] = new_a
                    slew[dst] = new_s
                    changed[dst] |= ch
            if lv.cell_dest.size:
                dsel = recompute[lv.cell_dest]
                if lv.cell_in.size:
                    dsel = dsel | np.logical_or.reduceat(
                        changed[lv.cell_in], lv.cell_start[:-1]
                    )
                idx = np.flatnonzero(dsel)
                if idx.size == 0:
                    if level_touched:
                        levels_touched += 1
                    continue
                level_touched = True
                starts = lv.cell_start[:-1][idx]
                ends = lv.cell_start[1:][idx]
                arc_rows = flatmod._expand_ranges(starts, ends)
                counts = ends - starts
                sub_start = np.zeros(idx.size + 1, dtype=np.int64)
                np.cumsum(counts, out=sub_start[1:])
                best, wslew, valid = _eval_cell_arcs(
                    pert, lv, arrival, slew, st.net_load,
                    lv.cell_dest_net[idx], sub_start, counts, arc_rows,
                )
                dsts = lv.cell_dest[idx]
                new_a = np.where(valid, best, np.nan)
                old_a = arrival[dsts]
                ch = ~((new_a == old_a) | (np.isnan(new_a) & np.isnan(old_a)))
                ch |= wslew != slew[dsts]
                arrival[dsts] = new_a
                slew[dsts] = wslew
                changed[dsts] |= ch
            if level_touched:
                levels_touched += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.hist("incsta.frontier_levels", levels_touched)

    # ------------------------------------------------------------------
    def _assert_parity(
        self,
        report: TimingReport,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> None:
        full = self.engine.run(
            self.forest, route_result=route_result,
            utilization=utilization, kernel="flat",
        )
        if not (
            np.array_equal(report.arrival, full.arrival, equal_nan=True)
            and np.array_equal(report.slew, full.slew)
            and report.wns == full.wns
            and report.tns == full.tns
        ):
            m = ~np.isnan(full.arrival)
            diff = float(
                np.max(np.abs(report.arrival[m] - full.arrival[m]))
            ) if m.any() else 0.0
            raise AssertionError(
                "incremental STA diverged from full recompute "
                f"(max |d arrival| = {diff:.3e}, d wns = "
                f"{abs(report.wns - full.wns):.3e}); with tol > 0 this "
                "is expected — parity_check is meant for tol == 0.0"
            )


__all__ = ["IncrementalSTA"]
