"""Flattened RC forest: CSR-style arrays + batched Elmore kernels.

The reference path (`repro.sta.rctree.compute_net_timing`) walks one
Python BFS per net per query.  This module flattens every Steiner tree
of a design into contiguous flat-node arrays built **once** per forest
topology, then evaluates Elmore delay for *all* nets with a handful of
numpy scans:

* downstream (subtree) capacitance — one ``np.add.at`` scatter per BFS
  depth, deepest level first;
* Elmore delay — one gather/multiply/add per BFS depth, shallowest
  level first.

Flat layout (see docs/PERFORMANCE.md):

* nodes of tree ``t`` occupy the contiguous range
  ``node_offset[t] : node_offset[t+1]`` — pins first (driver at the
  start of the range), Steiner nodes after, mirroring the per-tree
  numbering convention;
* each reached non-root node identifies the directed RC edge from its
  parent, so edge arrays are indexed by child flat node, ascending —
  which keeps per-tree edge rows contiguous and makes subsetting by
  tree (the incremental path) reproduce the exact ``np.add.at``
  accumulation order of the full pass: incremental and full results
  are *bitwise* identical, not just close.

Everything here is geometry-only; NLDM cell lookup lives in
`repro.sta.engine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.obs import get_telemetry
from repro.pdk.technology import Technology
from repro.steiner.forest import SteinerForest

LN9 = math.log(9.0)

_FLAT_CACHE_ATTR = "_flat_forest_cache"


@dataclass
class FlatForest:
    """Per-design flat view of all RC trees (static topology)."""

    n_trees: int
    n_nodes: int
    node_offset: np.ndarray  # (T+1,) flat node range per tree
    tree_of_node: np.ndarray  # (N,)
    parent: np.ndarray  # (N,) flat parent node, -1 at roots/unreached
    levels: List[np.ndarray]  # nodes at BFS depth d >= 1, ascending ids
    # Directed RC edges, one per reached non-root node, child ascending:
    edge_child: np.ndarray  # (E,) flat child node
    edge_tree: np.ndarray  # (E,)
    edge_local: np.ndarray  # (E,) undirected edge index within its tree
    edge_offset: np.ndarray  # (T+1,) edge row range per tree
    edge_row_of: Dict[Tuple[int, int], int]  # (tree, local edge) -> row
    # Geometry binding:
    pin_rows: np.ndarray  # flat nodes that are pins
    pin_xy: np.ndarray  # (n_pin_rows, 2) fixed positions
    steiner_rows: np.ndarray  # flat nodes that are Steiner points
    steiner_flat: np.ndarray  # forest flat-coordinate row per Steiner node
    steiner_tree: np.ndarray  # (S,) owning tree per forest coordinate row
    # Sinks (pin nodes 1..n_pins-1 of each tree), tree-contiguous:
    sink_rows: np.ndarray  # (K,) flat node ids
    sink_pin: np.ndarray  # (K,) global pin indices
    sink_tree: np.ndarray  # (K,)
    sink_offset: np.ndarray  # (T+1,) sink range per tree
    node_base_cap: np.ndarray  # (N,) sink pin cap at sink nodes, else 0
    net_of_tree: np.ndarray  # (T,)
    tree_root: np.ndarray  # (T,) flat node of each driver
    tree_has_edges: np.ndarray  # (T,) bool
    lumped_cap: np.ndarray  # (T,) plain sum of sink pin caps (edgeless case)

    @property
    def n_edges(self) -> int:
        return int(self.edge_child.size)

    # -- subsetting helpers (tree-contiguous ranges) -------------------
    def node_rows_of_trees(self, trees: np.ndarray) -> np.ndarray:
        return _expand_ranges(self.node_offset[trees], self.node_offset[trees + 1])

    def edge_rows_of_trees(self, trees: np.ndarray) -> np.ndarray:
        return _expand_ranges(self.edge_offset[trees], self.edge_offset[trees + 1])

    def sink_rows_of_trees(self, trees: np.ndarray) -> np.ndarray:
        return _expand_ranges(self.sink_offset[trees], self.sink_offset[trees + 1])


@dataclass
class ElmoreState:
    """Mutable per-query Elmore arrays (reused by the incremental STA)."""

    node_cap: np.ndarray  # (N,)
    subtree_cap: np.ndarray  # (N,)
    delay: np.ndarray  # (N,) driver-to-node Elmore delay
    total_cap: np.ndarray  # (T,) cap seen by each driver
    sink_delay: np.ndarray  # (K,)
    sink_slew_deg: np.ndarray  # (K,) additive PERI slew term (ns^2)


def _expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]``."""
    counts = (ends - starts).astype(np.int64)
    keep = counts > 0
    starts, ends, counts = starts[keep], ends[keep], counts[keep]
    if counts.size == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.ones(int(counts.sum()), dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(counts)[:-1]
    out[boundaries] = starts[1:] - ends[:-1] + 1
    return np.cumsum(out)


def build_flat_forest(
    forest: SteinerForest, pin_caps: Dict[int, float]
) -> FlatForest:
    """Flatten ``forest`` into CSR arrays (one-time per topology)."""
    trees = forest.trees
    T = len(trees)
    node_offset = np.zeros(T + 1, dtype=np.int64)
    for i, tree in enumerate(trees):
        node_offset[i + 1] = node_offset[i] + tree.n_nodes
    N = int(node_offset[-1])

    tree_of_node = np.zeros(N, dtype=np.int64)
    parent = np.full(N, -1, dtype=np.int64)
    depth = np.zeros(N, dtype=np.int64)
    node_base_cap = np.zeros(N, dtype=np.float64)

    edge_tree_parts: List[np.ndarray] = []
    edge_local_parts: List[np.ndarray] = []
    pin_rows_parts: List[np.ndarray] = []
    pin_xy_parts: List[np.ndarray] = []
    steiner_rows_parts: List[np.ndarray] = []
    steiner_flat_parts: List[np.ndarray] = []
    sink_rows_parts: List[np.ndarray] = []
    sink_pin_parts: List[np.ndarray] = []
    sink_tree_parts: List[np.ndarray] = []
    sink_offset = np.zeros(T + 1, dtype=np.int64)
    edge_offset = np.zeros(T + 1, dtype=np.int64)
    net_of_tree = np.zeros(T, dtype=np.int64)
    tree_has_edges = np.zeros(T, dtype=bool)
    lumped_cap = np.zeros(T, dtype=np.float64)
    steiner_tree = np.zeros(forest.num_steiner_points, dtype=np.int64)

    for t, tree in enumerate(trees):
        base = int(node_offset[t])
        n = tree.n_nodes
        n_pins = tree.n_pins
        tree_of_node[base : base + n] = t
        net_of_tree[t] = tree.net_index
        tree_has_edges[t] = bool(tree.edges)

        topo = tree.topology()
        reached = topo.parent >= 0
        parent[base : base + n][reached] = topo.parent[reached] + base
        depth[base : base + n] = topo.depth

        edge_local_parts.append(topo.dir_edge_local)
        edge_tree_parts.append(np.full(topo.dir_edge_local.size, t, dtype=np.int64))
        edge_offset[t + 1] = edge_offset[t] + topo.dir_edge_local.size

        pin_rows_parts.append(np.arange(base, base + n_pins, dtype=np.int64))
        pin_xy_parts.append(tree.pin_xy)
        if tree.n_steiner:
            sl = forest.steiner_slice(t)
            steiner_rows_parts.append(
                np.arange(base + n_pins, base + n, dtype=np.int64)
            )
            steiner_flat_parts.append(np.arange(sl.start, sl.stop, dtype=np.int64))
            steiner_tree[sl] = t

        sinks = np.asarray(tree.pin_ids[1:], dtype=np.int64)
        sink_rows_parts.append(np.arange(base + 1, base + n_pins, dtype=np.int64))
        sink_pin_parts.append(sinks)
        sink_tree_parts.append(np.full(sinks.size, t, dtype=np.int64))
        sink_offset[t + 1] = sink_offset[t] + sinks.size
        caps = np.array([pin_caps.get(int(p), 0.0) for p in sinks], dtype=np.float64)
        node_base_cap[base + 1 : base + n_pins] = caps
        lumped_cap[t] = caps.sum()

    def _cat(parts: List[np.ndarray], dtype=np.int64) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    edge_tree = _cat(edge_tree_parts)
    edge_local = _cat(edge_local_parts)
    # Edge rows are indexed by child node ascending; since per-tree
    # children from `topology()` are ascending and trees are laid out in
    # order, the concatenation is already globally sorted.
    edge_child = np.flatnonzero(parent >= 0)
    assert edge_child.size == edge_tree.size

    max_depth = int(depth.max()) if N else 0
    levels = []
    reached_mask = parent >= 0
    for d in range(1, max_depth + 1):
        lvl = np.flatnonzero((depth == d) & reached_mask)
        if lvl.size:
            levels.append(lvl)

    edge_row_of = {
        (int(t), int(l)): i
        for i, (t, l) in enumerate(zip(edge_tree, edge_local))
    }

    pin_xy = (
        np.concatenate(pin_xy_parts, axis=0)
        if pin_xy_parts
        else np.zeros((0, 2))
    )

    return FlatForest(
        n_trees=T,
        n_nodes=N,
        node_offset=node_offset,
        tree_of_node=tree_of_node,
        parent=parent,
        levels=levels,
        edge_child=edge_child,
        edge_tree=edge_tree,
        edge_local=edge_local,
        edge_offset=edge_offset,
        edge_row_of=edge_row_of,
        pin_rows=_cat(pin_rows_parts),
        pin_xy=np.asarray(pin_xy, dtype=np.float64),
        steiner_rows=_cat(steiner_rows_parts),
        steiner_flat=_cat(steiner_flat_parts),
        steiner_tree=steiner_tree,
        sink_rows=_cat(sink_rows_parts),
        sink_pin=_cat(sink_pin_parts),
        sink_tree=_cat(sink_tree_parts),
        sink_offset=sink_offset,
        node_base_cap=node_base_cap,
        net_of_tree=net_of_tree,
        tree_root=node_offset[:-1].copy(),
        tree_has_edges=tree_has_edges,
        lumped_cap=lumped_cap,
    )


def flat_forest_of(forest: SteinerForest, pin_caps: Dict[int, float]) -> FlatForest:
    """Memoized :func:`build_flat_forest`, validated by topology identity.

    The cache holds a reference to each tree's memoized
    :class:`~repro.steiner.tree.TreeTopology`; any edge rewrite calls
    ``invalidate_topology()`` which replaces that object, so an identity
    sweep (cheap — no per-tree property chains) detects every topology
    edit.  Coordinate moves keep the cache.
    """
    tel = get_telemetry()
    cached = getattr(forest, _FLAT_CACHE_ATTR, None)
    if cached is not None:
        flat, topo_refs, caps_ref = cached
        trees = forest.trees
        if (
            caps_ref is pin_caps
            and len(trees) == len(topo_refs)
            and all(t._topo is r for t, r in zip(trees, topo_refs))
        ):
            if tel.enabled:
                tel.count("sta.flat_cache_hits")
            return flat
    if tel.enabled:
        tel.count("sta.flat_cache_misses")
    flat = build_flat_forest(forest, pin_caps)
    topo_refs = [t._topo for t in forest.trees]
    setattr(forest, _FLAT_CACHE_ATTR, (flat, topo_refs, pin_caps))
    return flat


# ----------------------------------------------------------------------
# Geometry / RC extraction
# ----------------------------------------------------------------------
def node_positions(flat: FlatForest, steiner_coords: np.ndarray) -> np.ndarray:
    """(N, 2) flat node positions under the given flat coordinates."""
    xy = np.empty((flat.n_nodes, 2), dtype=np.float64)
    xy[flat.pin_rows] = flat.pin_xy
    if flat.steiner_rows.size:
        xy[flat.steiner_rows] = steiner_coords[flat.steiner_flat]
    return xy


def preroute_edge_rc(
    flat: FlatForest,
    technology: Technology,
    xy: np.ndarray,
    default_h_layer: int = 2,
    default_v_layer: int = 3,
    edge_rows: Optional[np.ndarray] = None,
    out_r: Optional[np.ndarray] = None,
    out_c: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized pre-route edge RC (H span on one layer, V on another).

    Matches ``rctree._edge_rc``'s unrouted fallback term for term.  When
    ``edge_rows`` is given only those rows are (re)computed, writing
    into ``out_r`` / ``out_c``.
    """
    child = flat.edge_child if edge_rows is None else flat.edge_child[edge_rows]
    d = np.abs(xy[flat.parent[child]] - xy[child])
    lh = technology.layers[default_h_layer]
    lv = technology.layers[default_v_layer]
    r = lh.res_per_um * d[:, 0] + lv.res_per_um * d[:, 1]
    c = lh.cap_per_um * d[:, 0] + lv.cap_per_um * d[:, 1]
    if edge_rows is None:
        return r, c
    out_r[edge_rows] = r
    out_c[edge_rows] = c
    return out_r, out_c


def _via_unit_tables(technology: Technology) -> Tuple[np.ndarray, np.ndarray]:
    """(L, L) per-via resistance / capacitance for each (h, v) layer
    pair, replicating ``layer_assign.segment_rc``'s via model."""
    cached = getattr(technology, "_via_unit_cache", None)
    if cached is not None:
        return cached
    L = technology.num_layers
    vr = np.zeros((L, L), dtype=np.float64)
    vc = np.zeros((L, L), dtype=np.float64)
    for a in range(L):
        for b in range(L):
            low, high = sorted((a, b))
            if low == high:
                high = min(high + 1, L - 1)
            vr[a, b] = technology.via_stack_resistance(low, high) / max(high - low, 1)
            if low < L - 1:
                vc[a, b] = technology.via_between(low, min(low + 1, L - 1)).capacitance
    try:
        technology._via_unit_cache = (vr, vc)
    except (AttributeError, TypeError):  # frozen technology objects
        pass
    return vr, vc


def _seg_path_arrays(seg) -> Tuple[np.ndarray, np.ndarray]:
    """GCell path of a routed segment as (xs, ys) arrays, memoized on
    the segment (segments are replaced, never mutated, on rip-up)."""
    cached = getattr(seg, "_path_arrays", None)
    if cached is not None:
        return cached
    path = seg.path
    if path:
        arr = np.asarray(path, dtype=np.int64)
        xs, ys = arr[:, 0], arr[:, 1]
    else:
        xs = ys = np.zeros(0, dtype=np.int64)
    try:
        seg._path_arrays = (xs, ys)
    except (AttributeError, TypeError):
        pass
    return xs, ys


def routed_edge_rc(
    flat: FlatForest,
    technology: Technology,
    xy: np.ndarray,
    route_result: GlobalRouteResult,
    utilization: Optional[np.ndarray] = None,
    coupling_k: float = 0.0,
    default_h_layer: int = 2,
    default_v_layer: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge RC under a global-routing solution (vectorized).

    Edges with a routed segment use ``segment_rc`` (wire + via stack)
    with the congestion-coupling capacitance multiplier; edges without
    one fall back to the pre-route estimate, matching the reference.
    """
    edge_r, edge_c = preroute_edge_rc(
        flat, technology, xy, default_h_layer, default_v_layer
    )
    segments = route_result.segments
    if not segments:
        return edge_r, edge_c

    E = flat.n_edges
    rows: List[int] = []
    h_len: List[float] = []
    v_len: List[float] = []
    h_lay: List[int] = []
    v_lay: List[int] = []
    vias: List[int] = []
    path_rows: List[np.ndarray] = []
    path_xs: List[np.ndarray] = []
    path_ys: List[np.ndarray] = []
    path_counts = np.zeros(E, dtype=np.int64)

    row_of = flat.edge_row_of
    want_coupling = utilization is not None and coupling_k > 0
    for key, seg in segments.items():
        row = row_of.get(key)
        if row is None:
            continue
        rows.append(row)
        h_len.append(seg.h_length)
        v_len.append(seg.v_length)
        h_lay.append(seg.h_layer)
        v_lay.append(seg.v_layer)
        vias.append(seg.vias)
        if want_coupling:
            xs, ys = _seg_path_arrays(seg)
            if xs.size:
                path_rows.append(np.full(xs.size, row, dtype=np.int64))
                path_xs.append(xs)
                path_ys.append(ys)
                path_counts[row] = xs.size

    if not rows:
        return edge_r, edge_c

    rows_a = np.asarray(rows, dtype=np.int64)
    h_len_a = np.asarray(h_len, dtype=np.float64)
    v_len_a = np.asarray(v_len, dtype=np.float64)
    h_lay_a = np.asarray(h_lay, dtype=np.int64)
    v_lay_a = np.asarray(v_lay, dtype=np.int64)
    vias_a = np.asarray(vias, dtype=np.float64)

    res = np.array([l.res_per_um for l in technology.layers])
    cap = np.array([l.cap_per_um for l in technology.layers])
    via_r_unit, via_c_unit = _via_unit_tables(technology)

    r_seg = res[h_lay_a] * h_len_a + res[v_lay_a] * v_len_a + via_r_unit[
        h_lay_a, v_lay_a
    ] * vias_a
    c_seg = cap[h_lay_a] * h_len_a + cap[v_lay_a] * v_len_a + via_c_unit[
        h_lay_a, v_lay_a
    ] * vias_a

    if want_coupling and path_rows:
        per = np.concatenate(path_rows)
        gx = np.concatenate(path_xs)
        gy = np.concatenate(path_ys)
        util = np.asarray(utilization, dtype=np.float64)
        vals = util[
            np.minimum(gx, util.shape[0] - 1), np.minimum(gy, util.shape[1] - 1)
        ]
        tot = np.zeros(E, dtype=np.float64)
        np.add.at(tot, per, vals)
        factor = np.ones(E, dtype=np.float64)
        nz = path_counts > 0
        factor[nz] = 1.0 + coupling_k * tot[nz] / path_counts[nz]
        c_seg = c_seg * factor[rows_a]

    edge_r[rows_a] = r_seg
    edge_c[rows_a] = c_seg
    return edge_r, edge_c


# ----------------------------------------------------------------------
# Batched Elmore
# ----------------------------------------------------------------------
def elmore_forest(
    flat: FlatForest, edge_r: np.ndarray, edge_c: np.ndarray
) -> ElmoreState:
    """Elmore delay of every net in one batched depth-scan pass."""
    state = ElmoreState(
        node_cap=np.zeros(flat.n_nodes),
        subtree_cap=np.zeros(flat.n_nodes),
        delay=np.zeros(flat.n_nodes),
        total_cap=np.zeros(flat.n_trees),
        sink_delay=np.zeros(flat.sink_rows.size),
        sink_slew_deg=np.zeros(flat.sink_rows.size),
    )
    elmore_update(flat, edge_r, edge_c, state, trees=None)
    return state


def elmore_update(
    flat: FlatForest,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    state: ElmoreState,
    trees: Optional[np.ndarray] = None,
) -> None:
    """Recompute Elmore quantities, restricted to ``trees`` if given.

    Because trees occupy disjoint contiguous ranges and all scatter
    index arrays preserve ascending order under the tree subset, a
    partial update writes bit-identical values to a full recompute.
    """
    if trees is None:
        node_rows = slice(None)
        e_rows = slice(None)
        node_mask = None
        t_sel = slice(None)
        sink_sel = slice(None)
    else:
        trees = np.asarray(trees, dtype=np.int64)
        if trees.size == 0:
            return
        node_rows = flat.node_rows_of_trees(trees)
        e_rows = flat.edge_rows_of_trees(trees)
        node_mask = np.zeros(flat.n_nodes, dtype=bool)
        node_mask[node_rows] = True
        t_sel = trees
        sink_sel = flat.sink_rows_of_trees(trees)

    node_cap = state.node_cap
    subtree = state.subtree_cap
    delay = state.delay

    # Node capacitance: sink pin cap + half of each incident wire cap.
    node_cap[node_rows] = flat.node_base_cap[node_rows]
    half = edge_c[e_rows] * 0.5
    child = flat.edge_child[e_rows]
    np.add.at(node_cap, child, half)
    np.add.at(node_cap, flat.parent[child], half)

    # Downstream capacitance: children into parents, deepest level first.
    subtree[node_rows] = node_cap[node_rows]
    for lvl in reversed(flat.levels):
        sel = lvl if node_mask is None else lvl[node_mask[lvl]]
        if sel.size:
            np.add.at(subtree, flat.parent[sel], subtree[sel])

    # Elmore delay: accumulate R * C_sub along root-to-node paths.
    edge_r_of_child = np.zeros(flat.n_nodes) if trees is None else None
    if trees is None:
        edge_r_of_child[flat.edge_child] = edge_r
        era = edge_r_of_child
    else:
        era = np.zeros(flat.n_nodes)
        era[child] = edge_r[e_rows]
    delay[node_rows] = 0.0
    for lvl in flat.levels:
        sel = lvl if node_mask is None else lvl[node_mask[lvl]]
        if sel.size:
            delay[sel] = delay[flat.parent[sel]] + era[sel] * subtree[sel]

    state.total_cap[t_sel] = np.where(
        flat.tree_has_edges[t_sel],
        subtree[flat.tree_root[t_sel]],
        flat.lumped_cap[t_sel],
    )
    sd = delay[flat.sink_rows[sink_sel]]
    state.sink_delay[sink_sel] = sd
    state.sink_slew_deg[sink_sel] = (LN9 * sd) ** 2
