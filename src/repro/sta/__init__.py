"""Sign-off static timing analysis (Innovus ``timeDesign -postRoute``
substitute).

Given a netlist, a Steiner forest and (optionally) a global-route
solution, the engine extracts per-net RC trees, computes Elmore wire
delays with PERI slew degradation, looks cell delays up in the NLDM
library, and runs a PERT (topological) traversal to produce per-pin
arrival times and endpoint slacks.  WNS / TNS / #Vios follow Eq. (1)
of the paper.

Two operating points:

* ``route_result=None`` — *pre-route* timing on raw Steiner geometry
  with a default layer (what early-stage estimators see);
* ``route_result=<GlobalRouteResult>`` — *sign-off* timing on routed
  lengths, assigned layers and vias (the label oracle for the GNN and
  the metric reported in all tables).
"""

from repro.sta.engine import STAEngine, TimingReport
from repro.sta.incremental import IncrementalSTA
from repro.sta.rctree import NetTiming, compute_net_timing
from repro.sta.metrics import timing_metrics
from repro.sta.paths import TimingPath, extract_critical_paths, trace_path
from repro.sta.hold import HoldReport, run_hold_analysis

__all__ = [
    "STAEngine",
    "TimingReport",
    "IncrementalSTA",
    "NetTiming",
    "compute_net_timing",
    "timing_metrics",
    "TimingPath",
    "extract_critical_paths",
    "trace_path",
    "HoldReport",
    "run_hold_analysis",
]
