"""PERT-traversal timing engine.

One pass over the pins in topological order computes lumped
(worst-of-rise/fall) arrival times and slews:

* startpoints (PIs, register CK pins) get launch values from the clock
  spec;
* a cell output's arrival is the max over input arcs of
  ``arrival(in) + NLDM_delay(slew(in), load)``;
* a net sink's arrival is ``arrival(driver) + elmore(sink)`` with PERI
  slew degradation.

Endpoint slacks, WNS, TNS and the violation count follow Eq. (1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist, PinDirection
from repro.sta.rctree import compute_net_timing
from repro.steiner.forest import SteinerForest

DEFAULT_INPUT_SLEW = 0.08  # ns at startpoints


@dataclass
class TimingReport:
    """Full result of one STA run."""

    arrival: np.ndarray  # ns per pin (NaN where unreached)
    slew: np.ndarray  # ns per pin
    required: Dict[int, float]  # endpoint pin -> required time
    slack: Dict[int, float]  # endpoint pin -> slack
    wns: float
    tns: float
    num_violations: int
    net_load: Dict[int, float] = field(default_factory=dict)  # net -> cap (pF)

    def endpoint_arrivals(self) -> Dict[int, float]:
        return {p: float(self.arrival[p]) for p in self.slack}

    def worst_endpoint(self) -> int:
        return min(self.slack, key=self.slack.get)


class STAEngine:
    """Reusable engine bound to a netlist; run per Steiner solution."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.technology = netlist.technology
        self.library = netlist.library
        self.clock = netlist.clock
        self._topo = netlist.topological_pin_order()
        self._startpoints = set(netlist.startpoints())
        self._endpoints = netlist.endpoints()
        # Pre-index: output pin -> (cell, arcs grouped by input pin).
        self._cell_arcs: Dict[int, List[Tuple[int, object]]] = {}
        for cell in netlist.cells:
            ct = cell.cell_type
            for out_name in ct.output_pins:
                out_pin = cell.pin_indices[out_name]
                arcs = []
                for arc in ct.arcs_to(out_name):
                    in_pin = cell.pin_indices[arc.from_pin]
                    arcs.append((in_pin, arc))
                self._cell_arcs[out_pin] = arcs
        # Clock pins (ideal network).
        self._clock_pins = set()
        for cell in netlist.registers():
            self._clock_pins.add(cell.pin_indices[cell.cell_type.clock_pin])
        # Sink pin -> driving net.
        self._driver_of: Dict[int, int] = {}
        for net in netlist.nets:
            for s in net.sinks:
                self._driver_of[s] = net.index
        # Endpoint required times.
        self._required: Dict[int, float] = {}
        for cell in netlist.registers():
            ct = cell.cell_type
            for in_name in ct.input_pins:
                if in_name != ct.clock_pin:
                    self._required[cell.pin_indices[in_name]] = self.clock.required_at_register(
                        ct.setup_time
                    )
        for port in netlist.primary_outputs():
            self._required[port.index] = self.clock.required_at_output()

    # ------------------------------------------------------------------
    #: coupling-capacitance coefficient: c_eff = c * (1 + K * utilization)
    COUPLING_K = 0.8

    def run(
        self,
        forest: SteinerForest,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> TimingReport:
        """Time the design under the given Steiner forest / routes.

        ``utilization`` is the post-route GCell congestion field; when
        provided, wire capacitance picks up a coupling term that grows
        with local density (see ``repro.sta.rctree._coupling_factor``).
        """
        netlist = self.netlist
        n_pins = netlist.num_pins
        arrival = np.full(n_pins, np.nan)
        slew = np.full(n_pins, DEFAULT_INPUT_SLEW)

        # ---- per-net wire timing ----
        pin_caps = {p.index: p.cap for p in netlist.pins if p.direction == PinDirection.INPUT}
        net_timing: Dict[int, object] = {}
        net_load: Dict[int, float] = {}
        tree_idx_of_net: Dict[int, int] = {}
        for t_idx, tree in enumerate(forest.trees):
            sink_caps = {p: pin_caps.get(p, 0.0) for p in tree.pin_ids[1:]}
            nt = compute_net_timing(
                tree,
                sink_caps,
                self.technology,
                route_result=route_result,
                tree_idx=t_idx,
                utilization=utilization,
                coupling_k=self.COUPLING_K,
            )
            net_timing[tree.net_index] = nt
            net_load[tree.net_index] = nt.total_cap
            tree_idx_of_net[tree.net_index] = t_idx

        # Nets without trees (degenerate): zero wire delay, lumped caps.
        for net in netlist.nets:
            if net.index not in net_timing:
                total = sum(pin_caps.get(s, 0.0) for s in net.sinks)
                net_load[net.index] = total

        # ---- launch values ----
        launch = self.clock.launch_time()
        for port in netlist.primary_inputs():
            arrival[port.index] = launch + self.clock.input_delay
            slew[port.index] = DEFAULT_INPUT_SLEW
        for ck_pin in self._clock_pins:
            arrival[ck_pin] = launch
            slew[ck_pin] = DEFAULT_INPUT_SLEW

        # ---- PERT traversal ----
        for pin_idx in self._topo:
            pin = netlist.pins[pin_idx]
            if pin_idx in self._clock_pins or (pin.is_port and pin.direction == PinDirection.OUTPUT):
                continue  # launch values already set
            if pin.direction == PinDirection.OUTPUT:
                arcs = self._cell_arcs.get(pin_idx, [])
                net_idx = netlist.pin_net_map()[pin_idx]
                load = net_load.get(int(net_idx), 0.0) if net_idx >= 0 else 0.0
                best_arr = -np.inf
                best_slew = DEFAULT_INPUT_SLEW
                for in_pin, arc in arcs:
                    a_in = arrival[in_pin]
                    if np.isnan(a_in):
                        continue
                    d = arc.delay.lookup(float(slew[in_pin]), load)
                    a_out = a_in + d
                    if a_out > best_arr:
                        best_arr = a_out
                        best_slew = arc.output_slew.lookup(float(slew[in_pin]), load)
                if best_arr > -np.inf:
                    arrival[pin_idx] = best_arr
                    slew[pin_idx] = best_slew
            else:
                # Net sink: wire delay from the driving net.
                net_idx = self._driver_of.get(pin_idx)
                if net_idx is None:
                    continue
                nt = net_timing.get(net_idx)
                driver = netlist.nets[net_idx].driver
                a_drv = arrival[driver]
                if np.isnan(a_drv):
                    continue
                if nt is None:
                    arrival[pin_idx] = a_drv
                    slew[pin_idx] = slew[driver]
                else:
                    wire_d = nt.sink_delay.get(pin_idx, 0.0)
                    arrival[pin_idx] = a_drv + wire_d
                    slew[pin_idx] = math.sqrt(
                        float(slew[driver]) ** 2 + nt.sink_slew_degradation.get(pin_idx, 0.0)
                    )

        # ---- slacks ----
        slack: Dict[int, float] = {}
        for ep in self._endpoints:
            req = self._required[ep]
            arr = arrival[ep]
            slack[ep] = float(req - arr) if not np.isnan(arr) else float(req - launch)
        wns = min(slack.values()) if slack else 0.0
        tns = sum(min(0.0, s) for s in slack.values())
        num_vios = sum(1 for s in slack.values() if s < 0.0)

        return TimingReport(
            arrival=arrival,
            slew=slew,
            required=dict(self._required),
            slack=slack,
            wns=float(wns),
            tns=float(tns),
            num_violations=num_vios,
            net_load=net_load,
        )
