"""PERT-traversal timing engine.

One pass over the pins in topological order computes lumped
(worst-of-rise/fall) arrival times and slews:

* startpoints (PIs, register CK pins) get launch values from the clock
  spec;
* a cell output's arrival is the max over input arcs of
  ``arrival(in) + NLDM_delay(slew(in), load)``;
* a net sink's arrival is ``arrival(driver) + elmore(sink)`` with PERI
  slew degradation.

Endpoint slacks, WNS, TNS and the violation count follow Eq. (1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist, PinDirection
from repro.obs import get_telemetry
from repro.sta import flat as flatmod
from repro.sta.rctree import compute_net_timing
from repro.steiner.forest import SteinerForest

DEFAULT_INPUT_SLEW = 0.08  # ns at startpoints


@dataclass
class TimingReport:
    """Full result of one STA run."""

    arrival: np.ndarray  # ns per pin (NaN where unreached)
    slew: np.ndarray  # ns per pin
    required: Dict[int, float]  # endpoint pin -> required time
    slack: Dict[int, float]  # endpoint pin -> slack
    wns: float
    tns: float
    num_violations: int
    net_load: Dict[int, float] = field(default_factory=dict)  # net -> cap (pF)

    def endpoint_arrivals(self) -> Dict[int, float]:
        return {p: float(self.arrival[p]) for p in self.slack}

    def worst_endpoint(self) -> int:
        return min(self.slack, key=self.slack.get)


@dataclass
class PertLevel:
    """Arcs whose destination pins sit at one PERT level.

    Cell arcs are grouped contiguously per destination pin (CSR via
    ``cell_start``), arcs within a destination in library order — the
    order the reference scalar loop uses for its strict-``>`` max, so
    first-occurrence winner selection reproduces its tie-breaking.
    """

    net_src: np.ndarray  # (n_net_arcs,) driver pin
    net_dst: np.ndarray  # (n_net_arcs,) sink pin
    net_net: np.ndarray  # (n_net_arcs,) net index
    cell_in: np.ndarray  # (n_cell_arcs,) input pin per arc
    cell_dest: np.ndarray  # (n_dests,) output pin per destination
    cell_start: np.ndarray  # (n_dests+1,) CSR into arc arrays
    cell_counts: np.ndarray  # (n_dests,) arcs per destination
    cell_dest_net: np.ndarray  # (n_dests,) driven net (-1 if none)
    arc_groups: List[Tuple[object, np.ndarray]]  # (TimingArc, arc rows)
    arc_group_id: np.ndarray  # (n_cell_arcs,) index into arc_groups


class LevelizedPins:
    """Static per-netlist PERT structure shared by the flat kernel and
    the incremental engine: arc arrays grouped by destination level."""

    def __init__(self, engine: "STAEngine") -> None:
        netlist = engine.netlist
        n_pins = netlist.num_pins
        self.n_pins = n_pins
        self.n_nets = netlist.num_nets
        self.pin_caps: Dict[int, float] = {
            p.index: p.cap
            for p in netlist.pins
            if p.direction == PinDirection.INPUT
        }
        # Treeless nets: lumped sum of sink pin caps (static), summed in
        # sink order to match the reference accumulation exactly.
        lumped = np.zeros(self.n_nets, dtype=np.float64)
        for net in netlist.nets:
            total = 0.0
            for s in net.sinks:
                total += self.pin_caps.get(s, 0.0)
            lumped[net.index] = total
        self.lumped_net_cap = lumped

        skip = set(engine._clock_pins)
        for p in netlist.pins:
            if p.is_port and p.direction == PinDirection.OUTPUT:
                skip.add(p.index)

        net_arcs: List[Tuple[int, int, int]] = []
        for net in netlist.nets:
            for s in net.sinks:
                if s not in skip:
                    net_arcs.append((net.driver, s, net.index))
        pnm = netlist.pin_net_map()
        cell_dests: List[Tuple[int, list, int]] = []
        for out_pin in sorted(engine._cell_arcs):
            arcs = engine._cell_arcs[out_pin]
            if out_pin in skip or not arcs:
                continue
            cell_dests.append((out_pin, arcs, int(pnm[out_pin])))

        # Longest-path level per pin: every arc crosses at least one
        # level boundary, so processing level-by-level is dependency-safe.
        level = np.zeros(n_pins, dtype=np.int64)
        succ: List[List[int]] = [[] for _ in range(n_pins)]
        for u, v, _ in net_arcs:
            succ[u].append(v)
        for out_pin, arcs, _ in cell_dests:
            for in_pin, _arc in arcs:
                succ[in_pin].append(out_pin)
        for u in engine._topo:
            lu = int(level[u])
            for v in succ[u]:
                if level[v] <= lu:
                    level[v] = lu + 1

        net_src = np.array([a[0] for a in net_arcs], dtype=np.int64)
        net_dst = np.array([a[1] for a in net_arcs], dtype=np.int64)
        net_net = np.array([a[2] for a in net_arcs], dtype=np.int64)
        net_lvl = level[net_dst] if net_dst.size else net_dst
        dest_lvl = {out: int(level[out]) for out, _, _ in cell_dests}
        max_lvl = 0
        if net_dst.size:
            max_lvl = int(net_lvl.max())
        if dest_lvl:
            max_lvl = max(max_lvl, max(dest_lvl.values()))

        self.levels: List[PertLevel] = []
        for L in range(1, max_lvl + 1):
            if net_dst.size:
                m = net_lvl == L
                l_src, l_dst, l_net = net_src[m], net_dst[m], net_net[m]
            else:
                l_src = l_dst = l_net = np.zeros(0, dtype=np.int64)
            c_in: List[int] = []
            c_dest: List[int] = []
            c_counts: List[int] = []
            c_net: List[int] = []
            groups: Dict[int, Tuple[object, List[int]]] = {}
            for out_pin, arcs, net_idx in cell_dests:
                if dest_lvl[out_pin] != L:
                    continue
                c_dest.append(out_pin)
                c_counts.append(len(arcs))
                c_net.append(net_idx)
                for in_pin, arc in arcs:
                    pos = len(c_in)
                    c_in.append(in_pin)
                    entry = groups.setdefault(id(arc), (arc, []))
                    entry[1].append(pos)
            counts = np.array(c_counts, dtype=np.int64)
            start = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=start[1:])
            arc_groups = [
                (arc, np.array(pos, dtype=np.int64))
                for arc, pos in groups.values()
            ]
            group_id = np.zeros(len(c_in), dtype=np.int64)
            for g, (_arc, pos) in enumerate(arc_groups):
                group_id[pos] = g
            self.levels.append(
                PertLevel(
                    net_src=l_src,
                    net_dst=l_dst,
                    net_net=l_net,
                    cell_in=np.array(c_in, dtype=np.int64),
                    cell_dest=np.array(c_dest, dtype=np.int64),
                    cell_start=start,
                    cell_counts=counts,
                    cell_dest_net=np.array(c_net, dtype=np.int64),
                    arc_groups=arc_groups,
                    arc_group_id=group_id,
                )
            )

        self.endpoints_arr = np.array(engine._endpoints, dtype=np.int64)
        self.required_arr = np.array(
            [engine._required[ep] for ep in engine._endpoints], dtype=np.float64
        )
        # NLDM tables generated from one grid share their axis arrays;
        # when every table in the design does, interpolation indices and
        # weights can be computed once per level instead of per table.
        self.shared_axes: Optional[Tuple[np.ndarray, np.ndarray]] = None
        axes = None
        shared = True
        for lv in self.levels:
            for arc, _pos in lv.arc_groups:
                for tbl in (arc.delay, arc.output_slew):
                    key = (tbl.slew_axis, tbl.load_axis)
                    if axes is None:
                        axes = key
                    elif not (
                        np.array_equal(axes[0], key[0])
                        and np.array_equal(axes[1], key[1])
                    ):
                        shared = False
                if not shared:
                    break
            if not shared:
                break
        if shared and axes is not None:
            self.shared_axes = axes
        # Sinks of every net (used by the incremental engine to seed
        # recomputation when a net's wire timing changes).
        self.net_driver = np.array(
            [net.driver for net in netlist.nets], dtype=np.int64
        )


def propagate_levels(
    pert: LevelizedPins,
    arrival: np.ndarray,
    slew: np.ndarray,
    wire_delay: np.ndarray,
    wire_slew_deg: np.ndarray,
    net_load: np.ndarray,
    net_has_tree: np.ndarray,
) -> None:
    """One full vectorized PERT pass over all levels (in place)."""
    for lv in pert.levels:
        if lv.net_dst.size:
            a_drv = arrival[lv.net_src]
            ok = ~np.isnan(a_drv)
            dst = lv.net_dst[ok]
            arrival[dst] = a_drv[ok] + wire_delay[dst]
            s_drv = slew[lv.net_src[ok]]
            has_t = net_has_tree[lv.net_net[ok]]
            slew[dst] = np.where(
                has_t, np.sqrt(s_drv * s_drv + wire_slew_deg[dst]), s_drv
            )
        if lv.cell_dest.size:
            best, winner_slew, valid = _eval_cell_arcs(
                pert, lv, arrival, slew, net_load,
                lv.cell_dest_net, lv.cell_start, lv.cell_counts, None,
            )
            dsts = lv.cell_dest[valid]
            arrival[dsts] = best[valid]
            slew[dsts] = winner_slew[valid]


def _eval_cell_arcs(
    pert: LevelizedPins,
    lv: PertLevel,
    arrival: np.ndarray,
    slew: np.ndarray,
    net_load: np.ndarray,
    dest_net: np.ndarray,
    start: np.ndarray,
    counts: np.ndarray,
    arc_rows: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Max-arrival/winner-slew per destination over NLDM cell arcs.

    ``arc_rows`` restricts evaluation to a subset of the level's arc
    rows (incremental path); ``start``/``counts`` must then be the CSR
    of that subset.  Returns (best_arrival, winner_slew, valid_mask)
    aligned with the destinations described by ``start``.
    """
    if arc_rows is None:
        cell_in = lv.cell_in
        n_arc = cell_in.size
        group_iter = lv.arc_groups
    else:
        cell_in = lv.cell_in[arc_rows]
        n_arc = arc_rows.size
        # Group the selected rows by timing arc without touching any
        # level-sized scratch array (the incremental path selects few).
        gids = lv.arc_group_id[arc_rows]
        group_iter = []
        if gids.size:
            order = np.argsort(gids, kind="stable")
            sg = gids[order]
            bnd = np.flatnonzero(sg[1:] != sg[:-1]) + 1
            g_starts = np.concatenate((np.zeros(1, dtype=np.int64), bnd))
            g_ends = np.append(bnd, sg.size)
            group_iter = [
                (lv.arc_groups[int(sg[s])][0], order[s:e])
                for s, e in zip(g_starts, g_ends)
            ]
    a_in = arrival[cell_in]
    s_in = slew[cell_in]
    safe_net = np.maximum(dest_net, 0)
    load_dest = np.where(dest_net >= 0, net_load[safe_net], 0.0)
    load_arc = np.repeat(load_dest, counts)
    delays = np.empty(n_arc, dtype=np.float64)
    oslews = np.empty(n_arc, dtype=np.float64)
    if pert.shared_axes is not None:
        # Same math as LookupTable.lookup_many (clamped bilinear, same
        # operation order term for term) with the axis work hoisted out
        # of the per-table loop.
        sa, la = pert.shared_axes
        s = np.minimum(np.maximum(s_in, sa[0]), sa[-1])
        c = np.minimum(np.maximum(load_arc, la[0]), la[-1])
        i = np.minimum(np.maximum(np.searchsorted(sa, s) - 1, 0), sa.size - 2)
        j = np.minimum(np.maximum(np.searchsorted(la, c) - 1, 0), la.size - 2)
        s0, s1 = sa[i], sa[i + 1]
        c0, c1 = la[j], la[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        omts = 1 - ts
        omtc = 1 - tc
        for arc, pos in group_iter:
            ip, jp = i[pos], j[pos]
            tsp, tcp = ts[pos], tc[pos]
            omtsp, omtcp = omts[pos], omtc[pos]
            for tbl, out in ((arc.delay, delays), (arc.output_slew, oslews)):
                v = tbl.values
                out[pos] = (
                    v[ip, jp] * omtsp * omtcp
                    + v[ip + 1, jp] * tsp * omtcp
                    + v[ip, jp + 1] * omtsp * tcp
                    + v[ip + 1, jp + 1] * tsp * tcp
                )
    else:
        for arc, pos in group_iter:
            delays[pos] = arc.delay.lookup_many(s_in[pos], load_arc[pos])
            oslews[pos] = arc.output_slew.lookup_many(s_in[pos], load_arc[pos])
    cand = np.where(np.isnan(a_in), -np.inf, a_in + delays)
    seg_starts = start[:-1]
    best = np.maximum.reduceat(cand, seg_starts)
    # First arc achieving the max wins ties (reference uses strict >).
    row_ids = np.arange(n_arc, dtype=np.int64)
    masked = np.where(cand == np.repeat(best, counts), row_ids, n_arc)
    first = np.minimum.reduceat(masked, seg_starts)
    valid = best > -np.inf
    winner_slew = np.full(best.size, DEFAULT_INPUT_SLEW, dtype=np.float64)
    winner_slew[valid] = oslews[first[valid]]
    return best, winner_slew, valid


class STAEngine:
    """Reusable engine bound to a netlist; run per Steiner solution.

    ``telemetry`` pins this engine's observations to one run; when
    omitted every query resolves the process-global telemetry, so a
    ``telemetry_session`` installed later still sees the counters.
    """

    def __init__(self, netlist: Netlist, telemetry=None) -> None:
        self.telemetry = telemetry
        self.netlist = netlist
        self.technology = netlist.technology
        self.library = netlist.library
        self.clock = netlist.clock
        self._topo = netlist.topological_pin_order()
        self._startpoints = set(netlist.startpoints())
        self._endpoints = netlist.endpoints()
        # Pre-index: output pin -> (cell, arcs grouped by input pin).
        self._cell_arcs: Dict[int, List[Tuple[int, object]]] = {}
        for cell in netlist.cells:
            ct = cell.cell_type
            for out_name in ct.output_pins:
                out_pin = cell.pin_indices[out_name]
                arcs = []
                for arc in ct.arcs_to(out_name):
                    in_pin = cell.pin_indices[arc.from_pin]
                    arcs.append((in_pin, arc))
                self._cell_arcs[out_pin] = arcs
        # Clock pins (ideal network).
        self._clock_pins = set()
        for cell in netlist.registers():
            self._clock_pins.add(cell.pin_indices[cell.cell_type.clock_pin])
        # Sink pin -> driving net.
        self._driver_of: Dict[int, int] = {}
        for net in netlist.nets:
            for s in net.sinks:
                self._driver_of[s] = net.index
        # Endpoint required times.
        self._required: Dict[int, float] = {}
        for cell in netlist.registers():
            ct = cell.cell_type
            for in_name in ct.input_pins:
                if in_name != ct.clock_pin:
                    self._required[cell.pin_indices[in_name]] = self.clock.required_at_register(
                        ct.setup_time
                    )
        for port in netlist.primary_outputs():
            self._required[port.index] = self.clock.required_at_output()
        self._pert_struct: Optional[LevelizedPins] = None

    # ------------------------------------------------------------------
    #: coupling-capacitance coefficient: c_eff = c * (1 + K * utilization)
    COUPLING_K = 0.8

    #: kernel used when ``run`` is called without an explicit choice:
    #: "flat" (vectorized, default) or "reference" (scalar loops).
    default_kernel = "flat"

    def pert(self) -> LevelizedPins:
        """Levelized arc structure (built lazily, once per netlist)."""
        if self._pert_struct is None:
            self._pert_struct = LevelizedPins(self)
        return self._pert_struct

    def run(
        self,
        forest: SteinerForest,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
        kernel: Optional[str] = None,
    ) -> TimingReport:
        """Time the design under the given Steiner forest / routes.

        ``utilization`` is the post-route GCell congestion field; when
        provided, wire capacitance picks up a coupling term that grows
        with local density (see ``repro.sta.rctree._coupling_factor``).
        ``kernel`` selects the implementation: ``"flat"`` runs the
        vectorized batched kernels (docs/PERFORMANCE.md), ``"reference"``
        the original per-net/per-pin scalar loops; both agree to within
        float re-association noise (see tests/test_flat_sta.py).
        """
        k = kernel or self.default_kernel
        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        if k == "flat":
            if tel.enabled:
                tel.count("sta.runs_flat")
            return self._run_flat(forest, route_result, utilization)
        if k == "reference":
            if tel.enabled:
                tel.count("sta.runs_reference")
            return self._run_reference(forest, route_result, utilization)
        raise ValueError(f"unknown STA kernel {k!r}")

    # -- vectorized path ------------------------------------------------
    def _run_flat(
        self,
        forest: SteinerForest,
        route_result: Optional[GlobalRouteResult],
        utilization: Optional[np.ndarray],
    ) -> TimingReport:
        pert = self.pert()
        flat = flatmod.flat_forest_of(forest, pert.pin_caps)
        xy = flatmod.node_positions(flat, forest.get_steiner_coords())
        if route_result is not None:
            edge_r, edge_c = flatmod.routed_edge_rc(
                flat, self.technology, xy, route_result,
                utilization, self.COUPLING_K,
            )
        else:
            edge_r, edge_c = flatmod.preroute_edge_rc(flat, self.technology, xy)
        elmore = flatmod.elmore_forest(flat, edge_r, edge_c)

        n_pins = pert.n_pins
        wire_delay = np.zeros(n_pins)
        wire_deg = np.zeros(n_pins)
        wire_delay[flat.sink_pin] = elmore.sink_delay
        wire_deg[flat.sink_pin] = elmore.sink_slew_deg
        net_load = pert.lumped_net_cap.copy()
        net_load[flat.net_of_tree] = elmore.total_cap
        net_has_tree = np.zeros(pert.n_nets, dtype=bool)
        net_has_tree[flat.net_of_tree] = True

        arrival, slew = self.launch_arrays()
        propagate_levels(
            pert, arrival, slew, wire_delay, wire_deg, net_load, net_has_tree
        )
        return self.finalize_report(arrival, slew, net_load)

    def launch_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fresh (arrival, slew) arrays with launch values applied."""
        n_pins = self.netlist.num_pins
        arrival = np.full(n_pins, np.nan)
        slew = np.full(n_pins, DEFAULT_INPUT_SLEW)
        launch = self.clock.launch_time()
        for port in self.netlist.primary_inputs():
            arrival[port.index] = launch + self.clock.input_delay
        for ck_pin in self._clock_pins:
            arrival[ck_pin] = launch
        return arrival, slew

    def finalize_report(
        self,
        arrival: np.ndarray,
        slew: np.ndarray,
        net_load: np.ndarray,
        copy_arrays: bool = False,
    ) -> TimingReport:
        """Endpoint slacks / WNS / TNS from propagated arrays."""
        pert = self.pert()
        launch = self.clock.launch_time()
        arr_ep = arrival[pert.endpoints_arr]
        nan_ep = np.isnan(arr_ep)
        svals = np.where(nan_ep, pert.required_arr - launch, pert.required_arr - arr_ep)
        slack = {
            int(ep): float(s) for ep, s in zip(pert.endpoints_arr, svals)
        }
        wns = float(svals.min()) if svals.size else 0.0
        neg = np.minimum(svals, 0.0)
        tns = float(neg.sum()) if svals.size else 0.0
        num_vios = int(np.count_nonzero(svals < 0.0))
        return TimingReport(
            arrival=arrival.copy() if copy_arrays else arrival,
            slew=slew.copy() if copy_arrays else slew,
            required=dict(self._required),
            slack=slack,
            wns=wns,
            tns=tns,
            num_violations=num_vios,
            net_load={i: float(v) for i, v in enumerate(net_load)},
        )

    # -- reference scalar path -----------------------------------------
    def _run_reference(
        self,
        forest: SteinerForest,
        route_result: Optional[GlobalRouteResult] = None,
        utilization: Optional[np.ndarray] = None,
    ) -> TimingReport:
        netlist = self.netlist
        n_pins = netlist.num_pins
        arrival = np.full(n_pins, np.nan)
        slew = np.full(n_pins, DEFAULT_INPUT_SLEW)

        # ---- per-net wire timing ----
        pin_caps = {p.index: p.cap for p in netlist.pins if p.direction == PinDirection.INPUT}
        net_timing: Dict[int, object] = {}
        net_load: Dict[int, float] = {}
        tree_idx_of_net: Dict[int, int] = {}
        for t_idx, tree in enumerate(forest.trees):
            sink_caps = {p: pin_caps.get(p, 0.0) for p in tree.pin_ids[1:]}
            nt = compute_net_timing(
                tree,
                sink_caps,
                self.technology,
                route_result=route_result,
                tree_idx=t_idx,
                utilization=utilization,
                coupling_k=self.COUPLING_K,
            )
            net_timing[tree.net_index] = nt
            net_load[tree.net_index] = nt.total_cap
            tree_idx_of_net[tree.net_index] = t_idx

        # Nets without trees (degenerate): zero wire delay, lumped caps.
        for net in netlist.nets:
            if net.index not in net_timing:
                total = sum(pin_caps.get(s, 0.0) for s in net.sinks)
                net_load[net.index] = total

        # ---- launch values ----
        launch = self.clock.launch_time()
        for port in netlist.primary_inputs():
            arrival[port.index] = launch + self.clock.input_delay
            slew[port.index] = DEFAULT_INPUT_SLEW
        for ck_pin in self._clock_pins:
            arrival[ck_pin] = launch
            slew[ck_pin] = DEFAULT_INPUT_SLEW

        # ---- PERT traversal ----
        for pin_idx in self._topo:
            pin = netlist.pins[pin_idx]
            if pin_idx in self._clock_pins or (pin.is_port and pin.direction == PinDirection.OUTPUT):
                continue  # launch values already set
            if pin.direction == PinDirection.OUTPUT:
                arcs = self._cell_arcs.get(pin_idx, [])
                net_idx = netlist.pin_net_map()[pin_idx]
                load = net_load.get(int(net_idx), 0.0) if net_idx >= 0 else 0.0
                best_arr = -np.inf
                best_slew = DEFAULT_INPUT_SLEW
                for in_pin, arc in arcs:
                    a_in = arrival[in_pin]
                    if np.isnan(a_in):
                        continue
                    d = arc.delay.lookup(float(slew[in_pin]), load)
                    a_out = a_in + d
                    if a_out > best_arr:
                        best_arr = a_out
                        best_slew = arc.output_slew.lookup(float(slew[in_pin]), load)
                if best_arr > -np.inf:
                    arrival[pin_idx] = best_arr
                    slew[pin_idx] = best_slew
            else:
                # Net sink: wire delay from the driving net.
                net_idx = self._driver_of.get(pin_idx)
                if net_idx is None:
                    continue
                nt = net_timing.get(net_idx)
                driver = netlist.nets[net_idx].driver
                a_drv = arrival[driver]
                if np.isnan(a_drv):
                    continue
                if nt is None:
                    arrival[pin_idx] = a_drv
                    slew[pin_idx] = slew[driver]
                else:
                    wire_d = nt.sink_delay.get(pin_idx, 0.0)
                    arrival[pin_idx] = a_drv + wire_d
                    slew[pin_idx] = math.sqrt(
                        float(slew[driver]) ** 2 + nt.sink_slew_degradation.get(pin_idx, 0.0)
                    )

        # ---- slacks ----
        slack: Dict[int, float] = {}
        for ep in self._endpoints:
            req = self._required[ep]
            arr = arrival[ep]
            slack[ep] = float(req - arr) if not np.isnan(arr) else float(req - launch)
        wns = min(slack.values()) if slack else 0.0
        tns = sum(min(0.0, s) for s in slack.values())
        num_vios = sum(1 for s in slack.values() if s < 0.0)

        return TimingReport(
            arrival=arrival,
            slew=slew,
            required=dict(self._required),
            slack=slack,
            wns=float(wns),
            tns=float(tns),
            num_violations=num_vios,
            net_load=net_load,
        )
