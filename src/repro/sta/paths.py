"""Critical-path extraction (the ``report_timing`` of this engine).

Given a :class:`TimingReport` and the netlist, traces the worst timing
paths endpoint-to-startpoint by walking arrival-time predecessors, and
formats them the way sign-off tools print path reports: one line per
pin with incremental and cumulative delay.

Used by examples and by tests that check path-level consistency (the
sum of increments must equal the endpoint arrival).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist, PinDirection
from repro.sta.engine import TimingReport


@dataclass
class PathStep:
    """One pin on a timing path."""

    pin: int
    pin_name: str
    arrival: float
    increment: float
    kind: str  # "launch", "cell", "net"


@dataclass
class TimingPath:
    """A start-to-end timing path with its slack."""

    endpoint: int
    slack: float
    steps: List[PathStep]

    @property
    def startpoint(self) -> int:
        return self.steps[0].pin

    @property
    def delay(self) -> float:
        return self.steps[-1].arrival - self.steps[0].arrival

    def format(self) -> str:
        lines = [
            f"Path to {self.steps[-1].pin_name}  slack {self.slack:+.4f} ns",
            f"  {'pin':40s} {'incr':>8s} {'arrival':>9s}  kind",
        ]
        for s in self.steps:
            lines.append(
                f"  {s.pin_name:40s} {s.increment:8.4f} {s.arrival:9.4f}  {s.kind}"
            )
        return "\n".join(lines)


def extract_critical_paths(
    netlist: Netlist,
    report: TimingReport,
    n_paths: int = 5,
) -> List[TimingPath]:
    """The ``n_paths`` worst endpoint paths, most negative slack first."""
    ranked = sorted(report.slack.items(), key=lambda kv: kv[1])[:n_paths]
    return [trace_path(netlist, report, ep) for ep, _ in ranked]


def trace_path(netlist: Netlist, report: TimingReport, endpoint: int) -> TimingPath:
    """Walk backward from ``endpoint`` along worst-arrival predecessors."""
    driver_of: Dict[int, int] = {}
    for net in netlist.nets:
        for s in net.sinks:
            driver_of[s] = net.driver
    # Output pin -> candidate (input pin, arc) predecessors.
    cell_preds: Dict[int, List[int]] = {}
    for cell in netlist.cells:
        ct = cell.cell_type
        if ct.is_sequential:
            for out in ct.output_pins:
                cell_preds[cell.pin_indices[out]] = [cell.pin_indices[ct.clock_pin]]
        else:
            for out in ct.output_pins:
                cell_preds[cell.pin_indices[out]] = [
                    cell.pin_indices[i] for i in ct.input_pins
                ]

    startpoints = set(netlist.startpoints())
    clock_pins = {
        c.pin_indices[c.cell_type.clock_pin] for c in netlist.registers()
    }
    chain: List[Tuple[int, str]] = [(endpoint, "end")]
    current = endpoint
    guard = 0
    while guard < 10 * netlist.num_pins:
        guard += 1
        pin = netlist.pins[current]
        if current in clock_pins or (pin.is_port and pin.direction == PinDirection.OUTPUT):
            break  # reached a launch point
        if pin.direction == PinDirection.INPUT and current in driver_of:
            current = driver_of[current]
            chain.append((current, "net"))
            continue
        if pin.direction == PinDirection.OUTPUT and current in cell_preds:
            # Worst predecessor: the input whose arrival is largest
            # (ties broken deterministically by pin index).
            preds = cell_preds[current]
            arrivals = [
                report.arrival[p] if np.isfinite(report.arrival[p]) else -np.inf
                for p in preds
            ]
            current = preds[int(np.argmax(arrivals))]
            chain.append((current, "cell"))
            continue
        break  # dangling input or PI reached

    chain.reverse()
    steps: List[PathStep] = []
    prev_arrival: Optional[float] = None
    for pin_idx, _ in chain:
        arrival = float(report.arrival[pin_idx])
        incr = 0.0 if prev_arrival is None else arrival - prev_arrival
        if prev_arrival is None:
            label = "launch"
        else:
            pin = netlist.pins[pin_idx]
            label = "net" if pin.direction == PinDirection.INPUT else "cell"
        steps.append(
            PathStep(
                pin=pin_idx,
                pin_name=netlist.pins[pin_idx].name,
                arrival=arrival,
                increment=incr,
                kind=label,
            )
        )
        prev_arrival = arrival
    return TimingPath(
        endpoint=endpoint, slack=float(report.slack[endpoint]), steps=steps
    )
