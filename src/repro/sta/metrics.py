"""Timing metric helpers shared by STA, the GNN penalty and reporting."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np


def timing_metrics(slacks: Iterable[float]) -> Tuple[float, float, int]:
    """(WNS, TNS, #violations) from endpoint slacks, Eq. (1)."""
    arr = np.asarray(list(slacks), dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0, 0
    wns = float(arr.min())
    tns = float(np.minimum(arr, 0.0).sum())
    vios = int((arr < 0.0).sum())
    return wns, tns, vios


def slacks_from_arrivals(
    arrivals: Dict[int, float], required: Dict[int, float]
) -> Dict[int, float]:
    """Endpoint slack map from arrival and required maps."""
    return {p: required[p] - arrivals[p] for p in required if p in arrivals}


def improvement_ratio(baseline: float, optimized: float) -> float:
    """Paper-style ratio for negative metrics: optimized / baseline.

    Both WNS and TNS are negative on violating designs; a ratio below
    1.0 means the optimized flow is better (less negative).  Returns
    1.0 when the baseline is (near) zero to avoid division blowups.
    """
    if abs(baseline) < 1e-12:
        return 1.0
    return optimized / baseline
