"""TSteiner — concurrent sign-off timing optimization via deep Steiner
point refinement (DAC 2023 reproduction).

Public API tour
---------------
* :func:`repro.flow.prepare_design` — generate, place and Steinerize a
  named benchmark;
* :func:`repro.flow.run_routing_flow` — route + sign off, optionally
  with TSteiner refinement;
* :class:`repro.timing_model.TimingEvaluator` /
  :func:`repro.timing_model.train_evaluator` — the GNN sign-off timing
  evaluator;
* :class:`repro.core.TSteiner` — the refinement optimizer (Algorithm 1);
* :class:`repro.sta.STAEngine` — the sign-off STA oracle.

See ``examples/quickstart.py`` for a five-minute tour and DESIGN.md for
the full system inventory.
"""

__version__ = "1.0.0"

from repro import autodiff
from repro import core
from repro import flow
from repro import netlist
from repro import pdk
from repro import sta
from repro import steiner
from repro import timing_model

__all__ = [
    "autodiff",
    "core",
    "flow",
    "netlist",
    "pdk",
    "sta",
    "steiner",
    "timing_model",
    "__version__",
]
