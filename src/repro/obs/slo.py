"""Declarative SLOs with multi-window burn-rate alerting.

The serving layer records one *event* per terminal job outcome (done /
shed / quarantined); an :class:`SLObjective` declares what fraction of
those events must be *good* (``target``) for a job kind, optionally
also bounding latency.  :class:`SLOEngine` evaluates the classic SRE
multi-window burn-rate rule on an **injectable clock**:

    burn = bad_fraction / (1 - target)

i.e. how many times faster than "allowed" the error budget is being
spent.  An alert fires when **both** the long and the short window of
any configured ``(long_s, short_s, threshold)`` tuple burn at or above
the threshold — the long window gives significance, the short window
makes the alert clear quickly once the fault stops.  Transitions emit
``slo_alert`` / ``slo_clear`` telemetry events (guarded, like every
serve-path emission) so traces show exactly when and why an objective
degraded; ``python -m repro report`` renders them as the SLO section.

Everything is deterministic under a :class:`~repro.runtime.budget.ManualClock`:
the chaos tests inject a latency fault, watch the alert fire, advance
virtual time, and watch it clear — byte-identical every run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.telemetry import get_telemetry

#: Default multi-window burn thresholds, scaled to serve-CLI runs that
#: last seconds to minutes (the classic SRE 1h/6h pairs assume a 30-day
#: budget horizon; the maths is identical, only the horizon shrinks).
#: Tuples are ``(long_window_s, short_window_s, burn_threshold)``.
DEFAULT_WINDOWS: Tuple[Tuple[float, float, float], ...] = (
    (30.0, 5.0, 2.0),
    (120.0, 30.0, 1.0),
)

#: Kind wildcard: objective applies to every job kind.
ANY_KIND = "*"


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over terminal job outcomes.

    An event is *good* when the job completed ``ok`` — not shed, not
    quarantined, not timed out — and, when ``latency_threshold_s`` is
    set, finished within it.  ``target`` is the required good fraction
    (0.99 = 1% error budget).  ``kind`` selects which job kinds the
    objective observes (:data:`ANY_KIND` for all).
    """

    name: str
    kind: str = ANY_KIND
    target: float = 0.99
    latency_threshold_s: Optional[float] = None
    windows: Tuple[Tuple[float, float, float], ...] = DEFAULT_WINDOWS

    def matches(self, kind: str) -> bool:
        return self.kind == ANY_KIND or self.kind == kind

    def error_budget(self) -> float:
        """Allowed bad fraction; floored so target=1.0 stays finite."""
        return max(1.0 - float(self.target), 1e-9)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "latency_threshold_s": self.latency_threshold_s,
            "windows": [list(w) for w in self.windows],
        }


@dataclass
class _ObjectiveState:
    """Mutable per-objective tracking inside the engine."""

    objective: SLObjective
    samples: Deque[Tuple[float, bool]] = field(default_factory=deque)
    firing: bool = False
    events: int = 0
    bad: int = 0
    fired_total: int = 0
    cleared_total: int = 0

    def horizon(self) -> float:
        return max(w[0] for w in self.objective.windows)


class SLOEngine:
    """Evaluates a set of objectives over a stream of job outcomes.

    Parameters
    ----------
    objectives:
        The :class:`SLObjective` declarations to track.
    clock:
        Monotonic time source; inject ``ManualClock.now`` for
        deterministic alert timing (defaults to the caller passing
        explicit ``now=`` or installing a clock later via
        :attr:`clock`).
    """

    def __init__(
        self,
        objectives: Iterable[SLObjective],
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO objective names: {names}")
        self.clock = clock
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState(o) for o in self.objectives
        }

    # ------------------------------------------------------------------
    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return float(now)
        if self.clock is None:
            raise ValueError("SLOEngine needs a clock or an explicit now=")
        return self.clock()

    def observe(
        self,
        kind: str,
        *,
        latency: Optional[float] = None,
        ok: bool = True,
        shed: bool = False,
        quarantined: bool = False,
        timed_out: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Record one terminal job outcome against matching objectives."""
        t = self._now(now)
        for state in self._states.values():
            obj = state.objective
            if not obj.matches(kind):
                continue
            good = ok and not (shed or quarantined or timed_out)
            if (
                good
                and obj.latency_threshold_s is not None
                and latency is not None
                and latency > obj.latency_threshold_s
            ):
                good = False
            state.samples.append((t, good))
            state.events += 1
            if not good:
                state.bad += 1
            self._prune(state, t)

    @staticmethod
    def _prune(state: _ObjectiveState, now: float) -> None:
        cutoff = now - state.horizon()
        samples = state.samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    # ------------------------------------------------------------------
    @staticmethod
    def _burn(state: _ObjectiveState, now: float, window_s: float) -> float:
        """Burn rate over the trailing window (0.0 when empty)."""
        cutoff = now - window_s
        total = bad = 0
        for t, good in reversed(state.samples):
            if t < cutoff:
                break
            total += 1
            if not good:
                bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / state.objective.error_budget()

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Re-evaluate every objective; emit alert/clear transitions.

        Returns one status dict per objective (stable order).  Firing
        transitions emit guarded ``slo_alert`` / ``slo_clear``
        telemetry events and bump the ``slo.alerts_fired`` /
        ``slo.alerts_cleared`` counters.
        """
        t = self._now(now)
        tel = get_telemetry()
        statuses: List[Dict[str, Any]] = []
        for obj in self.objectives:
            state = self._states[obj.name]
            self._prune(state, t)
            windows = []
            firing = False
            worst = 0.0
            for long_s, short_s, threshold in obj.windows:
                burn_long = self._burn(state, t, long_s)
                burn_short = self._burn(state, t, short_s)
                pair_firing = burn_long >= threshold and burn_short >= threshold
                firing = firing or pair_firing
                worst = max(worst, min(burn_long, burn_short) / threshold)
                windows.append(
                    {
                        "long_s": long_s,
                        "short_s": short_s,
                        "threshold": threshold,
                        "burn_long": burn_long,
                        "burn_short": burn_short,
                        "firing": pair_firing,
                    }
                )
            if firing and not state.firing:
                state.firing = True
                state.fired_total += 1
                if tel.enabled:
                    tel.count("slo.alerts_fired")
                    tel.event(
                        "slo_alert",
                        slo=obj.name,
                        job_kind=obj.kind,
                        target=obj.target,
                        windows=windows,
                    )
            elif not firing and state.firing:
                state.firing = False
                state.cleared_total += 1
                if tel.enabled:
                    tel.count("slo.alerts_cleared")
                    tel.event(
                        "slo_clear",
                        slo=obj.name,
                        job_kind=obj.kind,
                        target=obj.target,
                        windows=windows,
                    )
            statuses.append(
                {
                    "name": obj.name,
                    "kind": obj.kind,
                    "target": obj.target,
                    "latency_threshold_s": obj.latency_threshold_s,
                    "firing": state.firing,
                    "worst_burn_ratio": worst,
                    "windows": windows,
                    "events": state.events,
                    "bad": state.bad,
                    "fired_total": state.fired_total,
                    "cleared_total": state.cleared_total,
                }
            )
        return statuses

    # ------------------------------------------------------------------
    def firing(self) -> List[str]:
        """Names of objectives currently in the firing state."""
        return [o.name for o in self.objectives if self._states[o.name].firing]

    def snapshot(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Alias of :meth:`evaluate` for end-of-run status dumps."""
        return self.evaluate(now)


def parse_objective(spec: str) -> SLObjective:
    """Build an objective from a CLI spec string.

    Format: ``name:kind[:target[:latency_s[:long/short/burn,...]]]``,
    e.g. ``signoff-latency:signoff:0.9:0.05`` (90% of signoff jobs
    under 50 ms) or ``avail:*:0.95`` (95% of all jobs succeed).
    Window tuples are optional and comma-separated.
    """
    parts = spec.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"bad --slo spec {spec!r}; want name:kind[:target[:latency_s[:windows]]]"
        )
    name, kind = parts[0], parts[1] or ANY_KIND
    target = float(parts[2]) if len(parts) > 2 and parts[2] else 0.99
    latency = float(parts[3]) if len(parts) > 3 and parts[3] else None
    windows = DEFAULT_WINDOWS
    if len(parts) > 4 and parts[4]:
        parsed = []
        for w in parts[4].split(","):
            long_s, short_s, burn = (float(x) for x in w.split("/"))
            parsed.append((long_s, short_s, burn))
        windows = tuple(parsed)
    return SLObjective(
        name=name,
        kind=kind,
        target=target,
        latency_threshold_s=latency,
        windows=windows,
    )


__all__ = [
    "ANY_KIND",
    "DEFAULT_WINDOWS",
    "SLOEngine",
    "SLObjective",
    "parse_objective",
]
