"""``python -m repro watch <trace.jsonl>`` — live view of a running trace.

Tail-follows a telemetry trace as the service writes it and re-renders
a compact dashboard on every poll: queue depth, per-kind throughput and
latency quantiles (fed into a :class:`~repro.obs.sketch.LogBucketSketch`
event by event, the same sketch the registry flush uses), and the SLO
alert state from ``slo_alert``/``slo_clear`` transitions.

The tailer is crash-safe against the writer: a partially written final
line stays buffered until its newline arrives, so a poll never sees a
torn JSON record; a corrupt *complete* line (e.g. the writer died mid
``run_end``) is skipped.  The watch exits when the trace's ``run_end``
event appears, or immediately after one render with ``--once`` (used
by tests and CI smoke).

Queue depth is derived from the event stream — ``enqueued − started``,
where enqueued counts submissions and retries — because the registry
gauges only flush once, at close.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.sketch import LogBucketSketch


class TraceTail:
    """Incremental JSONL reader tolerating a partially written tail."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._pos = 0
        self._buf = ""
        self.skipped = 0  # complete-but-corrupt lines dropped

    def poll(self) -> List[Dict[str, Any]]:
        """New complete events since the last poll (possibly empty)."""
        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self._pos)
            chunk = fh.read()
            self._pos = fh.tell()
        if not chunk:
            return []
        data = self._buf + chunk
        lines = data.split("\n")
        self._buf = lines.pop()  # "" when data ended in a newline
        events: List[Dict[str, Any]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped += 1
                continue
            if isinstance(record, dict) and "kind" in record:
                events.append(record)
            else:
                self.skipped += 1
        return events


class WatchState:
    """Streaming aggregation of the serving-relevant event kinds."""

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.started: Optional[float] = None
        self.last_t: float = 0.0
        self.events = 0
        self.enqueued = 0
        self.dispatched = 0
        self.shed = 0
        self.quarantined = 0
        self.degraded = 0
        self.worker_deaths = 0
        self.by_kind: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.firing: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.alerts_fired = 0
        self.alerts_cleared = 0
        self.ended = False

    def _kind(self, kind: str) -> Dict[str, Any]:
        return self.by_kind.setdefault(
            kind, {"done": 0, "sketch": LogBucketSketch()}
        )

    def apply(self, ev: Dict[str, Any]) -> None:
        self.events += 1
        t = float(ev.get("t", self.last_t))
        self.last_t = max(self.last_t, t)
        kind = ev.get("kind")
        if kind == "run_start":
            self.run_id = ev.get("run")
            self.started = t
        elif kind in ("job_submitted", "job_retry"):
            self.enqueued += 1
        elif kind == "job_started":
            self.dispatched += 1
        elif kind == "job_done":
            s = self._kind(str(ev.get("job_kind", "?")))
            s["done"] += 1
            s["sketch"].add(float(ev.get("latency", 0.0)))
        elif kind == "job_shed":
            self.shed += 1
        elif kind == "job_quarantined":
            self.quarantined += 1
        elif kind == "job_degraded":
            self.degraded += 1
        elif kind == "worker_killed":
            self.worker_deaths += 1
        elif kind == "slo_alert":
            self.alerts_fired += 1
            self.firing[str(ev.get("slo", "?"))] = ev
        elif kind == "slo_clear":
            self.alerts_cleared += 1
            self.firing.pop(str(ev.get("slo", "?")), None)
        elif kind == "run_end":
            self.ended = True

    def queue_depth(self) -> int:
        return max(0, self.enqueued - self.dispatched)

    def render(self) -> str:
        from repro.obs.report import _table  # shared table helper

        wall = max(self.last_t - (self.started or 0.0), 1e-9)
        lines = [
            f"watch: run {self.run_id or '?'} — {self.events} events, "
            f"t={self.last_t:.3f}s"
            + ("  [run ended]" if self.ended else ""),
            f"queue depth {self.queue_depth()}  shed {self.shed}  "
            f"quarantined {self.quarantined}  stale {self.degraded}  "
            f"worker deaths {self.worker_deaths}",
        ]
        rows = []
        for kind, s in self.by_kind.items():
            sk: LogBucketSketch = s["sketch"]
            rows.append(
                [
                    kind,
                    s["done"],
                    f"{s['done'] / wall:.2f}",
                    f"{sk.quantile(0.5):.4f}",
                    f"{sk.quantile(0.9):.4f}",
                    f"{sk.quantile(0.99):.4f}",
                ]
            )
        if rows:
            lines.extend(
                _table(
                    ["job kind", "done", "thru/s", "p50_s", "p90_s", "p99_s"],
                    rows,
                )
            )
        if self.firing:
            names = ", ".join(self.firing)
            lines.append(f"SLO ALERTS FIRING: {names}")
        elif self.alerts_fired:
            lines.append(
                f"slo alerts: {self.alerts_fired} fired, "
                f"{self.alerts_cleared} cleared, none firing"
            )
        return "\n".join(lines) + "\n"


def watch(
    path: Union[str, Path],
    *,
    interval: float = 0.5,
    once: bool = False,
    timeout: Optional[float] = None,
    out=None,
    sleep=time.sleep,
    clock=time.monotonic,
) -> WatchState:
    """Follow ``path`` until its run ends; returns the final state.

    ``once`` renders the current contents a single time (no waiting);
    ``timeout`` bounds the follow loop in seconds (None = until
    ``run_end``).  ``out``/``sleep``/``clock`` are injectable for
    deterministic tests.
    """
    out = out if out is not None else sys.stdout
    tail = TraceTail(path)
    state = WatchState()
    t0 = clock()
    clear = "\x1b[2J\x1b[H" if getattr(out, "isatty", lambda: False)() else ""
    while True:
        for ev in tail.poll():
            state.apply(ev)
        out.write(clear + state.render())
        out.flush()
        if once or state.ended:
            return state
        if timeout is not None and clock() - t0 >= timeout:
            return state
        sleep(interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro watch",
        description="Tail-follow a live telemetry trace "
        "(docs/OBSERVABILITY.md).",
    )
    parser.add_argument("trace", help="trace JSONL being written with --trace")
    parser.add_argument(
        "--interval", type=float, default=0.5, help="poll interval seconds"
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render the current contents once and exit",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="stop following after this many seconds",
    )
    args = parser.parse_args(argv)
    if not args.once and not Path(args.trace).exists():
        sys.stderr.write(f"error: trace not found: {args.trace}\n")
        return 1
    state = watch(
        args.trace,
        interval=args.interval,
        once=args.once,
        timeout=args.timeout,
    )
    return 0 if (state.ended or args.once) else 1


__all__ = ["TraceTail", "WatchState", "main", "watch"]


if __name__ == "__main__":
    raise SystemExit(main())
