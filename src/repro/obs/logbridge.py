"""Stdlib ``logging`` bridged into telemetry events.

Library modules log through ``logging.getLogger("repro.<area>")``
instead of bare ``print`` (enforced by tests/test_no_bare_print.py).
Two consumers exist:

* the console — :func:`setup_logging` installs one stderr handler on
  the ``repro`` root logger with a level picked by the CLI's
  ``--verbose``/``--quiet`` flags;
* the trace — :class:`TelemetryLogHandler` forwards every record as a
  ``log`` event, so warnings and progress lines land in the same JSONL
  stream as spans and metrics and show up in ``python -m repro report``.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.obs.telemetry import NullTelemetry, Telemetry, get_telemetry

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"


class TelemetryLogHandler(logging.Handler):
    """Forward log records into a telemetry run as ``log`` events.

    Bound to a specific :class:`Telemetry` when given one; otherwise it
    resolves the process-global telemetry per record, so one installed
    handler covers every ``telemetry_session``.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None, level=logging.DEBUG) -> None:
        super().__init__(level=level)
        self._telemetry = telemetry

    def emit(self, record: logging.LogRecord) -> None:
        tel = self._telemetry if self._telemetry is not None else get_telemetry()
        if isinstance(tel, NullTelemetry):
            return
        try:
            tel.event(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
            )
        except Exception:  # a broken sink must never kill the run
            self.handleError(record)


def bridge_logging(
    telemetry: Optional[Telemetry] = None,
    logger_name: str = ROOT_LOGGER,
    level: int = logging.DEBUG,
) -> TelemetryLogHandler:
    """Install (and return) a telemetry handler on ``logger_name``."""
    handler = TelemetryLogHandler(telemetry, level=level)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


def unbridge_logging(handler: TelemetryLogHandler, logger_name: str = ROOT_LOGGER) -> None:
    """Remove a handler installed by :func:`bridge_logging`."""
    logging.getLogger(logger_name).removeHandler(handler)


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` console logger for CLI runs.

    ``verbosity``: -1 (``--quiet``, warnings and errors only),
    0 (default, progress at INFO), 1 (``--verbose``, DEBUG — includes
    per-epoch training losses).  Idempotent: re-running replaces the
    previously installed console handler instead of stacking one more.
    """
    level = {-1: logging.WARNING, 0: logging.INFO}.get(verbosity, logging.DEBUG)
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(min(level, logger.level) if logger.level != logging.NOTSET else level)
    for h in list(logger.handlers):
        if getattr(h, "_repro_console", False):
            logger.removeHandler(h)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
    handler._repro_console = True
    logger.addHandler(handler)
    logger.propagate = False
    return logger
