"""Run-report CLI: render a trace JSONL into a text summary.

Usage::

    python -m repro report <trace.jsonl>

Sections rendered (each only when the trace contains the data):

* run header — run id, schema version, event count, wall span, and the
  parent run when the trace was stitched onto a checkpointed original;
* per-stage time breakdown — span durations aggregated by name;
* refinement trajectory — one line per ``refine`` invocation
  reconstructed from ``refine_start``/``refine_iter``/``refine_end``;
* MCMM sign-off — per-scenario and merged WNS/TNS from the flow's
  ``mcmm_report`` events (docs/MCMM.md);
* hold sign-off — WHS and hold violations from ``hold_report`` events;
* ECO — accepted-op counts, digests and WNS/TNS deltas from
  ``eco_report`` events (docs/ECO.md);
* training — per ``train_evaluator`` invocation;
* metric registry — counters, gauges and histogram summaries from the
  final ``metrics`` event;
* notable events — budget exhaustion, injected faults, non-finite
  guards, stage errors, log records by level.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.telemetry import SCHEMA_VERSION


class TraceError(ValueError):
    """The file is not a readable telemetry trace."""


def read_trace(
    path: Union[str, Path], strict: bool = True
) -> List[Dict[str, Any]]:
    """Parse one JSONL trace; raises :class:`TraceError` on bad input.

    ``strict=False`` reads a trace that is still being written (or died
    mid-write): undecodable lines — typically a truncated final line —
    and non-event records are skipped instead of raising, and an empty
    trace returns ``[]``.  The watch CLI and the degenerate-trace tests
    use this mode.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace not found: {path}")
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise TraceError(
                        f"{path}:{lineno}: invalid JSON ({exc})"
                    ) from exc
                continue
            if not isinstance(record, dict) or "kind" not in record:
                if strict:
                    raise TraceError(f"{path}:{lineno}: not a telemetry event")
                continue
            events.append(record)
    if not events and strict:
        raise TraceError(f"{path}: empty trace")
    return events


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    """Minimal fixed-width text table (keeps this module zero-dep)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return lines


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def summarize_spans(events: Sequence[Dict[str, Any]]) -> "OrderedDict[str, Dict[str, float]]":
    """Aggregate ``span_end`` durations by span name (insertion order)."""
    spans: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for ev in events:
        if ev.get("kind") != "span_end":
            continue
        name = str(ev.get("name", "?"))
        agg = spans.setdefault(name, {"count": 0, "total": 0.0, "errors": 0})
        agg["count"] += 1
        agg["total"] += float(ev.get("dur", 0.0))
        if ev.get("status") == "error":
            agg["errors"] += 1
    return spans


def summarize_refinements(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One summary dict per ``refine`` invocation found in the trace."""
    runs: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    for ev in events:
        kind = ev.get("kind")
        if kind == "refine_start":
            current = {"start": ev, "iters": [], "end": None}
            runs.append(current)
        elif kind == "refine_iter":
            if current is None:
                current = {"start": None, "iters": [], "end": None}
                runs.append(current)
            current["iters"].append(ev)
        elif kind == "refine_end":
            if current is None:
                current = {"start": None, "iters": [], "end": None}
                runs.append(current)
            current["end"] = ev
            current = None
    return runs


def summarize_serving(events: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Aggregate the ``job_*``/``worker_*`` event stream of the service.

    Returns None when the trace has no serving events (docs/SERVING.md).
    """
    served = [e for e in events if e.get("kind") == "job_done"]
    quarantined = [e for e in events if e.get("kind") == "job_quarantined"]
    shed = [e for e in events if e.get("kind") == "job_shed"]
    degraded = [e for e in events if e.get("kind") == "job_degraded"]
    if not (served or quarantined or shed or degraded):
        return None
    kinds: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    for ev in served:
        kind = str(ev.get("job_kind", "?"))
        s = kinds.setdefault(
            kind,
            {
                "done": 0,
                "retried": 0,
                "stale": 0,
                "timed_out": 0,
                "latencies": [],
            },
        )
        s["done"] += 1
        if int(ev.get("attempts", 1)) > 1:
            s["retried"] += 1
        if ev.get("stale"):
            s["stale"] += 1
        if ev.get("timed_out"):
            s["timed_out"] += 1
        s["latencies"].append(float(ev.get("latency", 0.0)))
    for s in kinds.values():
        lat = sorted(s.pop("latencies"))
        s["mean_latency"] = sum(lat) / len(lat) if lat else 0.0
        s["max_latency"] = lat[-1] if lat else 0.0
        for name, q in (("p50_latency", 0.5), ("p90_latency", 0.9), ("p99_latency", 0.99)):
            if lat:
                rank = max(1, int(-(-q * len(lat) // 1)))  # ceil(q*n)
                s[name] = lat[min(rank, len(lat)) - 1]
            else:
                s[name] = 0.0
    chaos: Dict[str, int] = {}
    for ev in events:
        kind = ev.get("kind")
        if kind in ("chaos_kill", "chaos_delay", "chaos_corrupt"):
            chaos[kind] = chaos.get(kind, 0) + 1
    # Query fusion (serve/batcher.py): fused dispatches and the member
    # jobs they coalesced.
    batch_events = [e for e in events if e.get("kind") == "batch_dispatch"]
    fused_jobs = sum(int(e.get("width", 0)) for e in batch_events)
    done_total = len(served)
    return {
        "kinds": kinds,
        "quarantined": len(quarantined),
        "shed": len(shed),
        "degraded": len(degraded),
        "worker_deaths": sum(1 for e in events if e.get("kind") == "worker_killed"),
        "worker_restarts": sum(
            1 for e in events if e.get("kind") == "worker_restarted"
        ),
        "checkpoint_resets": sum(
            1 for e in events if e.get("kind") == "serve_checkpoint_reset"
        ),
        "chaos": chaos,
        "batches": len(batch_events),
        "fused_jobs": fused_jobs,
        "mean_batch_width": fused_jobs / len(batch_events) if batch_events else 0.0,
        "fusion_ratio": fused_jobs / done_total if done_total else 0.0,
        "shard_kills": sum(1 for e in events if e.get("kind") == "shard_killed"),
        "shard_restarts": sum(
            1 for e in events if e.get("kind") == "shard_restarted"
        ),
        "redispatched": sum(
            1 for e in events if e.get("kind") == "job_redispatched"
        ),
    }


def _final_metrics(events: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    for ev in reversed(events):
        if ev.get("kind") == "metrics":
            return ev
    return None


def summarize_slo(events: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """SLO alert history and final objective state from a trace.

    Returns None when the trace carries no SLO events (the engine was
    not configured).  ``transitions`` preserves event order so fire →
    clear sequences render faithfully.
    """
    transitions = [
        e for e in events if e.get("kind") in ("slo_alert", "slo_clear")
    ]
    status = next(
        (e for e in reversed(events) if e.get("kind") == "slo_status"), None
    )
    if not transitions and status is None:
        return None
    return {
        "transitions": transitions,
        "objectives": (status or {}).get("objectives") or [],
        "firing": (status or {}).get("firing") or [],
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(
    events: Sequence[Dict[str, Any]],
    profile: bool = False,
    top: int = 15,
) -> str:
    lines: List[str] = []
    start = next((e for e in events if e.get("kind") == "run_start"), None)
    run_id = (start or events[0]).get("run", "?")
    schema = (start or {}).get("schema", "?")
    times = [float(e["t"]) for e in events if "t" in e]
    wall = (max(times) - min(times)) if times else 0.0
    lines.append(
        f"Telemetry run {run_id} (schema {schema}) — "
        f"{len(events)} events, {wall:.3f} s span"
    )
    if start is not None and start.get("parent_run"):
        lines.append(f"  stitched onto parent run {start['parent_run']} (checkpoint resume)")
    resumes = [e for e in events if e.get("kind") == "checkpoint_resume"]
    for ev in resumes:
        lines.append(
            f"  resumed {ev.get('what', 'state')} from checkpoint of run "
            f"{ev.get('parent_run') or '<untraced>'}"
        )

    spans = summarize_spans(events)
    if spans:
        grand = sum(a["total"] for a in spans.values()) or 1.0
        rows = []
        for name, agg in sorted(spans.items(), key=lambda kv: -kv[1]["total"]):
            mean_ms = 1e3 * agg["total"] / agg["count"] if agg["count"] else 0.0
            rows.append(
                [
                    name,
                    agg["count"],
                    f"{agg['total']:.4f}",
                    f"{mean_ms:.2f}",
                    f"{100.0 * agg['total'] / grand:.1f}%",
                    agg["errors"],
                ]
            )
        lines.append("")
        lines.append("Stage timing (spans)")
        lines.extend(_table(["stage", "count", "total_s", "mean_ms", "share", "errors"], rows))

    if profile:
        from repro.obs.profile import render_profile, summarize_profile

        prof = summarize_profile(events, top=top)
        lines.append("")
        if prof is None:
            lines.append("Profile: no spans in trace")
        else:
            lines.extend(render_profile(prof))

    refinements = summarize_refinements(events)
    if refinements:
        lines.append("")
        lines.append("Refinement")
        for i, run in enumerate(refinements):
            end = run["end"] or {}
            start_ev = run["start"] or {}
            iters = run["iters"]
            accepted = sum(1 for ev in iters if ev.get("accepted"))
            init_wns = start_ev.get("init_wns", end.get("init_wns"))
            init_tns = start_ev.get("init_tns", end.get("init_tns"))
            lines.append(
                f"  run {i}: {len(iters)} iterations, {accepted} accepted, "
                f"{end.get('validated_reverts', 0)} validated reverts, "
                f"{end.get('skipped_steps', 0)} skipped, "
                f"{end.get('validations', 0)} oracle probes, "
                f"{end.get('checkpoint_saves', 0)} checkpoint saves"
            )
            if init_wns is not None and end.get("best_wns") is not None:
                lines.append(
                    f"    WNS {_fmt(float(init_wns))} -> {_fmt(float(end['best_wns']))}"
                    f"   TNS {_fmt(float(init_tns))} -> {_fmt(float(end['best_tns']))}"
                )
            flags = [
                f for f in ("timed_out", "degraded", "resumed") if end.get(f)
            ]
            if flags:
                lines.append(f"    flags: {', '.join(flags)}")

    mcmm_events = [e for e in events if e.get("kind") == "mcmm_report"]
    if mcmm_events:
        lines.append("")
        lines.append("MCMM sign-off (per design, last report)")
        latest: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for ev in mcmm_events:
            latest[str(ev.get("design", "?"))] = ev
        for design, ev in latest.items():
            lines.append(
                f"  {design}: merged WNS {_fmt(float(ev.get('merged_wns', 0.0)))}, "
                f"TNS {_fmt(float(ev.get('merged_tns', 0.0)))}, "
                f"{ev.get('merged_violations', 0)} violations"
            )
            rows = [
                [s.get("name", "?"), s.get("check", "?"),
                 float(s.get("wns", 0.0)), float(s.get("tns", 0.0)),
                 s.get("violations", 0)]
                for s in (ev.get("scenarios") or [])
            ]
            if rows:
                lines.extend(
                    "    " + ln
                    for ln in _table(["scenario", "check", "wns", "tns", "viol"], rows)
                )

    hold_events = [e for e in events if e.get("kind") == "hold_report"]
    if hold_events:
        lines.append("")
        lines.append("Hold sign-off (per design, last report)")
        latest_hold: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for ev in hold_events:
            latest_hold[str(ev.get("design", "?"))] = ev
        for design, ev in latest_hold.items():
            lines.append(
                f"  {design}: WHS {_fmt(float(ev.get('whs', 0.0)))}, "
                f"{ev.get('violations', 0)} violations over "
                f"{ev.get('endpoints', 0)} endpoints"
            )

    eco_events = [e for e in events if e.get("kind") == "eco_report"]
    if eco_events:
        lines.append("")
        lines.append("ECO (closed-loop sign-off repair, last run per design/arm)")
        latest_eco: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        for ev in eco_events:
            key = (str(ev.get("design", "?")), str(ev.get("arm", "?")))
            latest_eco[key] = ev
        rows = [
            [design, ev.get("arm", "?"), ev.get("accepted", 0),
             float(ev.get("initial_wns") or 0.0),
             float(ev.get("final_wns") or 0.0),
             float(ev.get("initial_tns") or 0.0),
             float(ev.get("final_tns") or 0.0),
             float(ev.get("area_delta") or 0.0),
             ev.get("digest", "?")]
            for (design, _arm), ev in latest_eco.items()
        ]
        lines.extend(
            "  " + ln
            for ln in _table(
                ["design", "arm", "ops", "wns0", "wns1", "tns0", "tns1",
                 "area+", "digest"],
                rows,
            )
        )

    serving = summarize_serving(events)
    if serving is not None:
        lines.append("")
        lines.append("Serving (sign-off job service)")
        rows = [
            [kind, s["done"], s["retried"], s["stale"], s["timed_out"],
             _fmt(s["p50_latency"]), _fmt(s["p90_latency"]),
             _fmt(s["p99_latency"]), _fmt(s["max_latency"])]
            for kind, s in serving["kinds"].items()
        ]
        if rows:
            lines.extend(
                "  " + ln
                for ln in _table(
                    ["job kind", "done", "retried", "stale", "timeo",
                     "p50_s", "p90_s", "p99_s", "max_s"],
                    rows,
                )
            )
        lines.append(
            f"  quarantined {serving['quarantined']}, shed {serving['shed']}, "
            f"degraded (stale answers) {serving['degraded']}"
        )
        if serving["batches"]:
            lines.append(
                f"  batching: {serving['batches']} fused dispatches, "
                f"{serving['fused_jobs']} member jobs, "
                f"mean width {serving['mean_batch_width']:.2f}, "
                f"fusion ratio {serving['fusion_ratio']:.2f}"
            )
        if serving["shard_kills"] or serving["redispatched"]:
            lines.append(
                f"  sharding: {serving['shard_kills']} shard kills, "
                f"{serving['shard_restarts']} restarts, "
                f"{serving['redispatched']} jobs redispatched"
            )
        if serving["worker_deaths"] or serving["chaos"]:
            chaos = serving["chaos"]
            lines.append(
                f"  worker deaths {serving['worker_deaths']} "
                f"(restarts {serving['worker_restarts']}); chaos: "
                f"kills {chaos.get('chaos_kill', 0)}, "
                f"delays {chaos.get('chaos_delay', 0)}, "
                f"corruptions {chaos.get('chaos_corrupt', 0)}, "
                f"checkpoint resets {serving['checkpoint_resets']}"
            )

    slo = summarize_slo(events)
    if slo is not None:
        lines.append("")
        lines.append("SLO (burn-rate alerts)")
        for ev in slo["transitions"]:
            verb = "FIRED" if ev["kind"] == "slo_alert" else "cleared"
            lines.append(
                f"  t={float(ev.get('t', 0.0)):.3f}  {ev.get('slo', '?')} "
                f"({ev.get('job_kind', '*')}, target "
                f"{_fmt(float(ev.get('target', 0.0)))}) {verb}"
            )
        rows = []
        for obj in slo["objectives"]:
            rows.append(
                [
                    obj.get("name", "?"),
                    obj.get("kind", "*"),
                    _fmt(float(obj.get("target", 0.0))),
                    obj.get("events", 0),
                    obj.get("bad", 0),
                    obj.get("fired_total", 0),
                    obj.get("cleared_total", 0),
                    "FIRING" if obj.get("firing") else "ok",
                ]
            )
        if rows:
            lines.extend(
                "  " + ln
                for ln in _table(
                    ["objective", "kind", "target", "events", "bad",
                     "fired", "cleared", "state"],
                    rows,
                )
            )
        if slo["firing"]:
            lines.append(
                "  still firing at shutdown: " + ", ".join(slo["firing"])
            )

    epochs = [e for e in events if e.get("kind") == "train_epoch"]
    if epochs:
        last = epochs[-1]
        finite = [float(e["loss"]) for e in epochs if e.get("loss") == e.get("loss")]
        lines.append("")
        lines.append(
            f"Training: {len(epochs)} epochs, final loss "
            f"{_fmt(float(last.get('loss', float('nan'))))}"
            + (f", best {_fmt(min(finite))}" if finite else "")
        )

    metrics = _final_metrics(events)
    if metrics is not None:
        counters = metrics.get("counters") or {}
        if counters:
            lines.append("")
            lines.append("Counters")
            lines.extend(_table(["counter", "value"], sorted(counters.items())))
        gauges = metrics.get("gauges") or {}
        if gauges:
            lines.append("")
            lines.append("Gauges")
            lines.extend(_table(["gauge", "value"], sorted(gauges.items())))
        hists = metrics.get("hists") or {}
        if hists:
            lines.append("")
            lines.append("Histograms")
            rows = [
                [name, h.get("count", 0), h.get("mean", 0.0),
                 h.get("p50", 0.0), h.get("p90", 0.0), h.get("p99", 0.0),
                 h.get("min", 0.0), h.get("max", 0.0)]
                for name, h in sorted(hists.items())
            ]
            lines.extend(
                _table(
                    ["histogram", "count", "mean", "p50", "p90", "p99",
                     "min", "max"],
                    rows,
                )
            )

    notable = {}
    for ev in events:
        kind = ev.get("kind")
        if kind in ("budget_exhausted", "fault_injected", "nonfinite", "stage_error", "validator_degraded"):
            notable[kind] = notable.get(kind, 0) + 1
    logs: Dict[str, int] = {}
    for ev in events:
        if ev.get("kind") == "log":
            level = str(ev.get("level", "?"))
            logs[level] = logs.get(level, 0) + 1
    if notable or logs:
        lines.append("")
        lines.append("Notable events")
        for kind, n in sorted(notable.items()):
            lines.append(f"  {kind}: {n}")
        if logs:
            parts = ", ".join(f"{k.lower()} {v}" for k, v in sorted(logs.items()))
            lines.append(f"  log records: {parts}")

    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Summarize a telemetry trace (JSONL) written with --trace.",
    )
    parser.add_argument(
        "trace", nargs="*", help="trace file(s) to summarize"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="add the span self-time hotspot/flame section",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        help="hotspot rows in the --profile table (default 15)",
    )
    parser.add_argument(
        "--bench-trend",
        metavar="HISTORY",
        default=None,
        help="render per-kernel speedup trends from a bench history "
        "JSONL (written by `python -m repro.bench --history`)",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.bench_trend:
        parser.error("need a trace file and/or --bench-trend HISTORY")
    status = 0
    if args.bench_trend:
        from repro.bench.history import load_history, render_trends

        try:
            rows = load_history(args.bench_trend)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"error: {exc}\n")
            status = 1
        else:
            sys.stdout.write(render_trends(rows))
            if args.trace:
                sys.stdout.write("\n")
    for i, path in enumerate(args.trace):
        if i:
            sys.stdout.write("\n")
        try:
            events = read_trace(path)
        except TraceError as exc:
            sys.stderr.write(f"error: {exc}\n")
            status = 1
            continue
        schema = next(
            (e.get("schema") for e in events if e.get("kind") == "run_start"), None
        )
        if schema is not None and int(schema) > SCHEMA_VERSION:
            sys.stderr.write(
                f"warning: {path} uses schema {schema}, newer than this "
                f"reader ({SCHEMA_VERSION}) — fields may be missing\n"
            )
        sys.stdout.write(
            render_report(events, profile=args.profile, top=args.top)
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
