"""Span-tree self-time profiler: hotspot attribution from a trace.

``summarize_spans`` in :mod:`repro.obs.report` totals *inclusive*
durations per span name, which double-counts nesting: ``refine``
contains ``sta_update`` contains ``arrival_forward``, so their totals
overlap and the table cannot answer "where did the wall time actually
go?".  This module computes **self time** — a span's duration minus
the durations of its *direct* children — from the ``span_end`` stream
(each event carries ``span``/``parent`` ids and ``dur``).  Self times
partition wall time exactly: for a trace whose spans all closed, the
self-time total equals the summed duration of the root spans to float
rounding, which ``python -m repro report --profile`` states and the
tests assert.

Two aggregations are produced:

* **hotspots** — per span *name*: calls, inclusive total, self total,
  self share of wall;
* **flame table** — per root-to-span *path* (names joined by ``;``),
  rendered as an indented tree in call order — a text flame graph.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["summarize_profile", "render_profile"]


def summarize_profile(
    events: Sequence[Dict[str, Any]], top: int = 15
) -> Optional[Dict[str, Any]]:
    """Aggregate self-time hotspots from a trace's ``span_end`` events.

    Returns None when the trace has no spans.  ``top`` bounds the
    hotspot table (the flame tree keeps every path).
    """
    ends = [e for e in events if e.get("kind") == "span_end"]
    if not ends:
        return None
    # Direct-children inclusive time per parent span id.
    child_dur: Dict[Any, float] = {}
    for ev in ends:
        parent = ev.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) + float(
                ev.get("dur", 0.0)
            )
    # Span id -> its end event, to rebuild root-to-span name paths.
    by_id = {ev.get("span"): ev for ev in ends}

    def path_of(ev: Dict[str, Any]) -> str:
        names: List[str] = []
        cursor: Optional[Dict[str, Any]] = ev
        hops = 0
        while cursor is not None and hops < 64:  # cycle guard
            names.append(str(cursor.get("name", "?")))
            cursor = by_id.get(cursor.get("parent"))
            hops += 1
        return ";".join(reversed(names))

    hotspots: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    flame: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    wall = 0.0
    self_total = 0.0
    for ev in ends:
        name = str(ev.get("name", "?"))
        dur = float(ev.get("dur", 0.0))
        self_t = dur - child_dur.get(ev.get("span"), 0.0)
        self_total += self_t
        if ev.get("parent") is None:
            wall += dur
        agg = hotspots.setdefault(
            name, {"calls": 0, "total": 0.0, "self": 0.0, "errors": 0}
        )
        agg["calls"] += 1
        agg["total"] += dur
        agg["self"] += self_t
        if ev.get("status") == "error":
            agg["errors"] += 1
        path = path_of(ev)
        pagg = flame.setdefault(path, {"calls": 0, "total": 0.0, "self": 0.0})
        pagg["calls"] += 1
        pagg["total"] += dur
        pagg["self"] += self_t
    ranked = sorted(hotspots.items(), key=lambda kv: -kv[1]["self"])
    return {
        "spans": len(ends),
        "wall": wall,
        "self_total": self_total,
        "hotspots": [
            {"name": name, **agg} for name, agg in ranked[: max(1, int(top))]
        ],
        "flame": [{"path": path, **agg} for path, agg in flame.items()],
    }


def render_profile(profile: Dict[str, Any]) -> List[str]:
    """Text lines for the ``--profile`` report section."""
    from repro.obs.report import _table  # local import avoids a cycle

    wall = profile["wall"] or 1.0
    lines: List[str] = []
    lines.append(
        f"Profile: {profile['spans']} spans, wall {profile['wall']:.4f} s, "
        f"self-time total {profile['self_total']:.4f} s"
    )
    rows = []
    for h in profile["hotspots"]:
        rows.append(
            [
                h["name"],
                h["calls"],
                f"{h['total']:.4f}",
                f"{h['self']:.4f}",
                f"{100.0 * h['self'] / wall:.1f}%",
                h["errors"],
            ]
        )
    lines.extend(
        _table(
            ["span", "calls", "total_s", "self_s", "self%", "errors"], rows
        )
    )
    lines.append("")
    lines.append("Flame (self-time by call path)")
    for entry in profile["flame"]:
        parts = entry["path"].split(";")
        indent = "  " * (len(parts) - 1)
        lines.append(
            f"  {indent}{parts[-1]}  calls {entry['calls']}  "
            f"self {entry['self']:.4f}s  ({100.0 * entry['self'] / wall:.1f}%)"
        )
    return lines
