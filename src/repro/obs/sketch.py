"""Deterministic log-bucket quantile sketch for the metric registry.

The telemetry histograms used to keep only count/sum/min/max, which
cannot express a latency SLO ("p99 of ``serve.latency.signoff`` under
50 ms").  :class:`LogBucketSketch` upgrades them to a zero-dependency
DDSketch-style summary:

* **fixed boundaries** — bucket ``i`` covers ``(GAMMA**(i-1), GAMMA**i]``
  for positive values, with dedicated zero and (mirrored) negative
  buckets, so the bucket a value lands in depends only on the value,
  never on insertion order or on what else the sketch has seen;
* **bounded relative error** — ``GAMMA = 1.1`` keeps every reported
  quantile within ~5% relative error of the true value, clamped into
  the exact observed ``[min, max]``;
* **mergeable** — two sketches merge by adding their (integer) bucket
  counts and combining min/max, so per-worker registries fold into the
  parent run through the existing ``Telemetry.merge_metrics`` path.
  Bucket counts, count, extrema — and therefore every reported
  quantile — are exactly order-independent under merge (integer adds
  and min/max are associative and commutative); only the float ``sum``
  is subject to the usual last-ulp float-addition reassociation.

The JSON form (`summary()`) is what lands in the trace's ``metrics``
event and what ``merge()`` consumes; pre-v2 summaries without bucket
data still merge (their mass is attributed to the bucket of their mean
— the best available estimate), so old traces remain readable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Tuple

#: Bucket growth factor: relative quantile error is
#: (GAMMA - 1) / (GAMMA + 1) ~= 4.8%.
GAMMA = 1.1

_LOG_GAMMA = math.log(GAMMA)

#: Magnitudes below this collapse into the zero bucket (they are far
#: below any latency/size this repo measures, and a hard floor keeps
#: bucket indices bounded).
MIN_TRACKED = 1e-12

#: Quantiles every histogram summary reports.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


def bucket_index(value: float) -> int:
    """Deterministic bucket index for a positive magnitude."""
    return int(math.ceil(math.log(value) / _LOG_GAMMA))


def bucket_value(index: int) -> float:
    """Representative value of bucket ``index``.

    Bucket ``i`` covers ``(GAMMA**(i-1), GAMMA**i]``; the harmonic
    midpoint ``2*GAMMA**i/(GAMMA+1)`` keeps the worst-case relative
    error symmetric at ``(GAMMA-1)/(GAMMA+1)`` (the DDSketch choice)
    instead of the one-sided ``GAMMA-1`` an upper-bound representative
    would give.
    """
    return 2.0 * GAMMA ** index / (GAMMA + 1.0)


class LogBucketSketch:
    """Streaming quantile histogram over fixed log-spaced buckets."""

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets", "neg_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.zeros = 0
        self.buckets: Dict[int, int] = {}  # value > 0, keyed by bucket_index
        self.neg_buckets: Dict[int, int] = {}  # value < 0, keyed by bucket_index(-v)

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if not math.isfinite(value):
            # Non-finite samples keep legacy count/sum semantics but
            # carry no rank information; quantiles ignore them.
            return
        if abs(value) < MIN_TRACKED:
            self.zeros += 1
        elif value > 0:
            i = bucket_index(value)
            self.buckets[i] = self.buckets.get(i, 0) + 1
        else:
            i = bucket_index(-value)
            self.neg_buckets[i] = self.neg_buckets.get(i, 0) + 1

    # ------------------------------------------------------------------
    def _ranked(self) -> int:
        """Samples that carry rank information (finite adds)."""
        return (
            self.zeros
            + sum(self.buckets.values())
            + sum(self.neg_buckets.values())
        )

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate, clamped into [min, max]."""
        n = self._ranked()
        if n <= 0:
            return self.min if math.isfinite(self.min) else 0.0
        q = min(1.0, max(0.0, float(q)))
        rank = max(1, int(math.ceil(q * n)))
        seen = 0
        # Value order: negatives (most negative first = descending
        # mirrored index), then zeros, then positives ascending.
        for i in sorted(self.neg_buckets, reverse=True):
            seen += self.neg_buckets[i]
            if seen >= rank:
                return self._clamp(-bucket_value(i))
        seen += self.zeros
        if seen >= rank:
            return self._clamp(0.0)
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= rank:
                return self._clamp(bucket_value(i))
        return self._clamp(self.max)  # pragma: no cover - rank <= n

    def _clamp(self, value: float) -> float:
        if math.isfinite(self.min):
            value = max(value, self.min)
        if math.isfinite(self.max):
            value = min(value, self.max)
        return value

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``metrics`` event / merge format)."""
        mean = self.total / self.count if self.count else 0.0
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for name, q in QUANTILES:
            out[name] = self.quantile(q) if self.count else 0.0
        out["buckets"] = {str(i): self.buckets[i] for i in sorted(self.buckets)}
        if self.zeros:
            out["zeros"] = self.zeros
        if self.neg_buckets:
            out["neg_buckets"] = {
                str(i): self.neg_buckets[i] for i in sorted(self.neg_buckets)
            }
        return out

    def merge(self, summary: Dict[str, Any]) -> None:
        """Fold another sketch's summary into this one.

        Tolerates every degenerate shape the stitching path can see:
        ``{}`` / zero-count summaries are no-ops; missing bucket keys
        (a pre-v2 count/sum/min/max summary) fall back to attributing
        the incoming mass to the bucket of its mean value, so ranks
        stay consistent with ``count``.
        """
        if not summary:
            return
        count = int(summary.get("count", 0) or 0)
        if count <= 0:
            return
        self.count += count
        self.total += float(summary.get("sum", 0.0) or 0.0)
        smin = float(summary.get("min", self.min))
        smax = float(summary.get("max", self.max))
        if smin < self.min:
            self.min = smin
        if smax > self.max:
            self.max = smax
        buckets = summary.get("buckets")
        zeros = int(summary.get("zeros", 0) or 0)
        neg = summary.get("neg_buckets")
        if buckets is None and zeros == 0 and neg is None:
            # Legacy summary with no rank data: place its mass at its
            # mean so quantile ranks still account for every sample.
            mean = float(summary.get("sum", 0.0) or 0.0) / count
            if math.isfinite(mean):
                self._merge_point(mean, count)
            return
        self.zeros += zeros
        for key, n in (buckets or {}).items():
            i = int(key)
            self.buckets[i] = self.buckets.get(i, 0) + int(n)
        for key, n in (neg or {}).items():
            i = int(key)
            self.neg_buckets[i] = self.neg_buckets.get(i, 0) + int(n)

    def _merge_point(self, value: float, count: int) -> None:
        if abs(value) < MIN_TRACKED:
            self.zeros += count
        elif value > 0:
            i = bucket_index(value)
            self.buckets[i] = self.buckets.get(i, 0) + count
        else:
            i = bucket_index(-value)
            self.neg_buckets[i] = self.neg_buckets.get(i, 0) + count

    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LogBucketSketch":
        sketch = cls()
        for v in values:
            sketch.add(v)
        return sketch

    @classmethod
    def merged(cls, summaries: Iterable[Dict[str, Any]]) -> "LogBucketSketch":
        sketch = cls()
        for s in summaries:
            sketch.merge(s)
        return sketch


__all__ = [
    "GAMMA",
    "MIN_TRACKED",
    "QUANTILES",
    "LogBucketSketch",
    "bucket_index",
    "bucket_value",
]
