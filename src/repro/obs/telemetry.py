"""Zero-dependency telemetry core: spans, metrics, structured events.

One :class:`Telemetry` instance records one *run*: a stream of JSON-lines
events (stable schema, versioned by :data:`SCHEMA_VERSION`) plus an
aggregated metric registry (counters / gauges / histograms) flushed as a
single ``metrics`` event on :meth:`Telemetry.close`.

Design rules, mirroring ``runtime/budget.py``:

* the clock is **injectable** — tests drive it with
  :class:`~repro.runtime.budget.ManualClock` and get byte-identical
  JSONL across identical runs;
* everything is observation-only: instrumented code behaves bitwise
  identically with telemetry on or off (tests/test_obs.py asserts this
  for ``refine``);
* the disabled path is a :class:`NullTelemetry` whose methods are empty
  and whose ``span`` returns a shared no-op context manager, so the hot
  loops pay one attribute lookup and a cheap call, no allocation.

Event schema (one JSON object per line, keys sorted)::

    {"kind": str, "run": str, "seq": int, "t": float, ...}

``kind`` values written by this repo: ``run_start``, ``run_end``,
``span_start``, ``span_end``, ``metrics``, ``log``, plus free-form
instrumentation events (``refine_iter``, ``train_epoch``,
``budget_exhausted``, ``fault_injected``, ``nonfinite``,
``stage_error``, ``checkpoint_resume``, ...).  See
docs/OBSERVABILITY.md for the catalogue.
"""

from __future__ import annotations

import contextlib
import json
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.sketch import LogBucketSketch

#: Version of the JSONL event schema.  Bumped on any incompatible field
#: change; embedded in every ``run_start`` event and in checkpoint
#: metadata so a resumed run can verify it stitches onto a compatible
#: trace.  v2: histogram summaries became log-bucket quantile sketches
#: (``p50``/``p90``/``p99`` + sparse ``buckets``; repro.obs.sketch).
SCHEMA_VERSION = 2

#: Fields reserved by the envelope — instrumentation attrs must not
#: shadow them.
_RESERVED = ("kind", "run", "seq", "t")


def _json_default(value: Any):
    """Coerce numpy scalars/arrays and other strays into JSON types."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(value)


def _dumps(obj: Dict[str, Any]) -> str:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    )


class _NullSpan:
    """Shared no-op context manager returned by :meth:`NullTelemetry.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **fields) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every method is a no-op.

    ``enabled`` lets hot paths skip building event payloads entirely::

        if tel.enabled:
            tel.event("refine_iter", ...)
    """

    enabled = False
    run_id: Optional[str] = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, kind: str, **fields) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def hist(self, name: str, value: float) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Process-wide disabled instance; also the default "global" telemetry.
NULL_TELEMETRY = NullTelemetry()


#: Histogram implementation: deterministic log-bucket quantile sketch
#: (count/sum/min/max plus p50/p90/p99 and mergeable bucket counts).
_Hist = LogBucketSketch


class Span:
    """One hierarchical timed region; use as a context manager."""

    __slots__ = ("_tel", "name", "attrs", "span_id", "parent_id", "_t0", "_notes")

    def __init__(self, tel: "Telemetry", name: str, attrs: Dict[str, Any]) -> None:
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._t0 = 0.0
        self._notes: Dict[str, Any] = {}

    def annotate(self, **fields) -> None:
        """Attach result fields to the eventual ``span_end`` event."""
        self._notes.update(fields)

    def __enter__(self) -> "Span":
        tel = self._tel
        self.span_id = tel._next_span_id()
        self.parent_id = tel._stack[-1] if tel._stack else None
        tel._stack.append(self.span_id)
        self._t0 = tel._clock()
        tel.event(
            "span_start",
            name=self.name,
            span=self.span_id,
            parent=self.parent_id,
            attrs=self.attrs,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tel = self._tel
        dur = tel._clock() - self._t0
        if tel._stack and tel._stack[-1] == self.span_id:
            tel._stack.pop()
        fields: Dict[str, Any] = {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "dur": dur,
            "status": "error" if exc_type is not None else "ok",
            "attrs": self._notes,
        }
        if exc_type is not None:
            fields["error"] = f"{exc_type.__name__}: {exc}"
        tel.event("span_end", **fields)
        return False


class Telemetry:
    """Active telemetry run writing JSONL events.

    Parameters
    ----------
    path:
        Destination JSONL file.  When omitted, events are retained in
        :attr:`events` (handy for tests and in-process inspection).
    clock:
        Monotonic time source (default :func:`time.perf_counter`);
        inject :class:`~repro.runtime.budget.ManualClock`'s ``now`` for
        deterministic traces.
    run_id:
        Stable identifier for this run; random when omitted.  Inject a
        fixed one for byte-identical traces.
    parent_run:
        Run id of the trace this run continues (checkpoint resume);
        recorded in the ``run_start`` event so the report CLI can
        stitch trajectories.
    """

    enabled = True

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock: Optional[Callable[[], float]] = None,
        run_id: Optional[str] = None,
        parent_run: Optional[str] = None,
    ) -> None:
        self._clock = clock or time.perf_counter
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self.parent_run = parent_run
        self.path = Path(path) if path is not None else None
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._hists: Dict[str, _Hist] = {}
        self._seq = 0
        self._span_seq = 0
        self._stack: List[int] = []
        self._closed = False
        start: Dict[str, Any] = {"schema": SCHEMA_VERSION}
        if parent_run is not None:
            start["parent_run"] = parent_run
        self.event("run_start", **start)

    # ------------------------------------------------------------------
    def _next_span_id(self) -> int:
        self._span_seq += 1
        return self._span_seq

    def event(self, kind: str, **fields) -> None:
        """Emit one structured event (a JSONL line)."""
        if self._closed:
            return
        for key in _RESERVED:
            if key in fields:
                raise ValueError(f"reserved event field {key!r}")
        record: Dict[str, Any] = {
            "kind": kind,
            "run": self.run_id,
            "seq": self._seq,
            "t": self._clock(),
        }
        record.update(fields)
        self._seq += 1
        if self._fh is not None:
            self._fh.write(_dumps(record) + "\n")
        else:
            self.events.append(record)

    def span(self, name: str, **attrs) -> Span:
        """Hierarchical timed region; nesting tracked automatically."""
        return Span(self, name, attrs)

    # -- metric registry ------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def hist(self, name: str, value: float) -> None:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = _Hist()
        h.add(float(value))

    def merge_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Fold another run's metrics snapshot into this registry.

        Used by the parallel experiment runner to stitch per-worker
        metric registries into the parent run: counters add, gauges
        take the incoming value (last writer wins, as with
        :meth:`gauge`), histogram sketches merge their bucket counts
        and extrema (order-independent; :mod:`repro.obs.sketch`).
        Missing keys, empty snapshots and empty histogram summaries
        are all tolerated as no-ops.
        """
        if not snapshot:
            return
        for name, n in (snapshot.get("counters") or {}).items():
            self.count(name, int(n or 0))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, summary in (snapshot.get("hists") or {}).items():
            if not summary:
                continue  # empty histogram: nothing to fold in
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = _Hist()
            h.merge(summary)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Current aggregated metrics (what ``close`` will emit)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "hists": {k: self._hists[k].summary() for k in sorted(self._hists)},
        }

    # -- lifecycle -------------------------------------------------------
    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush metrics, emit ``run_end`` and close the sink (idempotent)."""
        if self._closed:
            return
        self.event("metrics", **self.metrics_snapshot())
        self.event("run_end", events=self._seq + 1)
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Process-global telemetry (the library default for instrumentation
# points that have no threaded handle — cache hit counters, budget
# expiry, fault injection).  Defaults to NULL_TELEMETRY.
# ----------------------------------------------------------------------
_GLOBAL: Union[Telemetry, NullTelemetry] = NULL_TELEMETRY


def get_telemetry() -> Union[Telemetry, NullTelemetry]:
    """The process-global telemetry (NULL_TELEMETRY unless installed)."""
    return _GLOBAL


def set_telemetry(tel: Optional[Union[Telemetry, NullTelemetry]]):
    """Install ``tel`` as the process-global telemetry (None resets)."""
    global _GLOBAL
    _GLOBAL = tel if tel is not None else NULL_TELEMETRY
    return _GLOBAL


@contextlib.contextmanager
def telemetry_session(tel: Union[Telemetry, NullTelemetry]):
    """Temporarily install ``tel`` globally; always restores on exit."""
    previous = get_telemetry()
    set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)


def active_run_id() -> Optional[str]:
    """Run id of the global telemetry, or None when disabled."""
    return _GLOBAL.run_id
