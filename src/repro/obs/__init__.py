"""Telemetry subsystem: spans, metrics, refinement traces, run reports.

Zero-dependency observability layer (docs/OBSERVABILITY.md):

* :class:`Telemetry` — hierarchical spans, counters/gauges/histograms
  and structured events, exported as versioned JSONL;
* :class:`NullTelemetry` / :data:`NULL_TELEMETRY` — the allocation-free
  default that keeps hot paths untouched when tracing is off;
* :func:`get_telemetry` / :func:`set_telemetry` /
  :func:`telemetry_session` — the process-global handle used by
  instrumentation points without a threaded parameter (cache counters,
  budget expiry, fault injection);
* :mod:`repro.obs.logbridge` — stdlib ``logging`` bridged into trace
  events plus the CLI console handler;
* :mod:`repro.obs.report` — ``python -m repro report <trace.jsonl>``.
"""

from repro.obs.logbridge import (
    ROOT_LOGGER,
    TelemetryLogHandler,
    bridge_logging,
    setup_logging,
    unbridge_logging,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    NullTelemetry,
    Span,
    Telemetry,
    active_run_id,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)

__all__ = [
    "NULL_TELEMETRY",
    "SCHEMA_VERSION",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetryLogHandler",
    "ROOT_LOGGER",
    "active_run_id",
    "bridge_logging",
    "get_telemetry",
    "set_telemetry",
    "setup_logging",
    "telemetry_session",
    "unbridge_logging",
]
