"""Telemetry subsystem: spans, metrics, refinement traces, run reports.

Zero-dependency observability layer (docs/OBSERVABILITY.md):

* :class:`Telemetry` — hierarchical spans, counters/gauges/histograms
  and structured events, exported as versioned JSONL;
* :class:`NullTelemetry` / :data:`NULL_TELEMETRY` — the allocation-free
  default that keeps hot paths untouched when tracing is off;
* :func:`get_telemetry` / :func:`set_telemetry` /
  :func:`telemetry_session` — the process-global handle used by
  instrumentation points without a threaded parameter (cache counters,
  budget expiry, fault injection);
* :mod:`repro.obs.sketch` — the deterministic log-bucket quantile
  sketch behind every histogram (p50/p90/p99, mergeable);
* :mod:`repro.obs.slo` — declarative objectives with multi-window
  burn-rate alerting over the serving outcome stream;
* :mod:`repro.obs.profile` — span-tree self-time hotspot attribution;
* :mod:`repro.obs.logbridge` — stdlib ``logging`` bridged into trace
  events plus the CLI console handler;
* :mod:`repro.obs.report` — ``python -m repro report <trace.jsonl>``;
* :mod:`repro.obs.watch` — ``python -m repro watch <trace.jsonl>``.
"""

from repro.obs.logbridge import (
    ROOT_LOGGER,
    TelemetryLogHandler,
    bridge_logging,
    setup_logging,
    unbridge_logging,
)
from repro.obs.sketch import GAMMA, LogBucketSketch
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SLOEngine,
    SLObjective,
    parse_objective,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    NullTelemetry,
    Span,
    Telemetry,
    active_run_id,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)

__all__ = [
    "DEFAULT_WINDOWS",
    "GAMMA",
    "LogBucketSketch",
    "NULL_TELEMETRY",
    "SCHEMA_VERSION",
    "SLOEngine",
    "SLObjective",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TelemetryLogHandler",
    "ROOT_LOGGER",
    "parse_objective",
    "active_run_id",
    "bridge_logging",
    "get_telemetry",
    "set_telemetry",
    "setup_logging",
    "telemetry_session",
    "unbridge_logging",
]
