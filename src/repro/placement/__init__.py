"""Placement substrate: force-directed global placement + legalization.

Stands in for the Cadence Innovus placement the paper starts from.
Quality target is modest — TSteiner treats placement as fixed input —
but the placer must produce *correlated* geometry (connected cells
near each other, realistic net spans) or Steiner refinement would be
optimizing noise.
"""

from repro.placement.placer import PlacementConfig, place

__all__ = ["PlacementConfig", "place"]
