"""Force-directed global placement with row legalization.

The algorithm is the classic attract/spread loop:

1. *Attraction* — every movable cell is pulled toward the centroid of
   the pins it connects to (a Bound2Bound-lite net model).  Ports act
   as fixed anchors, which stretches logic between its I/O the way a
   wirelength-driven placer does.
2. *Spreading* — a coarse density grid computes per-bin overflow and
   pushes cells from overfull bins toward neighbouring underfull ones.
3. *Legalization* — cells snap to standard-cell rows; within a row they
   are sorted by x and packed left-to-right with site alignment,
   resolving overlaps (Tetris-style).

The result is written back into ``netlist.cells[i].x/y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.netlist.netlist import Netlist


@dataclass
class PlacementConfig:
    """Knobs for the placer; defaults work across all benchmarks."""

    iterations: int = 60
    attraction: float = 0.35  # step fraction toward net centroid
    spreading: float = 0.45  # step fraction of density push
    density_bins: int = 16
    seed: int = 7
    margin: float = 2.0  # um keep-out from the die edge


def _net_arrays(netlist: Netlist):
    """Flatten net membership into (pin_cell, net_id) arrays for numpy."""
    cell_ids: List[int] = []
    net_ids: List[int] = []
    port_pos: List[List[float]] = []
    port_net: List[int] = []
    for net in netlist.nets:
        for p in net.pins:
            pin = netlist.pins[p]
            if pin.is_cell_pin:
                cell_ids.append(pin.cell_index)
                net_ids.append(net.index)
            else:
                port_pos.append([pin.offset[0], pin.offset[1]])
                port_net.append(net.index)
    return (
        np.array(cell_ids, dtype=np.int64),
        np.array(net_ids, dtype=np.int64),
        np.array(port_pos, dtype=np.float64).reshape(-1, 2),
        np.array(port_net, dtype=np.int64),
    )


def place(netlist: Netlist, config: Optional[PlacementConfig] = None) -> None:
    """Place all cells of ``netlist`` in-place."""
    config = config or PlacementConfig()
    rng = np.random.default_rng(config.seed)
    n_cells = netlist.num_cells
    if n_cells == 0:
        return
    width, height = netlist.die_width, netlist.die_height
    margin = config.margin

    x = rng.uniform(margin, width - margin, size=n_cells)
    y = rng.uniform(margin, height - margin, size=n_cells)

    cell_ids, net_ids, port_pos, port_net = _net_arrays(netlist)
    n_nets = netlist.num_nets

    # Per-net fixed (port) contribution to the centroid.
    port_sum = np.zeros((n_nets, 2), dtype=np.float64)
    port_cnt = np.zeros(n_nets, dtype=np.float64)
    if port_net.size:
        np.add.at(port_sum, port_net, port_pos)
        np.add.at(port_cnt, port_net, 1.0)

    cell_net_cnt = np.bincount(net_ids, minlength=n_nets).astype(np.float64)
    total_cnt = np.maximum(cell_net_cnt + port_cnt, 1.0)

    # How many nets touch each cell (for averaging the pull).
    nets_per_cell = np.bincount(cell_ids, minlength=n_cells).astype(np.float64)
    nets_per_cell = np.maximum(nets_per_cell, 1.0)

    bins = config.density_bins
    bin_w = width / bins
    bin_h = height / bins
    cell_area = np.array(
        [c.cell_type.area * netlist.technology.site_width * netlist.technology.row_height
         for c in netlist.cells],
        dtype=np.float64,
    )
    bin_capacity = bin_w * bin_h

    for it in range(config.iterations):
        # ---- attraction toward net centroids ----
        net_sum = port_sum.copy()
        np.add.at(net_sum[:, 0], net_ids, x[cell_ids])
        np.add.at(net_sum[:, 1], net_ids, y[cell_ids])
        centroid = net_sum / total_cnt[:, None]

        pull = np.zeros((n_cells, 2), dtype=np.float64)
        np.add.at(pull[:, 0], cell_ids, centroid[net_ids, 0] - x[cell_ids])
        np.add.at(pull[:, 1], cell_ids, centroid[net_ids, 1] - y[cell_ids])
        x += config.attraction * pull[:, 0] / nets_per_cell
        y += config.attraction * pull[:, 1] / nets_per_cell

        # ---- density spreading ----
        bx = np.clip((x / bin_w).astype(np.int64), 0, bins - 1)
        by = np.clip((y / bin_h).astype(np.int64), 0, bins - 1)
        density = np.zeros((bins, bins), dtype=np.float64)
        np.add.at(density, (bx, by), cell_area)
        overflow = density / bin_capacity  # >1 means overfull

        # Gradient of the density field: push downhill.
        gx = np.zeros_like(overflow)
        gy = np.zeros_like(overflow)
        gx[1:-1, :] = (overflow[2:, :] - overflow[:-2, :]) * 0.5
        gx[0, :] = overflow[1, :] - overflow[0, :]
        gx[-1, :] = overflow[-1, :] - overflow[-2, :]
        gy[:, 1:-1] = (overflow[:, 2:] - overflow[:, :-2]) * 0.5
        gy[:, 0] = overflow[:, 1] - overflow[:, 0]
        gy[:, -1] = overflow[:, -1] - overflow[:, -2]

        strength = config.spreading * (1.0 - it / config.iterations)
        push_scale = np.maximum(overflow[bx, by] - 0.8, 0.0)
        x -= strength * bin_w * gx[bx, by] * push_scale
        y -= strength * bin_h * gy[bx, by] * push_scale

        # Small decaying jitter avoids degenerate stacking.
        if it < config.iterations // 2:
            jitter = 0.5 * (1.0 - it / config.iterations)
            x += rng.normal(0.0, jitter, size=n_cells)
            y += rng.normal(0.0, jitter, size=n_cells)

        np.clip(x, margin, width - margin, out=x)
        np.clip(y, margin, height - margin, out=y)

    _legalize(netlist, x, y)


def _legalize(netlist: Netlist, x: np.ndarray, y: np.ndarray) -> None:
    """Snap to rows and pack within each row without overlaps."""
    tech = netlist.technology
    row_h = tech.row_height
    site_w = tech.site_width
    width = netlist.die_width
    n_rows = max(1, int(netlist.die_height / row_h))

    row_of = np.clip((y / row_h).astype(np.int64), 0, n_rows - 1)
    widths = np.array([c.cell_type.area * site_w for c in netlist.cells])

    order = np.argsort(x, kind="stable")
    # Greedy per-row packing with displacement-aware row choice: if a
    # row is full, the cell spills to the nearest row with space.
    row_cursor = np.zeros(n_rows, dtype=np.float64)
    for idx in order:
        r = int(row_of[idx])
        w = float(widths[idx])
        best = None
        for dr in range(n_rows):
            for cand in {max(0, r - dr), min(n_rows - 1, r + dr)}:
                if row_cursor[cand] + w <= width:
                    best = cand
                    break
            if best is not None:
                break
        if best is None:
            best = int(np.argmin(row_cursor))  # overfull die: stack anyway
        snapped_x = max(row_cursor[best], np.floor(x[idx] / site_w) * site_w)
        if snapped_x + w > width:
            snapped_x = row_cursor[best]
        cell = netlist.cells[idx]
        cell.x = float(snapped_x)
        cell.y = float(best * row_h)
        row_cursor[best] = snapped_x + w


def total_hpwl(netlist: Netlist) -> float:
    """Half-perimeter wirelength of the current placement (um)."""
    pos = netlist.pin_positions()
    total = 0.0
    for net in netlist.nets:
        pts = pos[net.pins]
        total += float(pts[:, 0].max() - pts[:, 0].min() + pts[:, 1].max() - pts[:, 1].min())
    return total
