"""Simulated-annealing baseline arm over the ECO op space (docs/ECO.md).

Classic Metropolis acceptance on the same merged penalty score the
greedy driver maximizes, with a geometric cooling schedule
``T_k = t0 * alpha**k``.  Everything is driven by one
``numpy.random.default_rng(seed)`` stream: proposals index into the
*current* netlist/forest, so the whole trajectory — and therefore the
accepted-op digest — is a pure function of (design state, config).
That determinism is what the ``eco-smoke`` CI job asserts.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.eco.ops import BufferInsertOp, EcoOp, NudgeOp, RerouteOp, ResizeOp
from repro.mcmm.sta import ScenarioReport
from repro.obs import get_telemetry
from repro.runtime.budget import Budget


def _propose(ctx, rng: np.random.Generator, config) -> Optional[EcoOp]:
    """One random op against the current state; None when the draw is
    inapplicable (counts as a cooling step, keeping the schedule pure)."""
    netlist = ctx.netlist
    forest = ctx.forest
    lib = netlist.library
    kind = int(rng.integers(4))
    # A draw outside the configured op space is inapplicable too — the
    # rng consumption stays identical across op_kinds settings.
    if ("buffer", "resize", "reroute", "nudge")[kind] not in config.op_kinds:
        return None
    if kind == 0:  # buffer insertion on a random net edge
        if not netlist.nets:
            return None
        net = netlist.nets[int(rng.integers(len(netlist.nets)))]
        if not net.sinks:
            return None
        sink = net.sinks[int(rng.integers(len(net.sinks)))]
        if not config.buffer_cells:
            return None
        cell = config.buffer_cells[int(rng.integers(len(config.buffer_cells)))]
        if cell not in lib:
            return None
        return BufferInsertOp(net.index, sink, cell)
    if kind == 1:  # resize to a random sibling drive strength
        if not netlist.cells:
            return None
        cell = netlist.cells[int(rng.integers(len(netlist.cells)))]
        ct = cell.cell_type
        if ct.is_sequential:
            return None
        others = [v for v in lib.variants_of(ct) if v.name != ct.name]
        if not others:
            return None
        to = others[int(rng.integers(len(others)))]
        return ResizeOp(cell.index, to, from_name=ct.name)
    if kind == 2:  # re-route a random tree
        if not forest.trees:
            return None
        tree = forest.trees[int(rng.integers(len(forest.trees)))]
        return RerouteOp(tree.net_index)
    # Steiner nudge on a random tree
    if not forest.trees:
        return None
    tree = forest.trees[int(rng.integers(len(forest.trees)))]
    if tree.n_steiner == 0:
        return None
    steps = config.polish_steps or (3.0,)
    step = steps[int(rng.integers(len(steps)))]
    dx, dy = ((step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step))[int(rng.integers(4))]
    return NudgeOp(tree.net_index, dx, dy)


def run_sa(
    ctx,
    config,
    result,
    budget: Optional[Budget] = None,
    on_round: Optional[Callable[[int], None]] = None,
) -> ScenarioReport:
    """Anneal over the op space; returns the final scenario report.

    Mutates ``ctx`` in place and fills the bookkeeping fields of
    ``result`` (an :class:`repro.eco.driver.EcoResult`).
    """
    from repro.eco.driver import _op_area, score_report

    tel = get_telemetry()
    rng = np.random.default_rng(config.seed)
    report = ctx.run()
    score_cur = score_report(report)
    for step in range(config.sa_steps):
        if report.merged_violations == 0:
            break
        if budget is not None and budget.expired():
            result.timed_out = True
            break
        temp = config.sa_t0 * config.sa_alpha**step
        op = _propose(ctx, rng, config)
        result.proposals += 1
        if op is None:
            continue
        if on_round is not None:
            on_round(step + 1)
        result.rounds = step + 1
        ctx.apply(op)
        if budget is not None:
            budget.spend_probe()
        new_report = ctx.run()
        new_score = score_report(new_report)
        result.trials += 1
        ds = new_score - score_cur
        if ds > 0.0:
            accept = True
        else:
            accept = float(rng.random()) < math.exp(ds / max(temp, 1e-9))
        if accept:
            report, score_cur = new_report, new_score
            result.accepted.append(op.describe())
            result.area_delta += _op_area(ctx, op)
            result.history.append(
                {"op": op.describe(), "score": new_score,
                 "wns": new_report.merged_wns, "tns": new_report.merged_tns}
            )
            if tel.enabled:
                tel.count("eco.ops_accepted")
        else:
            ctx.revert(op)
            result.reverted += 1
            if tel.enabled:
                tel.count("eco.ops_reverted")
    return report


__all__ = ["run_sa"]
