"""Typed, reversible ECO transforms (docs/ECO.md).

Every op mutates the ``(netlist, forest)`` pair **in place** through
``apply()`` and restores it bit-for-bit through ``revert()``.  Reverts
are LIFO: an op must be reverted before any later structural op touches
the same state (the driver applies one candidate at a time, so this
holds by construction).

Two invariants make accept/revert cheap and exact:

* **Tree-identity caching** — ``flat_forest_of`` validates its cached
  CSR view per tree (``tree._topo is ref``), not per forest object, so
  swapping one entry of ``forest.trees`` invalidates exactly the right
  cache while ``revert()`` restores the *original tree objects* and the
  original coordinates bitwise.
* **List-tail construction** — ``Netlist.add_cell``/``add_net`` only
  append, so a structural revert is ``del list[tail:]`` plus restoring
  the one spliced sink, leaving every pre-existing object untouched.

Ops that change the netlist (:class:`BufferInsertOp`,
:class:`ResizeOp`) set ``mutates_netlist = True``: the STA engine binds
cell arcs and pin caps at construction, so the driver rebuilds its
engine after such an op (see ``EcoContext.rebuild``).  Re-route and
nudge ops keep the netlist intact and re-time through the incremental
dirty-tree path.

Each op reports the nets it perturbs (``dirty_nets()``); the fan-out
cone of those nets (:func:`dirty_cone`) is the exact set of endpoints
whose slack can change — used to target hybrid polish and to verify
that accepted ops only moved the endpoints they claimed to.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.netlist import CellInst, Net, Netlist, Pin, PinDirection
from repro.pdk.liberty import CellType
from repro.steiner.forest import SteinerForest
from repro.steiner.rsmt import construct_tree
from repro.steiner.tree import SteinerTree


# ----------------------------------------------------------------------
# Forest surgery helpers
# ----------------------------------------------------------------------
def _tree_slot(forest: SteinerForest, net_index: int) -> int:
    for i, tree in enumerate(forest.trees):
        if tree.net_index == net_index:
            return i
    raise KeyError(f"no tree for net {net_index}")


def _rebuild_offsets(forest: SteinerForest) -> None:
    """Recompute the flat-view offsets after ``forest.trees`` surgery."""
    offsets = np.zeros(len(forest.trees) + 1, dtype=np.int64)
    for i, tree in enumerate(forest.trees):
        offsets[i + 1] = offsets[i] + tree.n_steiner
    forest._offsets = offsets


def _fresh_tree(netlist: Netlist, net_index: int) -> SteinerTree:
    """Fresh RSMT for one net at the current pin positions."""
    net = netlist.nets[net_index]
    pos = netlist.pin_positions()
    pins = net.pins
    return construct_tree(net.index, pins, pos[np.array(pins, dtype=np.int64)])


# ----------------------------------------------------------------------
# Dirty cone
# ----------------------------------------------------------------------
def dirty_cone(netlist: Netlist, net_indices: Iterable[int]) -> List[int]:
    """Endpoints reachable from the given nets' sinks (sorted pin ids).

    Forward BFS over combinational cell arcs and net edges.  Register D
    pins and PO ports terminate (they *are* endpoints); sequential
    cells do not propagate (the clock network is ideal, so a launch arc
    is never downstream of a signal net's sink).  This is the exact set
    of endpoints whose arrival can change when the listed nets' delays
    change.
    """
    driver_net: Dict[int, Net] = {net.driver: net for net in netlist.nets}
    endpoint_set = set(netlist.endpoints())
    seen: set = set()
    cone: set = set()
    queue: List[int] = []
    for ni in net_indices:
        for s in netlist.nets[ni].sinks:
            if s not in seen:
                seen.add(s)
                queue.append(s)
    head = 0
    while head < len(queue):
        p = queue[head]
        head += 1
        if p in endpoint_set:
            cone.add(p)
            continue
        pin = netlist.pins[p]
        if pin.cell_index < 0:
            continue  # dangling port that is not an endpoint
        cell = netlist.cells[pin.cell_index]
        ct = cell.cell_type
        if ct.is_sequential:
            continue
        for out_name in ct.output_pins:
            out_pin = cell.pin_indices[out_name]
            net = driver_net.get(out_pin)
            if net is None:
                continue
            for s in net.sinks:
                if s not in seen:
                    seen.add(s)
                    queue.append(s)
    return sorted(cone)


# ----------------------------------------------------------------------
# State cloning (flow/experiments must never mutate shared designs)
# ----------------------------------------------------------------------
def clone_netlist(netlist: Netlist) -> Netlist:
    """Structural deep copy sharing the immutable library/technology."""
    clone = Netlist(netlist.name, netlist.library, netlist.technology, netlist.clock)
    clone.die_width = netlist.die_width
    clone.die_height = netlist.die_height
    clone.cells = [
        CellInst(c.index, c.name, c.cell_type, c.x, c.y, dict(c.pin_indices))
        for c in netlist.cells
    ]
    clone.pins = [
        Pin(p.index, p.name, p.direction, p.cell_index, p.offset, p.cap, p.is_port)
        for p in netlist.pins
    ]
    clone.nets = [Net(n.index, n.name, n.driver, list(n.sinks)) for n in netlist.nets]
    return clone


def clone_state(netlist: Netlist, forest: SteinerForest) -> Tuple[Netlist, SteinerForest]:
    """Private (netlist, forest) pair an ECO run may mutate freely."""
    clone = clone_netlist(netlist)
    trusted = SteinerTree._trusted
    trees = [
        trusted(t.net_index, list(t.pin_ids), t.pin_xy.copy(), t.steiner_xy.copy(), list(t.edges))
        for t in forest.trees
    ]
    return clone, SteinerForest(clone, trees)


# ----------------------------------------------------------------------
# Ops
# ----------------------------------------------------------------------
class EcoOp:
    """Base class: a reversible in-place transform of (netlist, forest)."""

    #: True when apply() changes cells/pins/nets — the caller must then
    #: rebuild its STA engine (arcs and pin caps bind at construction).
    mutates_netlist = False

    def apply(self, netlist: Netlist, forest: SteinerForest) -> None:
        raise NotImplementedError

    def revert(self, netlist: Netlist, forest: SteinerForest) -> None:
        raise NotImplementedError

    def dirty_nets(self) -> Tuple[int, ...]:
        """Nets whose delay this op perturbs (valid after ``apply``)."""
        raise NotImplementedError

    def cost(self) -> float:
        """Area cost in sites (0 for coordinate/topology-only ops)."""
        return 0.0

    def describe(self) -> str:
        """Stable, index-based description (digest + ranking tie-break)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class BufferInsertOp(EcoOp):
    """Insert a buffer between a net's driver and one sink.

    The sink is spliced onto a new single-sink net driven by the
    buffer's output; the buffer input joins the original net in the
    sink's place.  Both nets get fresh RSMTs.  The buffer lands at the
    driver->sink midpoint, clamped to the die.
    """

    mutates_netlist = True

    def __init__(self, net_index: int, sink_pin: int, buffer_cell: str = "BUF_X2") -> None:
        self.net_index = int(net_index)
        self.sink_pin = int(sink_pin)
        self.buffer_cell = buffer_cell
        self._saved: Optional[dict] = None

    def apply(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is not None:
            raise RuntimeError("op already applied")
        net = netlist.nets[self.net_index]
        k = net.sinks.index(self.sink_pin)
        slot = _tree_slot(forest, self.net_index)
        saved = {
            "n_cells": len(netlist.cells),
            "n_pins": len(netlist.pins),
            "n_nets": len(netlist.nets),
            "sink_slot": k,
            "tree_slot": slot,
            "old_tree": forest.trees[slot],
        }
        pos = netlist.pin_positions()
        dx, dy = pos[net.driver], pos[self.sink_pin]
        ct = netlist.library[self.buffer_cell]
        inst = netlist.add_cell(f"eco_buf{saved['n_cells']}", ct)
        inst.x = float(np.clip(0.5 * (dx[0] + dy[0]), 0.0, netlist.die_width))
        inst.y = float(np.clip(0.5 * (dx[1] + dy[1]), 0.0, netlist.die_height))
        net.sinks[k] = inst.pin_indices[ct.input_pins[0]]
        new_net = netlist.add_net(
            f"eco_bufnet{saved['n_nets']}",
            driver=inst.pin_indices[ct.output_pins[0]],
            sinks=[self.sink_pin],
        )
        saved["new_net"] = new_net.index
        self._saved = saved
        forest.trees[slot] = _fresh_tree(netlist, self.net_index)
        forest.trees.append(_fresh_tree(netlist, new_net.index))
        _rebuild_offsets(forest)

    def revert(self, netlist: Netlist, forest: SteinerForest) -> None:
        saved = self._saved
        if saved is None:
            raise RuntimeError("op not applied")
        del netlist.cells[saved["n_cells"]:]
        del netlist.pins[saved["n_pins"]:]
        del netlist.nets[saved["n_nets"]:]
        netlist.nets[self.net_index].sinks[saved["sink_slot"]] = self.sink_pin
        netlist._pin_net = None
        netlist._pin_static = None
        forest.trees.pop()
        forest.trees[saved["tree_slot"]] = saved["old_tree"]
        _rebuild_offsets(forest)
        self._saved = None

    def dirty_nets(self) -> Tuple[int, ...]:
        if self._saved is not None:
            return (self.net_index, self._saved["new_net"])
        return (self.net_index,)

    def cost(self) -> float:
        return 2.0  # buffer area; refined by the driver from the library

    def describe(self) -> str:
        return f"buf net={self.net_index} sink={self.sink_pin} cell={self.buffer_cell}"


class ResizeOp(EcoOp):
    """Swap a cell instance to a drive-strength variant.

    The variant must share the pin interface (``CellLibrary.variants_of``
    guarantees this), so only ``cell_type`` and the input pin caps
    change — pin ids, offsets and net connectivity stay put.
    """

    mutates_netlist = True

    def __init__(self, cell_index: int, to_cell: CellType, from_name: str = "?") -> None:
        self.cell_index = int(cell_index)
        self.to_cell = to_cell
        self.from_name = from_name
        self._saved: Optional[CellType] = None

    def apply(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is not None:
            raise RuntimeError("op already applied")
        cell = netlist.cells[self.cell_index]
        old = cell.cell_type
        if (
            old.input_pins != self.to_cell.input_pins
            or old.output_pins != self.to_cell.output_pins
            or old.is_sequential != self.to_cell.is_sequential
        ):
            raise ValueError(
                f"resize {old.name} -> {self.to_cell.name}: pin interfaces differ"
            )
        self._saved = old
        cell.cell_type = self.to_cell
        for pin_name in self.to_cell.input_pins:
            netlist.pins[cell.pin_indices[pin_name]].cap = self.to_cell.input_cap(pin_name)

    def revert(self, netlist: Netlist, forest: SteinerForest) -> None:
        old = self._saved
        if old is None:
            raise RuntimeError("op not applied")
        cell = netlist.cells[self.cell_index]
        cell.cell_type = old
        for pin_name in old.input_pins:
            netlist.pins[cell.pin_indices[pin_name]].cap = old.input_cap(pin_name)
        self._saved = None

    def _nets_touching(self, netlist: Netlist) -> Tuple[int, ...]:
        cell = netlist.cells[self.cell_index]
        touched: List[int] = []
        pin_ids = set(cell.pin_indices.values())
        for net in netlist.nets:
            if net.driver in pin_ids or any(s in pin_ids for s in net.sinks):
                touched.append(net.index)
        return tuple(touched)

    def dirty_nets(self) -> Tuple[int, ...]:
        # Resolved lazily by the driver via dirty_nets_on(); the static
        # fallback is empty because net membership needs the netlist.
        return ()

    def dirty_nets_on(self, netlist: Netlist) -> Tuple[int, ...]:
        return self._nets_touching(netlist)

    def cost(self) -> float:
        if self._saved is not None:
            return max(self.to_cell.area - self._saved.area, 0.0)
        return max(self.to_cell.area - 1.0, 0.0)

    def describe(self) -> str:
        frm = self._saved.name if self._saved is not None else self.from_name
        return f"resize cell={self.cell_index} {frm}->{self.to_cell.name}"


class RerouteOp(EcoOp):
    """Replace one net's tree with a fresh RSMT at current positions."""

    def __init__(self, net_index: int) -> None:
        self.net_index = int(net_index)
        self._saved: Optional[Tuple[int, SteinerTree]] = None

    def apply(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is not None:
            raise RuntimeError("op already applied")
        slot = _tree_slot(forest, self.net_index)
        self._saved = (slot, forest.trees[slot])
        forest.trees[slot] = _fresh_tree(netlist, self.net_index)
        _rebuild_offsets(forest)

    def revert(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is None:
            raise RuntimeError("op not applied")
        slot, old_tree = self._saved
        forest.trees[slot] = old_tree
        _rebuild_offsets(forest)
        self._saved = None

    def dirty_nets(self) -> Tuple[int, ...]:
        return (self.net_index,)

    def describe(self) -> str:
        return f"reroute net={self.net_index}"


class NudgeOp(EcoOp):
    """Shift one tree's Steiner points by (dx, dy), clamped to the die.

    Coordinate-only: the pinned ``ScenarioSTA`` re-times it through the
    incremental dirty-tree path.  Revert restores the original
    coordinate array object, so the round trip is bitwise-exact.
    """

    def __init__(self, net_index: int, dx: float, dy: float) -> None:
        self.net_index = int(net_index)
        self.dx = float(dx)
        self.dy = float(dy)
        self._saved: Optional[Tuple[int, np.ndarray]] = None

    def apply(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is not None:
            raise RuntimeError("op already applied")
        slot = _tree_slot(forest, self.net_index)
        tree = forest.trees[slot]
        self._saved = (slot, tree.steiner_xy)
        moved = tree.steiner_xy + np.array([self.dx, self.dy])
        np.clip(moved[:, 0], 0.0, netlist.die_width, out=moved[:, 0])
        np.clip(moved[:, 1], 0.0, netlist.die_height, out=moved[:, 1])
        tree.steiner_xy = moved

    def revert(self, netlist: Netlist, forest: SteinerForest) -> None:
        if self._saved is None:
            raise RuntimeError("op not applied")
        slot, old_xy = self._saved
        forest.trees[slot].steiner_xy = old_xy
        self._saved = None

    def dirty_nets(self) -> Tuple[int, ...]:
        return (self.net_index,)

    def describe(self) -> str:
        return f"nudge net={self.net_index} dx={self.dx:g} dy={self.dy:g}"


__all__ = [
    "BufferInsertOp",
    "EcoOp",
    "NudgeOp",
    "RerouteOp",
    "ResizeOp",
    "clone_netlist",
    "clone_state",
    "dirty_cone",
]
