"""Closed-loop ECO engine (docs/ECO.md).

Discrete engineering-change-order optimization on top of the Steiner
refinement stack: a transform library of typed, reversible ops
(:mod:`repro.eco.ops`), a greedy/hybrid closed-loop driver
(:mod:`repro.eco.driver`), and a seeded simulated-annealing baseline
(:mod:`repro.eco.sa`) over the same op space.
"""

from repro.eco.ops import (
    BufferInsertOp,
    EcoOp,
    NudgeOp,
    RerouteOp,
    ResizeOp,
    clone_netlist,
    clone_state,
    dirty_cone,
)
from repro.eco.driver import (
    EcoConfig,
    EcoContext,
    EcoResult,
    evaluate_candidates,
    run_eco,
)
from repro.eco.sa import run_sa

__all__ = [
    "BufferInsertOp",
    "EcoConfig",
    "EcoContext",
    "EcoOp",
    "EcoResult",
    "NudgeOp",
    "RerouteOp",
    "ResizeOp",
    "clone_netlist",
    "clone_state",
    "dirty_cone",
    "evaluate_candidates",
    "run_eco",
    "run_sa",
]
