"""Closed-loop ECO driver (docs/ECO.md).

The driver reads per-scenario slack from a :class:`ScenarioSTA`, walks
the critical path of each violating endpoint, generates candidate ops
(buffer insertion, resizing, re-routing), ranks them by estimated gain
per area cost, and validates the best few through the exact sign-off
engine: apply, re-time, accept if the MCMM-merged penalty score
improved, else revert bit-for-bit.  It iterates until sign-off is
clean, no candidate helps, or the runtime budget expires.

Three arms share the op space (``EcoConfig.arm``):

* ``greedy`` — rank-and-validate as above;
* ``sa``     — the seeded simulated-annealing baseline
  (:mod:`repro.eco.sa`);
* ``hybrid`` — greedy, plus a deterministic first-improvement Steiner
  *nudge* polish over each accepted op's dirty cone (the "gradient
  polish after each accepted discrete op" schedule).

Scoring uses the same WNS/TNS weights as the refinement penalty
(:mod:`repro.core.penalty`), so ECO verdicts and refinement verdicts
are commensurable.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.penalty import PenaltyConfig
from repro.eco.ops import (
    BufferInsertOp,
    EcoOp,
    NudgeOp,
    RerouteOp,
    ResizeOp,
    _fresh_tree,
    dirty_cone,
)
from repro.mcmm.scenario import ScenarioSet
from repro.mcmm.sta import ScenarioMetrics, ScenarioReport, ScenarioSTA
from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.runtime.budget import Budget
from repro.sta.engine import STAEngine
from repro.steiner.forest import SteinerForest

#: Routing layer used for quick wire-RC gain estimates (the default
#: horizontal signal layer; estimates only rank candidates, the exact
#: engine always has the last word).
_EST_LAYER = 2

_W_WNS = abs(PenaltyConfig().lambda_wns)
_W_TNS = abs(PenaltyConfig().lambda_tns)


def score_report(report: ScenarioReport) -> float:
    """Merged penalty score; higher is better (0 when timing is clean)."""
    return _W_WNS * min(report.merged_wns, 0.0) + _W_TNS * report.merged_tns


@dataclass(frozen=True)
class EcoConfig:
    """Knobs for one ECO run; every default is deterministic."""

    arm: str = "greedy"  # greedy | sa | hybrid
    seed: int = 0
    max_ops: int = 8  # accepted discrete ops
    max_rounds: int = 12
    trials_per_round: int = 6
    top_endpoints: int = 4
    min_gain: float = 1e-9  # score must improve by more than this
    buffer_cells: Tuple[str, ...] = ("BUF_X2", "BUF_X4")
    #: Candidate op space.  The experiment's Steiner-only reference arm
    #: restricts this to ("reroute", "nudge") to measure what geometry
    #: refinement alone can close without touching the netlist.
    op_kinds: Tuple[str, ...] = ("buffer", "resize", "reroute", "nudge")
    # Hybrid polish: first-improvement nudges over the dirty cone.
    polish_steps: Tuple[float, ...] = (3.0, 6.0)  # um
    polish_trees: int = 4
    # SA baseline schedule (geometric cooling).  t0 is sized to the
    # penalty score scale: typical single-op deltas are ~0.1, so the
    # walk starts permissive and is effectively greedy by the end.
    sa_steps: int = 60
    sa_t0: float = 1.0
    sa_alpha: float = 0.88

    def __post_init__(self) -> None:
        if self.arm not in ("greedy", "sa", "hybrid"):
            raise ValueError(f"unknown ECO arm {self.arm!r}")
        bad = set(self.op_kinds) - {"buffer", "resize", "reroute", "nudge"}
        if bad:
            raise ValueError(f"unknown ECO op kinds {sorted(bad)!r}")


@dataclass
class EcoResult:
    """Outcome of one ECO run (deterministic under a fixed seed)."""

    design: str
    arm: str
    seed: int
    accepted: List[str]  # op descriptions, acceptance order
    digest: str  # sha256 of the accepted-op sequence
    initial: Dict[str, object]
    final: Dict[str, object]
    rounds: int = 0
    proposals: int = 0
    trials: int = 0
    reverted: int = 0
    rebuilds: int = 0
    area_delta: float = 0.0
    timed_out: bool = False
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def num_accepted(self) -> int:
        return len(self.accepted)

    def summary(self) -> Dict[str, object]:
        """JSON-able digest for the serving layer and reports."""
        return {
            "design": self.design,
            "arm": self.arm,
            "seed": self.seed,
            "accepted": list(self.accepted),
            "digest": self.digest,
            "initial": self.initial,
            "final": self.final,
            "rounds": self.rounds,
            "proposals": self.proposals,
            "trials": self.trials,
            "reverted": self.reverted,
            "rebuilds": self.rebuilds,
            "area_delta": self.area_delta,
            "timed_out": self.timed_out,
        }


def _metrics_dict(report: ScenarioReport) -> Dict[str, object]:
    return {
        "wns": report.merged_wns,
        "tns": report.merged_tns,
        "violations": report.merged_violations,
        "score": score_report(report),
        "scenarios": {
            m.name + "/" + m.check: {
                "wns": m.wns,
                "tns": m.tns,
                "violations": m.num_violations,
            }
            for m in report.scenarios
        },
    }


def _digest(descriptions: Sequence[str]) -> str:
    return hashlib.sha256("\n".join(descriptions).encode()).hexdigest()[:16]


class EcoContext:
    """One mutable (netlist, forest, STA) triple an ECO run drives.

    Coordinate/topology ops re-time through the pinned
    ``ScenarioSTA``'s incremental path; netlist-mutating ops rebuild
    the engine (arcs and pin caps bind at construction) — ``rebuilds``
    counts how often.  ``force_batched=True`` keeps even neutral
    scenario sets on the batched kernel so warm and cold answers are
    bitwise-comparable.
    """

    def __init__(
        self,
        netlist: Netlist,
        forest: SteinerForest,
        scenarios: Optional[ScenarioSet] = None,
    ) -> None:
        self.netlist = netlist
        self.forest = forest
        self.scenarios = scenarios if scenarios is not None else ScenarioSet.default()
        self.rebuilds = 0
        self.queries = 0
        self._make()

    def _make(self) -> None:
        self.engine = STAEngine(self.netlist)
        self.sta = ScenarioSTA(
            self.netlist,
            self.forest,
            scenarios=self.scenarios,
            engine=self.engine,
            force_batched=True,
        )

    def rebuild(self) -> None:
        self.rebuilds += 1
        self._make()

    def run(self) -> ScenarioReport:
        self.queries += 1
        return self.sta.run()

    def apply(self, op: EcoOp) -> None:
        op.apply(self.netlist, self.forest)
        if op.mutates_netlist:
            self.rebuild()

    def revert(self, op: EcoOp) -> None:
        op.revert(self.netlist, self.forest)
        if op.mutates_netlist:
            self.rebuild()

    def dirty_nets_of(self, op: EcoOp) -> Tuple[int, ...]:
        if isinstance(op, ResizeOp):
            return op.dirty_nets_on(self.netlist)
        return op.dirty_nets()


def evaluate_candidates(
    netlist: Netlist,
    forest: SteinerForest,
    ops: Sequence[EcoOp],
    scenarios: Optional[ScenarioSet] = None,
    context: Optional[EcoContext] = None,
) -> List[Tuple[float, float]]:
    """(merged WNS, merged TNS) per candidate op, state restored after.

    With a warm ``context`` the ops re-time incrementally; without one
    a fresh context is built first (the cold path the ``eco_loop``
    bench kernel compares against).
    """
    ctx = context if context is not None else EcoContext(netlist, forest, scenarios)
    out: List[Tuple[float, float]] = []
    for op in ops:
        ctx.apply(op)
        report = ctx.run()
        out.append((report.merged_wns, report.merged_tns))
        ctx.revert(op)
    return out


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _worst_setup(report: ScenarioReport) -> Optional[ScenarioMetrics]:
    ms = [m for m in report.scenarios if m.check == "setup" and m.num_violations > 0]
    return min(ms, key=lambda m: (m.wns, m.name)) if ms else None


def _worst_hold(report: ScenarioReport) -> Optional[ScenarioMetrics]:
    ms = [m for m in report.scenarios if m.check == "hold" and m.num_violations > 0]
    return min(ms, key=lambda m: (m.wns, m.name)) if ms else None


def _violating_endpoints(metrics: ScenarioMetrics, top: int) -> List[int]:
    bad = [(v, ep) for ep, v in metrics.slack.items() if v < 0.0]
    bad.sort()
    return [ep for _, ep in bad[:top]]


def _critical_path(
    netlist: Netlist,
    arrival: np.ndarray,
    endpoint: int,
    sink_net: Dict[int, "object"],
) -> List[int]:
    """Pins of the worst path into ``endpoint`` (startpoint first).

    Walks backwards: sink -> net driver -> worst-arrival cell input,
    with deterministic lowest-pin-index tie-breaks.  Stops at ports and
    sequential launch pins.
    """
    path = [endpoint]
    p = endpoint
    for _ in range(len(netlist.pins)):
        net = sink_net.get(p)
        if net is None:
            break
        d = net.driver
        path.append(d)
        pin_d = netlist.pins[d]
        if pin_d.cell_index < 0:
            break
        cell = netlist.cells[pin_d.cell_index]
        ct = cell.cell_type
        if ct.is_sequential:
            break
        best = -1
        best_a = -math.inf
        for name in ct.input_pins:
            ip = cell.pin_indices[name]
            a = float(arrival[ip]) if ip < arrival.shape[0] else math.nan
            if math.isnan(a):
                a = -math.inf
            if a > best_a or (a == best_a and (best < 0 or ip < best)):
                best_a, best = a, ip
        if best < 0:
            break
        p = best
        path.append(p)
    path.reverse()
    return path


def _net_load(netlist: Netlist, forest: SteinerForest, net) -> float:
    """Lumped load a net's driver sees: sink caps + estimated wire cap."""
    cap = sum(netlist.pins[s].cap for s in net.sinks)
    try:
        wl = forest.tree_for_net(net.index).wirelength()
    except KeyError:
        wl = 0.0
    _, c_w = netlist.technology.wire_rc(_EST_LAYER, wl)
    return cap + c_w


def _buffer_delay(ct, load: float) -> float:
    arcs = ct.arcs_to(ct.output_pins[0])
    return arcs[0].delay.lookup(0.2, load) if arcs else 0.1


def _driver_res(netlist: Netlist, driver_pin: int) -> float:
    pin = netlist.pins[driver_pin]
    if pin.cell_index < 0:
        return 5.0  # boundary port: nominal source impedance
    return netlist.cells[pin.cell_index].cell_type.drive_res


def generate_candidates(
    ctx: EcoContext, report: ScenarioReport, config: EcoConfig
) -> List[Tuple[float, EcoOp]]:
    """Ranked candidate ops for the current violations.

    Estimates use first-order drive-resistance x load products and the
    technology's per-um wire RC — deliberately cheap, fully
    deterministic, and only ever used to *order* candidates; the exact
    batched STA validates every application.  Returns
    ``(estimated gain per area cost, op)`` best first.
    """
    netlist = ctx.netlist
    forest = ctx.forest
    lib = netlist.library
    tech = netlist.technology
    pos = netlist.pin_positions()
    sink_net = {s: net for net in netlist.nets for s in net.sinks}
    driver_net = {net.driver: net for net in netlist.nets}
    cands: Dict[str, Tuple[float, EcoOp]] = {}

    def add(gain: float, cost: float, op: EcoOp) -> None:
        key = op.describe()
        ranked = gain / max(cost, 0.5)
        if key not in cands or ranked > cands[key][0]:
            cands[key] = (ranked, op)

    setup = _worst_setup(report)
    if setup is not None:
        for ep in _violating_endpoints(setup, config.top_endpoints):
            path = _critical_path(netlist, setup.arrival, ep, sink_net)
            # Net edges along the path: (driver, sink) consecutive pairs.
            for a, b in zip(path, path[1:]):
                net = sink_net.get(b)
                if net is None or net.driver != a:
                    continue
                r_d = _driver_res(netlist, a)
                dist = float(np.abs(pos[a] - pos[b]).sum())
                r_w, c_w = tech.wire_rc(_EST_LAYER, dist)
                sink_cap = netlist.pins[b].cap
                # Buffer insertion: the driver sheds the far half of the
                # wire plus the sink cap, gains the buffer input cap; the
                # buffer re-drives the remaining half.
                if "buffer" in config.op_kinds and net.degree > 1 and dist > 1.0:
                    for cell_name in config.buffer_cells:
                        if cell_name not in lib:
                            continue
                        buf = lib[cell_name]
                        in_cap = buf.input_cap(buf.input_pins[0])
                        shed = sink_cap + 0.5 * c_w - in_cap
                        down = sink_cap + 0.5 * c_w
                        gain = r_d * shed + 0.5 * r_w * down - _buffer_delay(buf, down)
                        add(gain, buf.area, BufferInsertOp(net.index, b, cell_name))
                # Re-route: only when a fresh RSMT shortens the net.
                try:
                    old_wl = forest.tree_for_net(net.index).wirelength()
                except KeyError:
                    old_wl = 0.0
                if "reroute" in config.op_kinds and old_wl > 0.0:
                    new_wl = _fresh_tree(netlist, net.index).wirelength()
                    if old_wl - new_wl > 0.01:
                        _, c_delta = tech.wire_rc(_EST_LAYER, old_wl - new_wl)
                        add(r_d * c_delta, 0.5, RerouteOp(net.index))
            # Upsize combinational cells on the path.
            for p in path if "resize" in config.op_kinds else ():
                pin = netlist.pins[p]
                if pin.cell_index < 0 or pin.direction.value != "output":
                    continue
                cell = netlist.cells[pin.cell_index]
                ct = cell.cell_type
                if ct.is_sequential:
                    continue
                variants = lib.variants_of(ct)
                names = [v.name for v in variants]
                i = names.index(ct.name)
                if i + 1 >= len(variants):
                    continue
                stronger = variants[i + 1]
                net = driver_net.get(p)
                load = _net_load(netlist, forest, net) if net is not None else 0.01
                d_cap = sum(
                    stronger.input_cap(n) - ct.input_cap(n) for n in ct.input_pins
                )
                gain = (ct.drive_res - stronger.drive_res) * load - 3.0 * d_cap
                add(
                    gain,
                    max(stronger.area - ct.area, 0.5),
                    ResizeOp(cell.index, stronger, from_name=ct.name),
                )

    hold = _worst_hold(report)
    if hold is not None:
        pad = config.buffer_cells[0] if config.buffer_cells else "BUF_X2"
        for ep in _violating_endpoints(hold, config.top_endpoints):
            net = sink_net.get(ep)
            if net is None:
                continue
            if "buffer" in config.op_kinds and pad in lib:
                buf = lib[pad]
                down = netlist.pins[ep].cap
                add(
                    _buffer_delay(buf, down),
                    buf.area,
                    BufferInsertOp(net.index, ep, pad),
                )
            # Downsize the driver to slow the short path.
            d_pin = netlist.pins[net.driver]
            if "resize" in config.op_kinds and d_pin.cell_index >= 0:
                cell = netlist.cells[d_pin.cell_index]
                ct = cell.cell_type
                if not ct.is_sequential:
                    variants = lib.variants_of(ct)
                    names = [v.name for v in variants]
                    i = names.index(ct.name)
                    if i > 0:
                        weaker = variants[i - 1]
                        load = _net_load(netlist, forest, net)
                        gain = (weaker.drive_res - ct.drive_res) * load
                        add(gain, 0.5, ResizeOp(cell.index, weaker, from_name=ct.name))

    ranked = sorted(cands.values(), key=lambda t: (-t[0], t[1].describe()))
    return ranked


# ----------------------------------------------------------------------
# Greedy / hybrid loops
# ----------------------------------------------------------------------
def _op_area(ctx: EcoContext, op: EcoOp) -> float:
    if isinstance(op, BufferInsertOp):
        return ctx.netlist.library[op.buffer_cell].area
    if isinstance(op, ResizeOp) and op._saved is not None:
        return op.to_cell.area - op._saved.area
    return 0.0


def _polish_cone(
    ctx: EcoContext,
    op: EcoOp,
    report: ScenarioReport,
    score_cur: float,
    config: EcoConfig,
    result: EcoResult,
    budget: Optional[Budget],
) -> Tuple[ScenarioReport, float]:
    """First-improvement Steiner nudges over an accepted op's cone."""
    if "nudge" not in config.op_kinds:
        return report, score_cur
    nets: List[int] = []
    for ni in ctx.dirty_nets_of(op):
        try:
            if ctx.forest.tree_for_net(ni).n_steiner > 0:
                nets.append(ni)
        except KeyError:
            continue
    for ni in sorted(nets)[: config.polish_trees]:
        if budget is not None and budget.expired():
            result.timed_out = True
            break
        improved = False
        for step in config.polish_steps:
            for dx, dy in ((step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)):
                nudge = NudgeOp(ni, dx, dy)
                ctx.apply(nudge)
                if budget is not None:
                    budget.spend_probe()
                new_report = ctx.run()
                new_score = score_report(new_report)
                result.trials += 1
                if new_score > score_cur + config.min_gain:
                    report, score_cur = new_report, new_score
                    result.accepted.append(nudge.describe())
                    result.history.append(
                        {"op": nudge.describe(), "score": new_score,
                         "wns": new_report.merged_wns, "tns": new_report.merged_tns}
                    )
                    improved = True
                    break
                ctx.revert(nudge)
                result.reverted += 1
            if improved:
                break
    return report, score_cur


def _run_greedy(
    ctx: EcoContext,
    config: EcoConfig,
    result: EcoResult,
    budget: Optional[Budget],
    on_round: Optional[Callable[[int], None]],
    hybrid: bool,
) -> ScenarioReport:
    tel = get_telemetry()
    report = ctx.run()
    score_cur = score_report(report)
    discrete = 0
    for _ in range(config.max_rounds):
        if discrete >= config.max_ops or report.merged_violations == 0:
            break
        if budget is not None and budget.expired():
            result.timed_out = True
            break
        candidates = generate_candidates(ctx, report, config)
        result.proposals += len(candidates)
        if not candidates:
            break
        result.rounds += 1
        if on_round is not None:
            on_round(result.rounds)
        if tel.enabled:
            tel.count("eco.rounds")
        progressed = False
        for _gain, op in candidates[: config.trials_per_round]:
            if budget is not None and budget.expired():
                result.timed_out = True
                break
            ctx.apply(op)
            if budget is not None:
                budget.spend_probe()
            new_report = ctx.run()
            new_score = score_report(new_report)
            result.trials += 1
            if new_score > score_cur + config.min_gain:
                report, score_cur = new_report, new_score
                discrete += 1
                result.accepted.append(op.describe())
                result.area_delta += _op_area(ctx, op)
                result.history.append(
                    {"op": op.describe(), "score": new_score,
                     "wns": new_report.merged_wns, "tns": new_report.merged_tns}
                )
                if tel.enabled:
                    tel.count("eco.ops_accepted")
                if hybrid:
                    report, score_cur = _polish_cone(
                        ctx, op, report, score_cur, config, result, budget
                    )
                progressed = True
                break
            ctx.revert(op)
            result.reverted += 1
            if tel.enabled:
                tel.count("eco.ops_reverted")
        if not progressed:
            break
    return report


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_eco(
    netlist: Netlist,
    forest: SteinerForest,
    config: Optional[EcoConfig] = None,
    scenarios: Optional[ScenarioSet] = None,
    budget: Optional[Budget] = None,
    on_round: Optional[Callable[[int], None]] = None,
) -> EcoResult:
    """Run one ECO closure loop, mutating ``netlist``/``forest`` in place.

    Callers who must not mutate shared state wrap their inputs with
    :func:`repro.eco.ops.clone_state` first (the flow stage and the
    experiment harness do).  Deterministic: same inputs + same config
    (seed included) produce the same accepted-op digest.
    """
    config = config if config is not None else EcoConfig()
    tel = get_telemetry()
    ctx = EcoContext(netlist, forest, scenarios)
    with tel.span("eco_run", design=netlist.name, arm=config.arm) as span:
        base = ctx.run()
        result = EcoResult(
            design=netlist.name,
            arm=config.arm,
            seed=config.seed,
            accepted=[],
            digest="",
            initial=_metrics_dict(base),
            final={},
        )
        if config.arm == "sa":
            from repro.eco.sa import run_sa

            final = run_sa(ctx, config, result, budget=budget, on_round=on_round)
        else:
            final = _run_greedy(
                ctx, config, result, budget, on_round, hybrid=config.arm == "hybrid"
            )
        result.final = _metrics_dict(final)
        result.rebuilds = ctx.rebuilds
        result.digest = _digest(result.accepted)
        if tel.enabled:
            span.annotate(
                accepted=result.num_accepted,
                trials=result.trials,
                rounds=result.rounds,
                digest=result.digest,
                final_wns=final.merged_wns,
                final_tns=final.merged_tns,
            )
    return result


__all__ = [
    "EcoConfig",
    "EcoContext",
    "EcoResult",
    "evaluate_candidates",
    "generate_candidates",
    "run_eco",
    "score_report",
]
