"""Learning-assisted sign-off timing evaluator (the paper's Section III-A).

Architecture overview (mirrors Fig. 3 of the paper):

1. **Steiner graph** — node-heterogeneous (pin nodes vs Steiner nodes),
   edge-heterogeneous (Steiner edges vs net edges).  Three iterations
   of *broadcast* (driver -> sinks along Steiner edges) and *reduce*
   (sinks -> driver along net edges) message passing fuse Steiner
   geometry into per-sink embeddings.  Steiner node coordinates are the
   only tensors with ``requires_grad`` — exactly as in the paper.
2. **Netlist graph** — heterogeneous with cell edges and net edges.
   Pin embeddings propagate in topological (levelized) order, and the
   model predicts per-pin arrival time with a timing-engine-inspired
   accumulation (reference [13] of the paper): learned non-negative
   edge delays added along paths, max-reduced at multi-input cells.

The evaluator is trained against the sign-off STA oracle and then used
frozen inside the TSteiner refinement loop, where backpropagation
yields the per-Steiner-point position gradients of the smoothed
WNS/TNS penalty.
"""

from repro.timing_model.graph import TimingGraph, build_timing_graph
from repro.timing_model.model import EvaluatorConfig, TimingEvaluator
from repro.timing_model.dataset import DesignSample, make_sample
from repro.timing_model.train import TrainerConfig, train_evaluator, r2_score
from repro.timing_model.baseline import LinearBaseline, pin_features
from repro.timing_model.serialize import load_evaluator, save_evaluator

__all__ = [
    "TimingGraph",
    "build_timing_graph",
    "EvaluatorConfig",
    "TimingEvaluator",
    "DesignSample",
    "make_sample",
    "TrainerConfig",
    "train_evaluator",
    "r2_score",
    "LinearBaseline",
    "pin_features",
    "load_evaluator",
    "save_evaluator",
]
