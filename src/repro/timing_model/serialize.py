"""Evaluator checkpointing.

Saves/loads a trained :class:`TimingEvaluator` to a single ``.npz``
file: the numpy state dict plus the :class:`EvaluatorConfig` fields.
Used by the experiment harness to reuse a trained model across
processes, and by downstream users who train once and refine many
designs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.timing_model.model import EvaluatorConfig, TimingEvaluator

_CONFIG_KEY = "__config_json__"


def save_evaluator(model: TimingEvaluator, path: Union[str, Path]) -> None:
    """Write the model's weights and config to ``path`` (.npz)."""
    path = Path(path)
    payload = dict(model.state_dict())
    config_json = json.dumps(dataclasses.asdict(model.config))
    payload[_CONFIG_KEY] = np.frombuffer(config_json.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_evaluator(path: Union[str, Path]) -> TimingEvaluator:
    """Reconstruct a :class:`TimingEvaluator` saved by :func:`save_evaluator`."""
    path = Path(path)
    with np.load(path) as data:
        raw = bytes(data[_CONFIG_KEY].tobytes())
        config = EvaluatorConfig(**json.loads(raw.decode("utf-8")))
        state = {k: data[k] for k in data.files if k != _CONFIG_KEY}
    model = TimingEvaluator(config)
    model.load_state_dict(state)
    return model
