"""Evaluator checkpointing.

Saves/loads a trained :class:`TimingEvaluator` to a single ``.npz``
file: the numpy state dict plus the :class:`EvaluatorConfig` fields.
Used by the experiment harness to reuse a trained model across
processes, and by downstream users who train once and refine many
designs.

Writes are atomic (temp file + ``os.replace`` via the runtime
checkpoint layer), so a kill mid-save leaves the previous complete
file rather than a truncated archive; loads of truncated/corrupt/
foreign files raise :class:`~repro.runtime.errors.CheckpointError`.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Union

import numpy as np

from repro.runtime.checkpoint import atomic_save_npz, load_npz
from repro.runtime.errors import CheckpointError
from repro.timing_model.model import EvaluatorConfig, TimingEvaluator

_KIND = "timing-evaluator"


def save_evaluator(model: TimingEvaluator, path: Union[str, Path]) -> None:
    """Atomically write the model's weights and config to ``path`` (.npz)."""
    atomic_save_npz(
        path,
        dict(model.state_dict()),
        meta={"kind": _KIND, "config": dataclasses.asdict(model.config)},
    )


def load_evaluator(path: Union[str, Path]) -> TimingEvaluator:
    """Reconstruct a :class:`TimingEvaluator` saved by :func:`save_evaluator`.

    Raises :class:`CheckpointError` when the file is missing, truncated,
    corrupt, or not an evaluator checkpoint.
    """
    data = load_npz(path)
    meta = data.pop("meta", None)
    if not isinstance(meta, dict) or meta.get("kind") != _KIND:
        raise CheckpointError(f"{path} is not a saved TimingEvaluator")
    config = EvaluatorConfig(**meta["config"])
    state = {k: np.asarray(v) for k, v in data.items()}
    model = TimingEvaluator(config)
    try:
        model.load_state_dict(state)
    except Exception as exc:
        raise CheckpointError(f"evaluator state in {path} is incompatible: {exc}") from exc
    return model
