"""Feature-engineered linear baseline for arrival-time prediction.

Before GNN evaluators, pre-routing timing predictors were regressions
over handcrafted features (the paper's reference [10]).  This baseline
reproduces that approach: per-pin features assembled by one topological
sweep, fit with ordinary least squares.  Table III-style comparisons
against it quantify what the two-graph GNN actually buys.

Features per pin:

* topological level (cell+net arcs);
* accumulated characteristic cell delay along the longest path;
* accumulated wire length along that path;
* driving-net wirelength and driver resistance;
* fanout of the driving net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.timing_model.dataset import DesignSample
from repro.timing_model.graph import TimingGraph
from repro.timing_model.train import r2_score

N_FEATURES = 7


def pin_features(graph: TimingGraph) -> np.ndarray:
    """(n_pins, N_FEATURES) engineered feature matrix."""
    n = graph.n_pins
    level = graph.pin_level.astype(np.float64)
    acc_cell = np.zeros(n)
    acc_wire = np.zeros(n)
    drive_wl = np.zeros(n)
    drive_res = np.zeros(n)
    fanout = np.zeros(n)

    # Per-net wirelength from current Steiner geometry.
    net_wl = np.zeros(graph.n_nets)
    for tree in graph.forest.trees:
        net_wl[tree.net_index] = tree.wirelength()

    sink_count = np.zeros(graph.n_nets)
    for lv in graph.levels:
        np.add.at(sink_count, lv.net_of_sink, 1.0)

    # Longest-path accumulations in level order.
    for lv in graph.levels:
        if lv.net_sink.size:
            wl = net_wl[lv.net_of_sink]
            np.maximum.at(acc_wire, lv.net_sink, acc_wire[lv.net_driver] + wl)
            np.maximum.at(acc_cell, lv.net_sink, acc_cell[lv.net_driver])
            drive_wl[lv.net_sink] = wl
            drive_res[lv.net_sink] = graph.net_drive_res[lv.net_of_sink]
            fanout[lv.net_sink] = sink_count[lv.net_of_sink]
        if lv.cell_in.size:
            contrib = acc_cell[lv.cell_in] + lv.cell_feat[:, 0]
            np.maximum.at(acc_cell, lv.cell_out, contrib)
            np.maximum.at(acc_wire, lv.cell_out, acc_wire[lv.cell_in])

    return np.column_stack(
        [
            level,
            acc_cell,
            acc_wire * 0.01,
            drive_wl * 0.01,
            drive_res * 0.1,
            fanout,
            np.ones(n),
        ]
    )


@dataclass
class LinearBaseline:
    """OLS arrival-time predictor over engineered features."""

    weights: Optional[np.ndarray] = None

    def fit(self, samples: Sequence[DesignSample]) -> "LinearBaseline":
        rows: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for sample in samples:
            if not sample.is_train:
                continue
            feats = pin_features(sample.graph)
            mask = sample.label_mask
            rows.append(feats[mask])
            targets.append(sample.arrival_label[mask])
        if not rows:
            raise ValueError("no training samples")
        x = np.vstack(rows)
        y = np.concatenate(targets)
        self.weights, *_ = np.linalg.lstsq(x, y, rcond=None)
        return self

    def predict(self, graph: TimingGraph) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() first")
        return pin_features(graph) @ self.weights

    def evaluate(self, samples: Sequence[DesignSample]) -> Dict[str, float]:
        """Per-design all-pins R² (comparable to Table III)."""
        scores: Dict[str, float] = {}
        for sample in samples:
            pred = self.predict(sample.graph)
            mask = sample.label_mask
            scores[sample.name] = r2_score(sample.arrival_label[mask], pred[mask])
        return scores
