"""The two-stage GNN sign-off timing evaluator.

Stage 1 — Steiner-graph message passing (broadcast + reduce, three
iterations as in the paper), producing per-sink embeddings that encode
the geometry between each net's driver, its Steiner points and the
sink.

Stage 2 — levelized netlist-graph propagation with a timing-engine-
inspired accumulation: each net arc and cell arc contributes a learned
*non-negative* delay (softplus), summed along paths and max-reduced at
multi-input cells.  This inductive bias is what lets the evaluator
reach high R² from only six training designs, exactly as the
reference-[13] architecture the paper builds on.

Differentiability: the only input tensor with ``requires_grad`` is the
flat Steiner coordinate matrix.  Gradients reach it through two
physical channels — edge-length features of the Steiner graph
(geometry) and per-net total wirelength (driver load) — matching how
Steiner positions affect real sign-off timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff import nn
from repro.autodiff.tensor import Tensor, concatenate
from repro.obs import get_telemetry
from repro.timing_model.graph import TimingGraph


@dataclass
class EvaluatorConfig:
    """Model hyper-parameters."""

    hidden: int = 24
    steiner_iterations: int = 3  # paper: three broadcast/reduce rounds
    seed: int = 42
    pos_scale: float = 0.01  # um -> feature units
    cap_scale: float = 100.0  # pF -> feature units
    res_scale: float = 0.1  # kOhm -> feature units
    # Smoothed-L1 half-width (um).  Rectilinear length |d| has a kink at
    # d = 0, and initial RSMT trees put *every* corner exactly on that
    # kink: the raw-L1 evaluator then sees any Steiner move as a strict
    # wirelength increase and Algorithm 1 rejects every candidate.
    # sqrt(d^2 + delta^2) - delta is exact for |d| >> delta and smooth
    # at 0, restoring a usable gradient field (the paper's evaluator is
    # smooth by construction because it consumes raw coordinates).
    length_smoothing: float = 1.0
    # Weight of the free-form learned correction on top of the
    # physics-anchored delay heads.  The physics part (positive-
    # coefficient combination of Elmore/drive/load/congestion features)
    # carries the gradient signal the refinement loop consumes; the
    # correction absorbs router/layer effects the features miss.  Too
    # large a correction re-opens the door to gradient exploitation.
    correction_scale: float = 0.25


class TimingEvaluator(nn.Module):
    """Predicts per-pin sign-off arrival times from Steiner geometry."""

    N_SG_FEATS = 7  # type one-hot (3), cap, x, y, congestion-at-node
    N_EDGE_FEATS = 5  # |dx|, |dy|, L1, congestion at both endpoints
    N_NET_FEATS = 5  # wirelength, sink caps, drive res, RC proxy, congestion
    N_ARC_FEATS = 4  # path length, Elmore proxies, path congestion
    N_CELL_FEATS = 4  # from TimingGraph.cell_feat
    N_START_FEATS = 2  # PI vs register launch

    #: Execution kernel for the hot forward/gradient paths (mirrors
    #: ``STAEngine.default_kernel``): "tape" replays a compiled
    #: instruction tape (fast path; falls back transparently when a
    #: graph uses an op the compiler does not know), "closure" runs the
    #: reference closure-graph engine, "tape-parity" runs both and
    #: raises on any bitwise mismatch.  Class attribute — override per
    #: instance to pin a kernel.
    kernel = "tape"

    def __init__(self, config: Optional[EvaluatorConfig] = None) -> None:
        cfg = config or EvaluatorConfig()
        self.config = cfg
        rng = np.random.default_rng(cfg.seed)
        d = cfg.hidden
        self.sg_embed = nn.Linear(self.N_SG_FEATS, d, rng)
        self.bcast_msg = nn.MLP([d + self.N_EDGE_FEATS, d, d], rng)
        self.bcast_upd = nn.MLP([2 * d, d], rng)
        self.reduce_msg = nn.Linear(d, d, rng)
        self.reduce_upd = nn.MLP([2 * d, d], rng)
        self.start_mlp = nn.Linear(self.N_START_FEATS, d, rng)
        self.net_msg = nn.MLP([2 * d + self.N_NET_FEATS + self.N_ARC_FEATS, d, d], rng)
        self.wire_delay = nn.Linear(d, 1, rng)
        self.cell_msg = nn.MLP([d + self.N_CELL_FEATS + self.N_NET_FEATS, d, d], rng)
        self.cell_delay = nn.Linear(d, 1, rng)
        # Physics-anchored head weights: effective coefficients are
        # softplus(w), i.e. non-negative — predicted delay can only
        # *decrease* when Elmore/load/congestion features decrease, so
        # the refinement gradient cannot point the wrong way through
        # these terms.  Initialized near the oracle's raw magnitudes.
        # softplus(-2.5) ~= 0.079: start with gentle positive slopes and
        # let training calibrate them to the oracle's effective RC.
        self.wire_phys = Tensor(np.full((self.N_ARC_FEATS, 1), -2.5), requires_grad=True)
        self.cell_phys = Tensor(np.full((self.N_NET_FEATS + 1, 1), -2.5), requires_grad=True)

    # ------------------------------------------------------------------
    def _static_tensors(self, graph: TimingGraph) -> Dict:
        """Evaluator-static arrays, cached on ``graph._static``.

        Everything here depends only on the graph topology and scale
        hyper-parameters, so repeated ``forward`` calls on the same
        graph (every refinement iteration) reuse one copy.  The cache
        key includes the config values the arrays bake in.
        """
        cfg = self.config
        key = ("evaluator", cfg.cap_scale, cfg.hidden)
        tel = get_telemetry()
        cached = graph._static.get(key)
        if cached is not None:
            if tel.enabled:
                tel.count("evaluator.static_cache_hits")
            return cached
        if tel.enabled:
            tel.count("evaluator.static_cache_misses")
        m = graph.n_sg_nodes
        type_onehot = np.zeros((m, 3))
        type_onehot[np.arange(m), graph.sg_node_type] = 1.0
        static_feat = np.concatenate(
            [type_onehot, (graph.sg_node_cap * cfg.cap_scale)[:, None]], axis=1
        )
        levels = []
        for lv in graph.levels:
            sink_safe = np.maximum(lv.net_sink_node, 0)
            sink_mask = np.broadcast_to(
                (lv.net_sink_node >= 0).astype(np.float64)[:, None],
                (lv.net_sink_node.size, cfg.hidden),
            ).copy()
            out_net = np.maximum(lv.cell_out_net, 0)
            has_net = (lv.cell_out_net >= 0).astype(np.float64)[:, None]
            # Compact per-destination max: unique output pins and the
            # arc -> compact-slot map (np.unique returns them sorted).
            uniq_out, out_inv = (
                np.unique(lv.cell_out, return_inverse=True)
                if lv.cell_out.size
                else (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
            )
            levels.append(
                {
                    "sink_safe": sink_safe,
                    "sink_mask": sink_mask,
                    "out_net": out_net,
                    "has_net": has_net,
                    "cell_feat0": lv.cell_feat[:, 0:1].copy(),
                    "uniq_out": uniq_out,
                    "out_inv": out_inv,
                    # Fused scatter targets: net sinks and cell outputs
                    # are disjoint pin sets, so one segment_sum over the
                    # concatenation equals the two separate adds bitwise.
                    "arrival_idx": np.concatenate([lv.net_sink, uniq_out]),
                    "u_idx": np.concatenate([lv.net_sink, lv.cell_out]),
                }
            )
        cached = {"static_feat": static_feat, "levels": levels}
        graph._static[key] = cached
        return cached

    # ------------------------------------------------------------------
    def forward(self, graph: TimingGraph, steiner_coords: Tensor) -> Dict[str, Tensor]:
        """Full forward pass.

        ``steiner_coords`` is the forest's flat (S, 2) coordinate
        matrix; set ``requires_grad=True`` on it to obtain refinement
        gradients via ``backward`` on a scalar of the output.
        """
        tel = get_telemetry()
        if tel.enabled:
            tel.count("evaluator.forward")
        cfg = self.config
        m = graph.n_sg_nodes
        static = self._static_tensors(graph)

        # ---- assemble node positions (static pins + movable Steiner) ----
        pos = Tensor(graph.sg_static_pos)
        if graph.num_steiner:
            gathered = steiner_coords[graph.sg_steiner_flat]
            pos = pos + F.segment_sum(gathered, graph.sg_steiner_rows, m)

        # Differentiable congestion sample at every Steiner-graph node.
        node_cong = self._sample_congestion(graph, pos)

        # ---- stage 1: Steiner graph ----
        static_feat = static["static_feat"]
        node_feat = concatenate(
            [Tensor(static_feat), pos * cfg.pos_scale, node_cong.reshape(m, 1)], axis=1
        )
        h = self.sg_embed(node_feat).leaky_relu(0.1)

        edge_feat = None
        if graph.sg_bcast_src.size:
            delta = self._smooth_abs(pos[graph.sg_bcast_src] - pos[graph.sg_bcast_dst])
            l1 = delta.sum(axis=1, keepdims=True)
            n_e = graph.sg_bcast_src.size
            edge_feat = concatenate(
                [
                    delta * cfg.pos_scale,
                    l1 * cfg.pos_scale,
                    node_cong[graph.sg_bcast_src].reshape(n_e, 1),
                    node_cong[graph.sg_bcast_dst].reshape(n_e, 1),
                ],
                axis=1,
            )

        for _ in range(cfg.steiner_iterations):
            if edge_feat is not None:
                msg_in = concatenate([h[graph.sg_bcast_src], edge_feat], axis=1)
                msgs = self.bcast_msg(msg_in)
                agg = F.segment_sum(msgs, graph.sg_bcast_dst, m)
                h = h + self.bcast_upd(concatenate([h, agg], axis=1)).tanh()
            if graph.sg_reduce_src.size:
                rmsg = self.reduce_msg(h[graph.sg_reduce_src]).leaky_relu(0.1)
                ragg = F.segment_sum(rmsg, graph.sg_reduce_dst, m)
                h = h + self.reduce_upd(concatenate([h, ragg], axis=1)).tanh()

        # ---- per-net differentiable load features ----
        net_feats = self._net_features(graph, pos, node_cong)
        arc_feats = self._arc_features(graph, pos, node_cong)

        # ---- stage 2: levelized netlist propagation ----
        n_pins = graph.n_pins
        arrival = F.segment_sum(
            Tensor(graph.start_arrival), graph.startpoints, n_pins
        )
        u = F.segment_sum(
            self.start_mlp(Tensor(graph.start_feat)).leaky_relu(0.1),
            graph.startpoints,
            n_pins,
        )

        for lv, lvst in zip(graph.levels, static["levels"]):
            parts_a = []
            parts_u = []
            if lv.net_sink.size:
                z = self._sink_embeddings(h, lvst["sink_safe"], lvst["sink_mask"])
                af = arc_feats[lv.net_arc_id]
                msg_in = concatenate(
                    [u[lv.net_driver], z, net_feats[lv.net_of_sink], af], axis=1
                )
                mw = self.net_msg(msg_in)
                phys = (af @ F.softplus(self.wire_phys)).reshape(-1)
                corr = F.softplus(self.wire_delay(mw)).reshape(-1)
                d_wire = phys + corr * cfg.correction_scale
                parts_a.append(arrival[lv.net_driver] + d_wire)
                parts_u.append(mw.tanh())
            if lv.cell_in.size:
                nf = net_feats[lvst["out_net"]] * Tensor(lvst["has_net"])
                msg_in = concatenate(
                    [u[lv.cell_in], Tensor(lv.cell_feat), nf], axis=1
                )
                mc = self.cell_msg(msg_in)
                # Physics inputs: characteristic arc delay + load terms.
                phys_in = concatenate([Tensor(lvst["cell_feat0"]), nf], axis=1)
                phys = (phys_in @ F.softplus(self.cell_phys)).reshape(-1)
                corr = F.softplus(self.cell_delay(mc)).reshape(-1)
                d_cell = phys + corr * cfg.correction_scale
                cand = arrival[lv.cell_in] + d_cell
                parts_a.append(
                    F.segment_max(
                        cand, lvst["out_inv"], lvst["uniq_out"].size, fill=0.0
                    )
                )
                parts_u.append(mc.tanh())
            if parts_a:
                # One fused scatter per level: destination pin sets of
                # the two branches are disjoint, so this equals the
                # sequential full-width adds bit for bit.
                vals = parts_a[0] if len(parts_a) == 1 else concatenate(parts_a, axis=0)
                arrival = arrival + F.segment_sum(vals, lvst["arrival_idx"], n_pins)
                uvals = parts_u[0] if len(parts_u) == 1 else concatenate(parts_u, axis=0)
                u = u + F.segment_sum(uvals, lvst["u_idx"], n_pins)

        return {"arrival": arrival, "pin_embedding": u, "steiner_embedding": h}

    # ------------------------------------------------------------------
    def _smooth_abs(self, t: Tensor) -> Tensor:
        """Smoothed |t|: sqrt(t^2 + delta^2) - delta (0 at 0, ~|t| away)."""
        delta = self.config.length_smoothing
        if delta <= 0:
            return t.abs()
        return (t * t + delta * delta).sqrt() - delta

    def _sample_congestion(self, graph: TimingGraph, pos: Tensor) -> Tensor:
        """Bilinear sample of the GCell congestion field at positions.

        Differentiable w.r.t. positions through the interpolation
        weights (the cell indices are piecewise-constant): the gradient
        points *down* the congestion slope, which is exactly the
        direction that reduces detour likelihood.
        """
        field = graph.congestion
        n = pos.shape[0]
        if field is None or graph.gcell_size <= 0:
            return Tensor(np.zeros(n))
        g = graph.gcell_size
        # Continuous cell coordinates with centers at k + 0.5.
        cx = pos[:, 0] * (1.0 / g) - 0.5
        cy = pos[:, 1] * (1.0 / g) - 0.5
        # Cell corners and gathered values are detached recompute nodes
        # (piecewise constant in pos — no gradient; re-derived from the
        # live coordinates when this forward is replayed from a tape).
        ixf, iyf, c00, c10, c01, c11 = F.bilinear_parts(field, cx, cy)
        fx = (cx - ixf).clip(0.0, 1.0)
        fy = (cy - iyf).clip(0.0, 1.0)
        one = Tensor(np.ones(n))
        return (
            c00 * (one - fx) * (one - fy)
            + c10 * fx * (one - fy)
            + c01 * (one - fx) * fy
            + c11 * fx * fy
        )

    def _arc_features(self, graph: TimingGraph, pos: Tensor, node_cong: Tensor) -> Tensor:
        """Per driver->sink arc physics features (differentiable).

        * smoothed rectilinear path length driver -> sink;
        * Elmore proxy: sum over path edges of length x downstream
          sink-pin capacitance (the first-order R*C term);
        * path length x driver resistance (drive-limited delay term);
        * path congestion: summed field samples along the path (detour
          likelihood of this arc's route).
        """
        cfg = self.config
        n = graph.n_net_arcs
        if n == 0 or graph.path_src.size == 0:
            return Tensor(np.zeros((max(n, 1), self.N_ARC_FEATS)))
        entry_len = self._smooth_abs(pos[graph.path_src] - pos[graph.path_dst]).sum(axis=1)
        path_len = F.segment_sum(entry_len, graph.path_arc, n)
        weighted = entry_len * Tensor(graph.path_downcap * cfg.cap_scale)
        elmore = F.segment_sum(weighted, graph.path_arc, n)
        drive = path_len * Tensor(graph.arc_drive_res * cfg.res_scale)
        entry_cong = (node_cong[graph.path_src] + node_cong[graph.path_dst]) * 0.5
        path_cong = F.segment_sum(entry_cong, graph.path_arc, n)
        return concatenate(
            [
                (path_len * cfg.pos_scale).reshape(n, 1),
                (elmore * cfg.pos_scale).reshape(n, 1),
                (drive * cfg.pos_scale).reshape(n, 1),
                path_cong.reshape(n, 1),
            ],
            axis=1,
        )

    def _net_features(self, graph: TimingGraph, pos: Tensor, node_cong: Tensor) -> Tensor:
        cfg = self.config
        n_nets = graph.n_nets
        if graph.net_edge_src_node.size:
            delta = self._smooth_abs(pos[graph.net_edge_src_node] - pos[graph.net_edge_dst_node])
            lengths = delta.sum(axis=1)
            net_wl = F.segment_sum(lengths, graph.net_of_edge, n_nets)
            edge_cong = (
                node_cong[graph.net_edge_src_node] + node_cong[graph.net_edge_dst_node]
            ) * 0.5
            net_cong = F.segment_sum(edge_cong, graph.net_of_edge, n_nets)
        else:
            net_wl = Tensor(np.zeros(n_nets))
            net_cong = Tensor(np.zeros(n_nets))
        wl = (net_wl * cfg.pos_scale).reshape(n_nets, 1)
        caps = Tensor((graph.net_sink_cap_sum * cfg.cap_scale).reshape(n_nets, 1))
        res = Tensor((graph.net_drive_res * cfg.res_scale).reshape(n_nets, 1))
        rc_proxy = wl * res  # driver-resistance x wirelength, Elmore-like
        return concatenate([wl, caps, res, rc_proxy, net_cong.reshape(n_nets, 1)], axis=1)

    @staticmethod
    def _sink_embeddings(h: Tensor, safe: np.ndarray, mask: np.ndarray) -> Tensor:
        """Steiner-graph embedding per sink; zero row where no tree node.

        ``safe``/``mask`` come precomputed from :meth:`_static_tensors`.
        """
        return h[safe] * Tensor(mask)

    # ------------------------------------------------------------------
    def predict_arrivals(self, graph: TimingGraph, steiner_coords: np.ndarray) -> np.ndarray:
        """Inference-only helper returning a numpy arrival array."""
        from repro.autodiff.tensor import no_grad

        with no_grad():
            out = self.forward(graph, Tensor(np.asarray(steiner_coords)))
        return out["arrival"].numpy()
