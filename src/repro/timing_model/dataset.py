"""Training data assembly: designs + sign-off labels.

A :class:`DesignSample` bundles everything one design contributes to
evaluator training: the static :class:`TimingGraph`, the initial flat
Steiner coordinates, and the sign-off arrival-time labels produced by
running the full flow (global route -> sign-off STA) once.

In the paper the labels come from Cadence Innovus sign-off reports;
here they come from :class:`repro.sta.STAEngine` run on the routed
design — the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.groute.router import GlobalRouteResult
from repro.netlist.netlist import Netlist
from repro.sta.engine import STAEngine, TimingReport
from repro.steiner.forest import SteinerForest
from repro.timing_model.graph import TimingGraph, build_timing_graph


@dataclass
class DesignSample:
    """One design ready for evaluator training / evaluation."""

    name: str
    graph: TimingGraph
    steiner_coords: np.ndarray  # (S, 2) initial coordinates
    arrival_label: np.ndarray  # (n_pins,) sign-off arrivals (NaN unreached)
    label_mask: np.ndarray  # (n_pins,) bool — valid training targets
    is_train: bool = True
    report: Optional[TimingReport] = None

    @property
    def endpoint_mask(self) -> np.ndarray:
        mask = np.zeros_like(self.label_mask)
        mask[self.graph.endpoints] = True
        return mask & self.label_mask


def make_sample(
    netlist: Netlist,
    forest: SteinerForest,
    route_result: Optional[GlobalRouteResult],
    is_train: bool = True,
    engine: Optional[STAEngine] = None,
    congestion: Optional[np.ndarray] = None,
) -> DesignSample:
    """Run the sign-off oracle and package a training sample."""
    engine = engine or STAEngine(netlist)
    report = engine.run(forest, route_result, utilization=congestion)
    graph = build_timing_graph(netlist, forest, congestion=congestion)
    arrival = report.arrival.copy()
    mask = graph.reachable & ~np.isnan(arrival)
    # Exclude launch-only pins (PIs, clock pins) — they carry constants,
    # not predictions, and would inflate R² without testing the model.
    mask[graph.startpoints] = False
    return DesignSample(
        name=netlist.name,
        graph=graph,
        steiner_coords=forest.get_steiner_coords(),
        arrival_label=arrival,
        label_mask=mask,
        is_train=is_train,
        report=report,
    )
