"""Static graph structure consumed by the timing evaluator.

Built once per (netlist, Steiner forest *topology*); Steiner point
*positions* are injected as a tensor at every forward pass, so the same
``TimingGraph`` serves all refinement iterations (tree topology never
changes during refinement, only coordinates — Definition 1 of the
paper).

Steiner-graph node numbering: per-tree nodes are laid out
consecutively; node ``tree_offset[t] + k`` is node ``k`` of tree ``t``
(pins first, Steiner nodes after, matching ``SteinerTree`` order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist, PinDirection
from repro.steiner.forest import SteinerForest

NODE_DRIVER = 0
NODE_SINK = 1
NODE_STEINER = 2


@dataclass
class LevelArcs:
    """Arcs whose destination pins live at one topological level."""

    net_driver: np.ndarray  # driver pin ids (global)
    net_sink: np.ndarray  # sink pin ids (global)
    net_sink_node: np.ndarray  # Steiner-graph node id of each sink
    net_of_sink: np.ndarray  # net index per arc
    net_arc_id: np.ndarray  # global sink-arc index (for path features)
    cell_in: np.ndarray  # input pin ids
    cell_out: np.ndarray  # output pin ids
    cell_feat: np.ndarray  # (n_arcs, n_cell_feats) static arc features
    cell_out_net: np.ndarray  # net index driven by the output pin (-1 if none)


@dataclass
class TimingGraph:
    """Everything static the evaluator needs for one design."""

    netlist: Netlist
    forest: SteinerForest
    # ---- Steiner graph ----
    n_sg_nodes: int
    sg_node_type: np.ndarray  # (M,) NODE_DRIVER / NODE_SINK / NODE_STEINER
    sg_static_pos: np.ndarray  # (M, 2) pin positions; zeros at Steiner rows
    sg_steiner_rows: np.ndarray  # (S,) node ids that are Steiner points
    sg_steiner_flat: np.ndarray  # (S,) index into the forest's flat coords
    sg_node_cap: np.ndarray  # (M,) pin cap (0 for Steiner/driver nodes)
    sg_bcast_src: np.ndarray  # directed Steiner edges, driver-rooted
    sg_bcast_dst: np.ndarray
    sg_reduce_src: np.ndarray  # net edges: sink node -> driver node
    sg_reduce_dst: np.ndarray
    sg_tree_of_node: np.ndarray  # (M,) tree index
    # ---- per-net ----
    n_nets: int
    net_edge_src_node: np.ndarray  # per tree edge: endpoint node ids
    net_edge_dst_node: np.ndarray
    net_of_edge: np.ndarray  # net index per tree edge
    net_sink_cap_sum: np.ndarray  # (n_nets,) static
    net_drive_res: np.ndarray  # (n_nets,) driver cell output resistance
    # ---- netlist graph ----
    # ---- per-sink driver->sink path structure (physics features) ----
    # Entry k is one tree edge on the path of sink arc path_arc[k]; the
    # differentiable path length / Elmore proxy of every sink arc is a
    # segment-sum of smoothed edge lengths over these entries.
    n_net_arcs: int
    path_src: np.ndarray  # Steiner-graph node ids
    path_dst: np.ndarray
    path_arc: np.ndarray  # sink-arc id per entry
    path_downcap: np.ndarray  # static downstream pin cap per entry (pF)
    arc_drive_res: np.ndarray  # (n_net_arcs,) driver resistance per arc
    # ---- netlist graph ----
    n_pins: int
    levels: List[LevelArcs]
    startpoints: np.ndarray
    start_feat: np.ndarray  # (n_start, n_start_feats)
    start_arrival: np.ndarray  # (n_start,) known launch arrivals
    endpoints: np.ndarray
    required: np.ndarray  # (n_endpoints,) required times
    pin_level: np.ndarray
    reachable: np.ndarray  # (n_pins,) bool — pins the traversal sets
    # ---- congestion field (routing-stage feature, see Table IV note) ----
    congestion: Optional[np.ndarray] = None  # (nx, ny) GCell utilization
    gcell_size: float = 0.0
    # Scratch cache for evaluator-static tensors (one-hot node types,
    # per-level masks, ...) keyed by the consumer; never compared.
    _static: Dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_steiner(self) -> int:
        return int(self.sg_steiner_rows.size)


def build_timing_graph(
    netlist: Netlist,
    forest: SteinerForest,
    congestion: Optional[np.ndarray] = None,
) -> TimingGraph:
    """Assemble the static two-graph structure.

    ``congestion`` is an optional (nx, ny) GCell utilization field
    (from a routing probe of the current forest); the evaluator samples
    it bilinearly at node positions, making detour likelihood a
    differentiable function of Steiner coordinates.
    """
    # ------------------------------------------------------------------
    # Steiner graph
    # ------------------------------------------------------------------
    tree_offsets = np.zeros(len(forest.trees) + 1, dtype=np.int64)
    for i, tree in enumerate(forest.trees):
        tree_offsets[i + 1] = tree_offsets[i] + tree.n_nodes
    m = int(tree_offsets[-1])

    node_type = np.full(m, NODE_STEINER, dtype=np.int64)
    static_pos = np.zeros((m, 2), dtype=np.float64)
    node_cap = np.zeros(m, dtype=np.float64)
    tree_of_node = np.zeros(m, dtype=np.int64)
    steiner_rows: List[int] = []
    steiner_flat: List[int] = []
    bcast_src: List[int] = []
    bcast_dst: List[int] = []
    reduce_src: List[int] = []
    reduce_dst: List[int] = []
    edge_src: List[int] = []
    edge_dst: List[int] = []
    net_of_edge: List[int] = []
    sink_node_of: Dict[Tuple[int, int], int] = {}  # (net, sink pin) -> node

    pin_caps = {p.index: p.cap for p in netlist.pins}

    for t_idx, tree in enumerate(forest.trees):
        base = int(tree_offsets[t_idx])
        tree_of_node[base : base + tree.n_nodes] = t_idx
        for local, pin_id in enumerate(tree.pin_ids):
            node = base + local
            node_type[node] = NODE_DRIVER if local == 0 else NODE_SINK
            static_pos[node] = tree.pin_xy[local]
            node_cap[node] = pin_caps.get(pin_id, 0.0) if local > 0 else 0.0
            if local > 0:
                sink_node_of[(tree.net_index, pin_id)] = node
        for s in range(tree.n_steiner):
            node = base + tree.n_pins + s
            steiner_rows.append(node)
            steiner_flat.append(int(forest.steiner_slice(t_idx).start) + s)
        for p, c in tree.directed_edges():
            bcast_src.append(base + p)
            bcast_dst.append(base + c)
        for local in range(1, tree.n_pins):
            reduce_src.append(base + local)
            reduce_dst.append(base + 0)
        for u, v in tree.edges:
            edge_src.append(base + u)
            edge_dst.append(base + v)
            net_of_edge.append(tree.net_index)

    # ------------------------------------------------------------------
    # Driver->sink path structure with downstream-cap weights
    # ------------------------------------------------------------------
    net_arc_index: Dict[Tuple[int, int], int] = {}
    arc_net: List[int] = []
    arc_sink: List[int] = []
    for net in netlist.nets:
        for s in net.sinks:
            net_arc_index[(net.index, s)] = len(net_arc_index)
            arc_net.append(net.index)
            arc_sink.append(s)
    n_net_arcs = len(net_arc_index)

    path_src: List[int] = []
    path_dst: List[int] = []
    path_arc: List[int] = []
    path_downcap: List[float] = []
    for t_idx, tree in enumerate(forest.trees):
        base = int(tree_offsets[t_idx])
        # Downstream sink-pin capacitance per node (subtree sums).
        topo = tree.topology()
        parent = topo.parent
        sub_cap = np.zeros(tree.n_nodes)
        for local, pin_id in enumerate(tree.pin_ids):
            if local > 0:
                sub_cap[local] = pin_caps.get(pin_id, 0.0)
        # Accumulate leaves-to-root (parents precede children in BFS).
        for node in topo.bfs_order[::-1]:
            p = parent[node]
            if p >= 0:
                sub_cap[p] += sub_cap[node]
        for path in tree.driver_paths():
            sink_local = path[-1]
            pin_id = tree.pin_ids[sink_local]
            arc_id = net_arc_index.get((tree.net_index, pin_id))
            if arc_id is None:
                continue
            for a, b in zip(path, path[1:]):
                path_src.append(base + a)
                path_dst.append(base + b)
                path_arc.append(arc_id)
                path_downcap.append(float(sub_cap[b]))

    # ------------------------------------------------------------------
    # Per-net static features
    # ------------------------------------------------------------------
    n_nets = netlist.num_nets
    # np.bincount accumulates in input (= sink) order, so this matches
    # the per-net sequential sum bit for bit.
    pin_cap_arr = np.array([p.cap for p in netlist.pins], dtype=np.float64)
    if arc_net:
        sink_cap_sum = np.bincount(
            np.asarray(arc_net, dtype=np.int64),
            weights=pin_cap_arr[np.asarray(arc_sink, dtype=np.int64)],
            minlength=n_nets,
        )
    else:
        sink_cap_sum = np.zeros(n_nets, dtype=np.float64)
    drive_res = np.zeros(n_nets, dtype=np.float64)
    for net in netlist.nets:
        driver = netlist.pins[net.driver]
        if driver.is_cell_pin:
            drive_res[net.index] = netlist.cells[driver.cell_index].cell_type.drive_res
        else:
            drive_res[net.index] = 1.0  # port driver: nominal source impedance

    # ------------------------------------------------------------------
    # Netlist graph levelization
    # ------------------------------------------------------------------
    n_pins = netlist.num_pins
    preds_net: Dict[int, Tuple[int, int]] = {}  # sink pin -> (driver pin, net)
    for net in netlist.nets:
        for s in net.sinks:
            preds_net[s] = (net.driver, net.index)
    cell_arcs: List[Tuple[int, int, np.ndarray, int]] = []
    pin_net = netlist.pin_net_map()
    for cell in netlist.cells:
        ct = cell.cell_type
        for out_name in ct.output_pins:
            out_pin = cell.pin_indices[out_name]
            out_net = int(pin_net[out_pin])
            for arc in ct.arcs_to(out_name):
                in_pin = cell.pin_indices[arc.from_pin]
                feat = np.array(
                    [
                        arc.delay.values.mean(),  # characteristic delay
                        ct.drive_res / 10.0,
                        ct.input_cap(arc.from_pin) * 100.0,
                        1.0 if ct.is_sequential else 0.0,
                    ]
                )
                cell_arcs.append((in_pin, out_pin, feat, out_net))

    level = np.zeros(n_pins, dtype=np.int64)
    indeg = np.zeros(n_pins, dtype=np.int64)
    succ: List[List[int]] = [[] for _ in range(n_pins)]
    for s, (d, _) in preds_net.items():
        succ[d].append(s)
        indeg[s] += 1
    for in_pin, out_pin, _, _ in cell_arcs:
        succ[in_pin].append(out_pin)
        indeg[out_pin] += 1
    queue = [i for i in range(n_pins) if indeg[i] == 0]
    head = 0
    order: List[int] = []
    while head < len(queue):
        u = queue[head]
        head += 1
        order.append(u)
        for v in succ[u]:
            level[v] = max(level[v], level[u] + 1)
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)

    max_level = int(level.max()) if n_pins else 0

    # Group arcs by destination level.
    net_arcs_by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
    for s, (d, net_idx) in preds_net.items():
        node = sink_node_of.get((net_idx, s), -1)
        net_arcs_by_level.setdefault(int(level[s]), []).append((d, s, node, net_idx))
    cell_arcs_by_level: Dict[int, List[Tuple[int, int, np.ndarray, int]]] = {}
    for in_pin, out_pin, feat, out_net in cell_arcs:
        cell_arcs_by_level.setdefault(int(level[out_pin]), []).append(
            (in_pin, out_pin, feat, out_net)
        )

    levels: List[LevelArcs] = []
    for lv in range(1, max_level + 1):
        na = net_arcs_by_level.get(lv, [])
        ca = cell_arcs_by_level.get(lv, [])
        levels.append(
            LevelArcs(
                net_driver=np.array([a[0] for a in na], dtype=np.int64),
                net_sink=np.array([a[1] for a in na], dtype=np.int64),
                net_sink_node=np.array([a[2] for a in na], dtype=np.int64),
                net_of_sink=np.array([a[3] for a in na], dtype=np.int64),
                net_arc_id=np.array(
                    [net_arc_index[(a[3], a[1])] for a in na], dtype=np.int64
                ),
                cell_in=np.array([a[0] for a in ca], dtype=np.int64),
                cell_out=np.array([a[1] for a in ca], dtype=np.int64),
                cell_feat=(
                    np.stack([a[2] for a in ca]) if ca else np.zeros((0, 4))
                ),
                cell_out_net=np.array([a[3] for a in ca], dtype=np.int64),
            )
        )

    # ------------------------------------------------------------------
    # Startpoints / endpoints
    # ------------------------------------------------------------------
    clock = netlist.clock
    startpoints: List[int] = []
    start_arrival: List[float] = []
    start_feat: List[List[float]] = []
    for port in netlist.primary_inputs():
        startpoints.append(port.index)
        start_arrival.append(clock.launch_time() + clock.input_delay)
        start_feat.append([1.0, 0.0])
    for cell in netlist.registers():
        ck = cell.pin_indices[cell.cell_type.clock_pin]
        startpoints.append(ck)
        start_arrival.append(clock.launch_time())
        start_feat.append([0.0, 1.0])

    endpoints: List[int] = []
    required: List[float] = []
    for cell in netlist.registers():
        ct = cell.cell_type
        for in_name in ct.input_pins:
            if in_name != ct.clock_pin:
                endpoints.append(cell.pin_indices[in_name])
                required.append(clock.required_at_register(ct.setup_time))
    for port in netlist.primary_outputs():
        endpoints.append(port.index)
        required.append(clock.required_at_output())

    reachable = np.zeros(n_pins, dtype=bool)
    reachable[np.array(startpoints, dtype=np.int64)] = True
    for lv in levels:
        reachable[lv.net_sink] = True
        reachable[lv.cell_out] = True

    return TimingGraph(
        netlist=netlist,
        forest=forest,
        n_sg_nodes=m,
        sg_node_type=node_type,
        sg_static_pos=static_pos,
        sg_steiner_rows=np.array(steiner_rows, dtype=np.int64),
        sg_steiner_flat=np.array(steiner_flat, dtype=np.int64),
        sg_node_cap=node_cap,
        sg_bcast_src=np.array(bcast_src, dtype=np.int64),
        sg_bcast_dst=np.array(bcast_dst, dtype=np.int64),
        sg_reduce_src=np.array(reduce_src, dtype=np.int64),
        sg_reduce_dst=np.array(reduce_dst, dtype=np.int64),
        sg_tree_of_node=tree_of_node,
        n_nets=n_nets,
        net_edge_src_node=np.array(edge_src, dtype=np.int64),
        net_edge_dst_node=np.array(edge_dst, dtype=np.int64),
        net_of_edge=np.array(net_of_edge, dtype=np.int64),
        net_sink_cap_sum=sink_cap_sum,
        net_drive_res=drive_res,
        n_net_arcs=n_net_arcs,
        path_src=np.array(path_src, dtype=np.int64),
        path_dst=np.array(path_dst, dtype=np.int64),
        path_arc=np.array(path_arc, dtype=np.int64),
        path_downcap=np.array(path_downcap, dtype=np.float64),
        arc_drive_res=drive_res[np.array(arc_net, dtype=np.int64)]
        if arc_net
        else np.zeros(0),
        n_pins=n_pins,
        levels=levels,
        startpoints=np.array(startpoints, dtype=np.int64),
        start_feat=np.array(start_feat, dtype=np.float64),
        start_arrival=np.array(start_arrival, dtype=np.float64),
        endpoints=np.array(endpoints, dtype=np.int64),
        required=np.array(required, dtype=np.float64),
        pin_level=level,
        reachable=reachable,
        congestion=congestion,
        gcell_size=netlist.technology.gcell_size,
    )
