"""Evaluator training loop and prediction metrics.

Full-graph gradient descent with Adam (learning rate 5e-4, the paper's
Section IV-A value), mean-squared error on per-pin arrival time over
the masked pins of every training design.  The trainer reports per-epoch
losses and supports early stopping on a plateau so benchmark runs do
not waste time after convergence.

Also hosts :func:`r2_score`, the coefficient-of-determination metric of
the paper's Eq. (10), used for Table III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autodiff import optim
from repro.autodiff.tensor import Tensor
from repro.timing_model.dataset import DesignSample
from repro.timing_model.model import TimingEvaluator


@dataclass
class TrainerConfig:
    """Training hyper-parameters (defaults follow the paper)."""

    learning_rate: float = 5e-4
    epochs: int = 120
    weight_decay: float = 0.0
    patience: int = 25  # epochs without improvement before stopping
    min_delta: float = 1e-5
    verbose: bool = False


def r2_score(truth: np.ndarray, pred: np.ndarray) -> float:
    """Coefficient of determination, Eq. (10) of the paper."""
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    if truth.size == 0:
        return float("nan")
    ss_res = float(((truth - pred) ** 2).sum())
    ss_tot = float(((truth - truth.mean()) ** 2).sum())
    if ss_tot <= 1e-15:
        return 1.0 if ss_res <= 1e-15 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass
class TrainResult:
    """Loss history and final per-design metrics."""

    losses: List[float] = field(default_factory=list)
    best_epoch: int = 0
    final_loss: float = math.inf


def _sample_loss(model: TimingEvaluator, sample: DesignSample) -> Tensor:
    """Masked MSE on one design (differentiable)."""
    out = model(sample.graph, Tensor(sample.steiner_coords))
    arrival = out["arrival"]
    mask = sample.label_mask
    idx = np.flatnonzero(mask)
    pred = arrival[idx]
    target = Tensor(sample.arrival_label[idx])
    diff = pred - target
    return (diff * diff).mean()


def train_evaluator(
    model: TimingEvaluator,
    samples: Sequence[DesignSample],
    config: Optional[TrainerConfig] = None,
) -> TrainResult:
    """Train ``model`` on the training subset of ``samples``."""
    cfg = config or TrainerConfig()
    train_samples = [s for s in samples if s.is_train]
    if not train_samples:
        raise ValueError("no training samples provided")
    optimizer = optim.Adam(
        model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
    )
    result = TrainResult()
    best = math.inf
    stale = 0
    best_state = model.state_dict()
    for epoch in range(cfg.epochs):
        epoch_loss = 0.0
        for sample in train_samples:
            optimizer.zero_grad()
            loss = _sample_loss(model, sample)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        epoch_loss /= len(train_samples)
        result.losses.append(epoch_loss)
        if cfg.verbose:
            print(f"epoch {epoch:4d}  loss {epoch_loss:.6f}")
        if epoch_loss < best - cfg.min_delta:
            best = epoch_loss
            result.best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if stale >= cfg.patience:
                break
    model.load_state_dict(best_state)
    result.final_loss = best
    return result


def evaluate_r2(
    model: TimingEvaluator, samples: Sequence[DesignSample]
) -> Dict[str, Dict[str, float]]:
    """Per-design R² on all pins and on endpoints only (Table III)."""
    scores: Dict[str, Dict[str, float]] = {}
    for sample in samples:
        pred = model.predict_arrivals(sample.graph, sample.steiner_coords)
        mask_all = sample.label_mask
        mask_ends = sample.endpoint_mask
        scores[sample.name] = {
            "arrival_all": r2_score(sample.arrival_label[mask_all], pred[mask_all]),
            "arrival_ends": r2_score(sample.arrival_label[mask_ends], pred[mask_ends]),
        }
    return scores
