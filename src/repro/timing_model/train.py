"""Evaluator training loop and prediction metrics.

Full-graph gradient descent with Adam (learning rate 5e-4, the paper's
Section IV-A value), mean-squared error on per-pin arrival time over
the masked pins of every training design.  The trainer reports per-epoch
losses and supports early stopping on a plateau so benchmark runs do
not waste time after convergence.

Resilience (docs/RESILIENCE.md): a non-finite loss or gradient either
aborts (``nonfinite_policy="raise"``) or skips that step
(``"sanitize"``); an expired :class:`~repro.runtime.budget.Budget`
stops at the next epoch boundary and returns the best weights so far
flagged ``timed_out=True``; ``checkpoint_path`` snapshots the full
trainer state (weights, Adam moments, epoch, loss history, best-state)
atomically so a killed run resumes byte-identically.

Also hosts :func:`r2_score`, the coefficient-of-determination metric of
the paper's Eq. (10), used for Table III.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autodiff import optim
from repro.autodiff.tensor import Tensor
from repro.obs import SCHEMA_VERSION, get_telemetry
from repro.runtime import (
    Budget,
    CheckpointError,
    atomic_save_npz,
    check_finite,
    load_npz,
    validate_policy,
)
from repro.timing_model.dataset import DesignSample
from repro.timing_model.model import TimingEvaluator

_TRAIN_CKPT_KIND = "trainer-v1"

_log = logging.getLogger("repro.train")


@dataclass
class TrainerConfig:
    """Training hyper-parameters (defaults follow the paper)."""

    learning_rate: float = 5e-4
    epochs: int = 120
    weight_decay: float = 0.0
    patience: int = 25  # epochs without improvement before stopping
    min_delta: float = 1e-5
    verbose: bool = False
    # "raise" aborts on a non-finite loss/gradient; "sanitize" skips
    # the poisoned optimizer step and keeps training.
    nonfinite_policy: str = "raise"


def r2_score(truth: np.ndarray, pred: np.ndarray) -> float:
    """Coefficient of determination, Eq. (10) of the paper."""
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    if truth.size == 0:
        return float("nan")
    ss_res = float(((truth - pred) ** 2).sum())
    ss_tot = float(((truth - truth.mean()) ** 2).sum())
    if ss_tot <= 1e-15:
        return 1.0 if ss_res <= 1e-15 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass
class TrainResult:
    """Loss history and final per-design metrics."""

    losses: List[float] = field(default_factory=list)
    best_epoch: int = 0
    final_loss: float = math.inf
    timed_out: bool = False  # budget expired; best-so-far weights kept
    skipped_steps: int = 0  # optimizer steps dropped by the NaN guard
    resumed: bool = False  # run continued from a checkpoint


def _sample_loss(model: TimingEvaluator, sample: DesignSample) -> Tensor:
    """Masked MSE on one design (differentiable)."""
    out = model(sample.graph, Tensor(sample.steiner_coords))
    arrival = out["arrival"]
    mask = sample.label_mask
    idx = np.flatnonzero(mask)
    pred = arrival[idx]
    target = Tensor(sample.arrival_label[idx])
    diff = pred - target
    return (diff * diff).mean()


def _loss_backward(model: TimingEvaluator, sample: DesignSample, telemetry=None) -> float:
    """Forward+backward on one sample; grads land on the parameters.

    Dispatches on ``model.kernel`` like the refinement oracle: "tape"
    replays the per-sample compiled loss (cached on the sample graph's
    topology cache, so every epoch after the first replays for free),
    "closure" builds the reference graph, "tape-parity" runs both and
    raises on any bitwise difference in loss or parameter gradients.
    """
    kernel = getattr(model, "kernel", "closure")
    compiled = None
    if kernel in ("tape", "tape-parity"):
        from repro.timing_model.compiled import get_compiled_loss

        compiled = get_compiled_loss(model, sample, _sample_loss, telemetry=telemetry)
    if compiled is None:
        loss = _sample_loss(model, sample)
        loss.backward()
        return loss.item()
    if kernel == "tape-parity":
        from repro.timing_model.compiled import assert_bitwise_equal

        loss = _sample_loss(model, sample)
        loss.backward()
        ref_value = loss.item()
        ref_grads = [None if p.grad is None else p.grad.copy() for p in model.parameters()]
        for p in model.parameters():
            p.zero_grad()
        value = compiled.loss_backward()
        assert_bitwise_equal("loss", value, ref_value)
        for (name, p), ref in zip(model.named_parameters(), ref_grads):
            got = np.zeros(0) if p.grad is None else p.grad
            want = np.zeros(0) if ref is None else ref
            assert_bitwise_equal(f"grad/{name}", got, want)
        return value
    return compiled.loss_backward()


def train_evaluator(
    model: TimingEvaluator,
    samples: Sequence[DesignSample],
    config: Optional[TrainerConfig] = None,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    telemetry=None,
) -> TrainResult:
    """Train ``model`` on the training subset of ``samples``.

    ``telemetry`` records ``train_start``/``train_epoch``/``train_end``
    trace events (docs/OBSERVABILITY.md); when omitted the process
    global applies, so an installed ``telemetry_session`` still sees
    the run.
    """
    tel = telemetry if telemetry is not None else get_telemetry()
    cfg = config or TrainerConfig()
    policy = validate_policy(cfg.nonfinite_policy)
    train_samples = [s for s in samples if s.is_train]
    if not train_samples:
        raise ValueError("no training samples provided")
    optimizer = optim.Adam(
        model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
    )
    result = TrainResult()
    best = math.inf
    stale = 0
    best_state = model.state_dict()
    start_epoch = 0
    best_epoch = 0

    ckpt = None
    if resume and checkpoint_path is not None and Path(checkpoint_path).exists():
        ckpt = load_npz(checkpoint_path)
        meta = ckpt.get("meta") or {}
        if meta.get("kind") != _TRAIN_CKPT_KIND:
            raise CheckpointError(f"{checkpoint_path} is not a trainer checkpoint")
        model.load_state_dict(
            {k[len("param/"):]: np.asarray(v) for k, v in ckpt.items() if k.startswith("param/")}
        )
        best_state = {
            k[len("best/"):]: np.array(v, copy=True)
            for k, v in ckpt.items()
            if k.startswith("best/")
        }
        n_params = len(optimizer.params)
        optimizer.load_state_dict(
            {
                "t": int(ckpt["adam_t"]),
                "m": [np.asarray(ckpt[f"adam_m/{i}"]) for i in range(n_params)],
                "v": [np.asarray(ckpt[f"adam_v/{i}"]) for i in range(n_params)],
            }
        )
        start_epoch = int(ckpt["epoch"])
        best = float(ckpt["best"])
        stale = int(ckpt["stale"])
        best_epoch = int(ckpt["best_epoch"])
        result.losses = [float(x) for x in np.asarray(ckpt["losses"]).ravel()]
        result.skipped_steps = int(ckpt["skipped_steps"])
        result.resumed = True
        if tel.enabled:
            tel.event(
                "checkpoint_resume",
                what="train",
                parent_run=meta.get("telemetry_run"),
                parent_schema=meta.get("telemetry_schema"),
                epoch=start_epoch,
            )

    def save_checkpoint(epoch_done: int) -> None:
        arrays: Dict[str, np.ndarray] = {
            "epoch": epoch_done,
            "best": best,
            "stale": stale,
            "best_epoch": best_epoch,
            "losses": np.asarray(result.losses, dtype=np.float64),
            "skipped_steps": result.skipped_steps,
            "adam_t": optimizer._t,
        }
        for name, p in model.state_dict().items():
            arrays[f"param/{name}"] = p
        for name, p in best_state.items():
            arrays[f"best/{name}"] = p
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"adam_m/{i}"] = m
            arrays[f"adam_v/{i}"] = v
        atomic_save_npz(
            checkpoint_path,
            arrays,
            meta={
                "kind": _TRAIN_CKPT_KIND,
                "telemetry_run": tel.run_id,
                "telemetry_schema": SCHEMA_VERSION,
            },
        )
        if tel.enabled:
            tel.count("train.checkpoint_saves")

    if tel.enabled:
        tel.event(
            "train_start",
            samples=len(train_samples),
            epochs=cfg.epochs,
            start_epoch=start_epoch,
            lr=cfg.learning_rate,
            resumed=result.resumed,
        )
    for epoch in range(start_epoch, cfg.epochs):
        if budget is not None and budget.expired():
            result.timed_out = True
            if tel.enabled:
                tel.event("budget_expired", where="train", epoch=epoch)
            break
        epoch_loss = 0.0
        counted = 0
        for sample in train_samples:
            optimizer.zero_grad()
            loss_value = _loss_backward(model, sample, telemetry=tel)
            step_ok = check_finite(loss_value, "training loss", policy) and all(
                p.grad is None or check_finite(p.grad, "parameter gradient", policy)
                for p in optimizer.params
            )
            if not step_ok:
                # Sanitize policy: drop the poisoned step entirely so
                # NaN moments never enter Adam's state.
                result.skipped_steps += 1
                continue
            optimizer.step()
            epoch_loss += loss_value
            counted += 1
        # Average over the steps that actually ran; an all-skipped epoch
        # must read as nan, never as a spuriously perfect 0.0 "best".
        epoch_loss = epoch_loss / counted if counted else float("nan")
        result.losses.append(epoch_loss)
        _log.log(
            logging.INFO if cfg.verbose else logging.DEBUG,
            "epoch %4d  loss %.6f", epoch, epoch_loss,
        )
        if tel.enabled:
            tel.event(
                "train_epoch",
                epoch=epoch,
                loss=epoch_loss,
                steps=counted,
                skipped=result.skipped_steps,
            )
        if math.isfinite(epoch_loss) and epoch_loss < best - cfg.min_delta:
            best = epoch_loss
            best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
        if checkpoint_path is not None and (epoch + 1) % max(1, checkpoint_every) == 0:
            save_checkpoint(epoch + 1)
        if stale >= cfg.patience:
            break
    model.load_state_dict(best_state)
    result.best_epoch = best_epoch
    result.final_loss = best
    if tel.enabled:
        tel.event(
            "train_end",
            epochs_run=len(result.losses),
            best_epoch=best_epoch,
            final_loss=best,
            skipped_steps=result.skipped_steps,
            timed_out=result.timed_out,
            resumed=result.resumed,
        )
    return result


def evaluate_r2(
    model: TimingEvaluator, samples: Sequence[DesignSample]
) -> Dict[str, Dict[str, float]]:
    """Per-design R² on all pins and on endpoints only (Table III)."""
    scores: Dict[str, Dict[str, float]] = {}
    for sample in samples:
        pred = model.predict_arrivals(sample.graph, sample.steiner_coords)
        mask_all = sample.label_mask
        mask_ends = sample.endpoint_mask
        scores[sample.name] = {
            "arrival_all": r2_score(sample.arrival_label[mask_all], pred[mask_all]),
            "arrival_ends": r2_score(sample.arrival_label[mask_ends], pred[mask_ends]),
        }
    return scores
