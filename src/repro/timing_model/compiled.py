"""Compiled tape objectives for the timing evaluator.

Two hot paths rebuild the evaluator's closure graph from scratch on
every call:

* the refinement oracle (``core/refine.py``), which differentiates the
  Eq. (6) penalty w.r.t. the Steiner coordinates once per Algorithm 1
  iteration; and
* the trainer (``timing_model/train.py``), which differentiates the
  masked arrival MSE w.r.t. the model parameters once per sample per
  epoch.

Both objectives have a fixed op sequence per ``(graph topology, model,
smoothing gamma)``: only the input arrays change between calls.  This
module traces each objective once with the closure engine, lifts the
recorded graph into a :class:`~repro.autodiff.tape.Tape`, and caches
the result on ``graph._static`` — the same topology-identity cache the
flat STA kernels key on, cleared by ``_Oracle.invalidate()`` so a
checkpoint restore recompiles from clean state.

Replay is bitwise identical to the closure engine (tape.py replicates
its accumulation order); graphs using an op the tape compiler does not
know cache an *unsupported* marker and callers fall back to closures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.autodiff.tape import Tape, TapeUnsupported, compile_tape
from repro.autodiff.tensor import Tensor
from repro.obs import get_telemetry
from repro.timing_model.model import TimingEvaluator


class TapeParityError(AssertionError):
    """Raised in ``kernel="tape-parity"`` mode on any bitwise mismatch."""


def assert_bitwise_equal(name: str, tape_value, closure_value) -> None:
    """Fail loudly unless the two results are bit-for-bit the same."""
    a = np.asarray(tape_value)
    b = np.asarray(closure_value)
    if a.shape != b.shape or not np.array_equal(a, b, equal_nan=True):
        raise TapeParityError(
            f"tape kernel diverged from closure reference on {name!r}: "
            f"max |delta| = {float(np.max(np.abs(a - b))) if a.shape == b.shape else 'shape mismatch'}"
        )


class _Unsupported:
    """Cached marker: this (graph, model) cannot be tape-compiled."""

    __slots__ = ("model", "congestion", "reason")

    def __init__(self, model, congestion, reason: str) -> None:
        self.model = model
        self.congestion = congestion
        self.reason = reason


class _TensorPenaltyConfig:
    """Duck-typed ``PenaltyConfig`` whose lambdas are live tape inputs.

    ``smoothed_penalty`` multiplies by ``config.lambda_wns`` /
    ``config.lambda_tns``; handing it scalar Tensors records the
    lambdas as graph leaves, so one compiled tape survives the per-
    iteration ``escalated()`` weight updates.  ``gamma`` stays a float
    — it is baked into op constants, hence part of the cache key.
    """

    def __init__(self, lambda_wns: Tensor, lambda_tns: Tensor, gamma: float) -> None:
        self.lambda_wns = lambda_wns
        self.lambda_tns = lambda_tns
        self.gamma = gamma


class CompiledObjective:
    """Eq. (6) penalty + arrival prefix, compiled for one design.

    Inputs read live on every replay: the flat Steiner coordinates, the
    two penalty weights, and every model parameter (by ``.data``
    rebinding, so ``load_state_dict`` is picked up without recompiling).
    """

    def __init__(self, model: TimingEvaluator, graph, gamma: float) -> None:
        from repro.core.penalty import smoothed_penalty

        self.model = model
        self.graph = graph
        self.congestion = graph.congestion
        self.gamma = float(gamma)
        self.endpoints = graph.endpoints
        self.required = graph.required

        # ---- trace: one closure-engine forward defines the program ----
        coords_t = Tensor(np.zeros((graph.num_steiner, 2)), requires_grad=True)
        lam_w = Tensor(np.asarray(-1.0))
        lam_t = Tensor(np.asarray(-1.0))
        pcfg = _TensorPenaltyConfig(lam_w, lam_t, self.gamma)
        out = model(graph, coords_t)
        penalty, _, _ = smoothed_penalty(out["arrival"], self.endpoints, self.required, pcfg)

        inputs: Dict[str, Tensor] = {"coords": coords_t, "lam_w": lam_w, "lam_t": lam_t}
        for name, p in model.named_parameters():
            inputs[f"param/{name}"] = p
        # Only the coordinate gradient is ever read: pruning the adjoint
        # program to root -> coords paths drops every weight-gradient
        # GEMM the closure reference wastes time on (bitwise-safe; see
        # compile_tape).
        self.tape: Tape = compile_tape(
            penalty, inputs, outputs={"arrival": out["arrival"]}, grad_targets=("coords",)
        )
        self._params = [p for _, p in model.named_parameters()]
        self._n_prefix = self.tape.prefix_length("arrival")
        # (coords copy, parameter-array fingerprint) of the last completed
        # forward whose arrival-prefix buffers are still valid.  Cleared
        # before every replay and restored on success, so an interrupted
        # replay (fault injection, KeyboardInterrupt) can never leave a
        # half-written prefix marked reusable.
        self._fwd_state: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    def _fingerprint(self) -> Tuple[int, ...]:
        return tuple(id(p.data) for p in self._params)

    def _overrides(self, coords: np.ndarray, pcfg=None) -> Dict[str, np.ndarray]:
        ov = {"coords": np.asarray(coords, dtype=np.float64)}
        if pcfg is not None:
            ov["lam_w"] = np.asarray(pcfg.lambda_wns, dtype=np.float64)
            ov["lam_t"] = np.asarray(pcfg.lambda_tns, dtype=np.float64)
        return ov

    def gradient(self, coords: np.ndarray, pcfg) -> Tuple[np.ndarray, np.ndarray, float]:
        """(dP/dcoords, arrival view, penalty value) at ``coords``.

        The arrival array is a live tape buffer — copy it to keep it
        past the next replay.
        """
        if float(pcfg.gamma) != self.gamma:
            raise ValueError(
                f"objective compiled for gamma={self.gamma}, called with {pcfg.gamma}"
            )
        tape = self.tape
        ov = self._overrides(coords, pcfg)
        state, self._fwd_state = self._fwd_state, None
        fp = self._fingerprint()
        if state is not None and state[1] == fp and np.array_equal(state[0], ov["coords"]):
            # The arrival prefix was already replayed at these exact
            # coordinates (the accept path: evaluate(c) then gradient(c)).
            # Only the penalty tail needs to run; the lambda weights are
            # plain input slots, rebound regardless of ``start``.
            tape.run_forward(ov, start=self._n_prefix)
        else:
            tape.run_forward(ov)
        tape.run_backward()
        self._fwd_state = (ov["coords"].copy(), fp)
        grad = tape.grad("coords")
        if grad is None:
            grad = np.zeros_like(np.asarray(coords, dtype=np.float64))
        return grad, tape.value("arrival"), tape.root_value()

    def evaluate(self, coords: np.ndarray) -> np.ndarray:
        """Arrival view at ``coords`` — forward prefix only, no penalty tail."""
        ov = self._overrides(coords)
        self._fwd_state = None
        self.tape.run_forward(ov, upto="arrival")
        self._fwd_state = (ov["coords"].copy(), self._fingerprint())
        return self.tape.value("arrival")


class CompiledLoss:
    """A per-sample training loss compiled to a tape.

    ``loss_fn(model, sample)`` builds the closure loss once at trace
    time; replays read the parameters live and write their gradients
    back through ``Tensor._accumulate`` — final ``p.grad`` values are
    bitwise what ``loss.backward()`` would have produced.
    """

    def __init__(self, model: TimingEvaluator, sample, loss_fn) -> None:
        self.model = model
        self.congestion = sample.graph.congestion
        self._params = list(model.named_parameters())
        loss = loss_fn(model, sample)
        inputs = {f"param/{name}": p for name, p in self._params}
        self.tape: Tape = compile_tape(loss, inputs)

    def loss_backward(self) -> float:
        """One fused forward+backward; accumulates grads, returns the loss."""
        tape = self.tape
        tape.run_forward()
        tape.run_backward()
        for name, p in self._params:
            g = tape.grad(f"param/{name}")
            if g is not None:
                p._accumulate(g)
        return tape.root_value()


# ----------------------------------------------------------------------
# Topology-keyed caches (on graph._static, like the flat STA kernels)
# ----------------------------------------------------------------------
def _cache_lookup(graph, key, model, telemetry):
    tel = telemetry if telemetry is not None else get_telemetry()
    cached = graph._static.get(key)
    if cached is not None and cached.model is model and cached.congestion is graph.congestion:
        if tel.enabled:
            tel.count("tape.cache_hits")
        return cached, tel
    return None, tel


def get_compiled_objective(
    model: TimingEvaluator, graph, gamma: float, telemetry=None
) -> Optional[CompiledObjective]:
    """Cached :class:`CompiledObjective`, or ``None`` if unsupported.

    Keyed by ``(model identity, gamma)`` on the graph's topology cache;
    entries are dropped when the model or congestion field they were
    compiled against is no longer the live one (``TSteiner.optimize``
    rebinds ``graph.congestion`` after the probe stage) and by
    ``graph._static.clear()`` on checkpoint restore.
    """
    key = ("tape", id(model), float(gamma))
    cached, tel = _cache_lookup(graph, key, model, telemetry)
    if isinstance(cached, _Unsupported):
        return None
    if cached is not None:
        return cached
    if tel.enabled:
        tel.count("tape.cache_misses")
    with tel.span("tape_compile", what="objective", gamma=float(gamma)) as span:
        try:
            obj = CompiledObjective(model, graph, gamma)
        except TapeUnsupported as exc:
            if tel.enabled:
                tel.count("tape.fallbacks")
                span.annotate(unsupported=str(exc))
            graph._static[key] = _Unsupported(model, graph.congestion, str(exc))
            return None
        span.annotate(n_instructions=obj.tape.n_instructions, n_slots=obj.tape.n_slots)
    graph._static[key] = obj
    return obj


def get_compiled_loss(
    model: TimingEvaluator, sample, loss_fn, telemetry=None
) -> Optional[CompiledLoss]:
    """Cached per-sample :class:`CompiledLoss`, or ``None`` if unsupported."""
    graph = sample.graph
    key = ("tape-loss", id(model))
    cached, tel = _cache_lookup(graph, key, model, telemetry)
    if isinstance(cached, _Unsupported):
        return None
    if cached is not None:
        return cached
    if tel.enabled:
        tel.count("tape.cache_misses")
    with tel.span("tape_compile", what="loss", sample=getattr(sample, "name", "?")) as span:
        try:
            compiled = CompiledLoss(model, sample, loss_fn)
        except TapeUnsupported as exc:
            if tel.enabled:
                tel.count("tape.fallbacks")
                span.annotate(unsupported=str(exc))
            graph._static[key] = _Unsupported(model, graph.congestion, str(exc))
            return None
        span.annotate(n_instructions=compiled.tape.n_instructions, n_slots=compiled.tape.n_slots)
    graph._static[key] = compiled
    return compiled
