"""Seeded synthetic netlist generator.

Produces synchronous, register-bounded netlists with the structural
features real RTL synthesis output exhibits:

* combinational cones of configurable logic depth between registers;
* a long-tailed fanout distribution (most nets drive 1-3 sinks, a few
  control-like signals fan out widely);
* a mix of cell drive strengths, inverters/buffers and 2-3 input gates;
* primary I/O ports on the die boundary.

Given the same :class:`GeneratorConfig` the output is bit-identical,
which the benchmark recipes in :mod:`repro.netlist.benchmarks` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.netlist import Netlist, PinDirection
from repro.pdk.clocks import ClockSpec
from repro.pdk.liberty import CellLibrary, default_library
from repro.pdk.technology import Technology, default_technology


@dataclass
class GeneratorConfig:
    """Parameters controlling one synthetic design."""

    name: str
    n_registers: int
    n_comb: int
    n_pi: int = 8
    n_po: int = 8
    depth: int = 12
    seed: int = 0
    clock_period: float = 1.0  # ns
    utilization: float = 0.55
    high_fanout_fraction: float = 0.01
    cell_mix: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.n_registers < 1 or self.n_comb < self.depth:
            raise ValueError("need at least one register and depth-many comb cells")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")


_DEFAULT_MIX: Dict[str, float] = {
    "INV_X1": 0.16,
    "INV_X2": 0.08,
    "INV_X4": 0.03,
    "BUF_X2": 0.06,
    "BUF_X4": 0.03,
    "NAND2_X1": 0.22,
    "NAND2_X2": 0.08,
    "NOR2_X1": 0.12,
    "AOI21_X1": 0.08,
    "OAI21_X1": 0.06,
    "XOR2_X1": 0.05,
    "MUX2_X1": 0.03,
}


def _choose_driver(
    rng: np.random.Generator,
    candidates: np.ndarray,
    fanout: np.ndarray,
    hot_mask: np.ndarray,
) -> int:
    """Pick a driver pin, preferring low-fanout drivers.

    Drivers flagged ``hot`` (control-like) keep a flat weight so a few
    nets grow large fanouts, reproducing the long-tail distribution.
    """
    weights = np.where(hot_mask[candidates], 1.0, 1.0 / (1.0 + fanout[candidates]) ** 2)
    weights_sum = weights.sum()
    if weights_sum <= 0:
        return int(rng.choice(candidates))
    return int(rng.choice(candidates, p=weights / weights_sum))


def generate_netlist(
    config: GeneratorConfig,
    library: Optional[CellLibrary] = None,
    technology: Optional[Technology] = None,
) -> Netlist:
    """Generate a placed-later synthetic netlist from ``config``."""
    library = library or default_library()
    technology = technology or default_technology()
    rng = np.random.default_rng(config.seed)
    clock = ClockSpec(period=config.clock_period)
    netlist = Netlist(config.name, library, technology, clock)

    mix = config.cell_mix or _DEFAULT_MIX
    mix_names = list(mix)
    mix_probs = np.array([mix[n] for n in mix_names], dtype=np.float64)
    mix_probs /= mix_probs.sum()

    # ------------------------------------------------------------------
    # Die size from total area and utilization (square floorplan).
    # ------------------------------------------------------------------
    dff = library["DFF_X1"]
    mean_area = float(np.dot(mix_probs, [library[n].area for n in mix_names]))
    total_sites = config.n_registers * dff.area + config.n_comb * mean_area
    core_area = total_sites * technology.site_width * technology.row_height / config.utilization
    die = float(np.sqrt(core_area))
    # Round up to whole GCells so the routing grid tiles the die exactly.
    gcells = max(2, int(np.ceil(die / technology.gcell_size)))
    netlist.die_width = gcells * technology.gcell_size
    netlist.die_height = gcells * technology.gcell_size

    # ------------------------------------------------------------------
    # Registers and ports.
    # ------------------------------------------------------------------
    regs = [netlist.add_cell(f"reg_{i}", dff) for i in range(config.n_registers)]

    pi_pins: List[int] = []
    for i in range(config.n_pi):
        frac = (i + 0.5) / config.n_pi
        pin = netlist.add_port(f"pi_{i}", PinDirection.OUTPUT, 0.0, frac * netlist.die_height)
        pi_pins.append(pin.index)
    po_pins: List[int] = []
    for i in range(config.n_po):
        frac = (i + 0.5) / config.n_po
        pin = netlist.add_port(
            f"po_{i}", PinDirection.INPUT, netlist.die_width, frac * netlist.die_height
        )
        po_pins.append(pin.index)

    # ------------------------------------------------------------------
    # Combinational fabric, level by level.
    # ------------------------------------------------------------------
    # Driver pool: (pin index, level).  Level 0 = startpoints.
    driver_pins: List[int] = list(pi_pins) + [r.pin_indices["Q"] for r in regs]
    driver_level: List[int] = [0] * len(driver_pins)

    comb_levels = rng.integers(1, config.depth + 1, size=config.n_comb)
    comb_levels.sort()

    n_total_drivers = len(driver_pins) + config.n_comb
    fanout = np.zeros(n_total_drivers, dtype=np.int64)
    hot = rng.random(n_total_drivers) < config.high_fanout_fraction

    driver_arr = np.zeros(n_total_drivers, dtype=np.int64)
    level_arr = np.full(n_total_drivers, np.iinfo(np.int64).max, dtype=np.int64)
    n_drivers = len(driver_pins)
    driver_arr[:n_drivers] = driver_pins
    level_arr[:n_drivers] = driver_level
    sinks_of: Dict[int, List[int]] = {}

    def attach(driver_slot: int, sink_pin: int) -> None:
        pin_idx = int(driver_arr[driver_slot])
        sinks_of.setdefault(pin_idx, []).append(sink_pin)
        fanout[driver_slot] += 1

    # Slots grouped by level; comb_levels is sorted, so by the time a
    # level-L cell is built every lower-level driver is registered.
    slots_by_level: Dict[int, List[int]] = {0: list(range(n_drivers))}
    current_level = -1
    prev_pool = np.empty(0, dtype=np.int64)
    lower_pool = np.empty(0, dtype=np.int64)

    for i, level in enumerate(comb_levels):
        level = int(level)
        if level != current_level:
            current_level = level
            prev_list = slots_by_level.get(level - 1, [])
            prev_pool = np.array(prev_list, dtype=np.int64)
            lower_pool = np.concatenate(
                [np.array(slots_by_level.get(l, []), dtype=np.int64) for l in range(level)]
            ) if level > 0 else np.empty(0, dtype=np.int64)
        type_name = mix_names[int(rng.choice(len(mix_names), p=mix_probs))]
        cell = netlist.add_cell(f"u_{i}", library[type_name])
        in_pins = cell.cell_type.input_pins
        # First input from the immediately preceding level when possible,
        # guaranteeing the configured logic depth actually occurs.
        first_pool = prev_pool if prev_pool.size else lower_pool
        slot = _choose_driver(rng, first_pool, fanout, hot)
        attach(slot, cell.pin_indices[in_pins[0]])
        for pin_name in in_pins[1:]:
            slot = _choose_driver(rng, lower_pool, fanout, hot)
            attach(slot, cell.pin_indices[pin_name])
        # Register this cell's output as a driver at its level.
        driver_arr[n_drivers] = cell.pin_indices["Y"]
        level_arr[n_drivers] = level
        slots_by_level.setdefault(level, []).append(n_drivers)
        n_drivers += 1

    # ------------------------------------------------------------------
    # Endpoint hookup: register D pins and POs take deep drivers.
    # ------------------------------------------------------------------
    deep = np.flatnonzero(level_arr >= max(1, config.depth - 2))
    anywhere = np.flatnonzero(level_arr >= 1)
    pool = deep if deep.size else anywhere
    for reg in regs:
        slot = _choose_driver(rng, pool, fanout, hot)
        attach(slot, reg.pin_indices["D"])
    for po in po_pins:
        slot = _choose_driver(rng, pool, fanout, hot)
        attach(slot, po)

    # ------------------------------------------------------------------
    # Dangling combinational outputs get a sink so no logic is dead:
    # fold them into nearby register D-side loads as extra observers.
    # Unused outputs are attached to spare PO-like observer ports.
    # ------------------------------------------------------------------
    unused = [
        int(driver_arr[slot])
        for slot in range(len(driver_arr))
        if fanout[slot] == 0 and int(driver_arr[slot]) not in pi_pins
    ]
    observer_ports: List[int] = []
    for j, pin_idx in enumerate(unused):
        frac = (j + 0.5) / max(1, len(unused))
        port = netlist.add_port(
            f"obs_{j}", PinDirection.INPUT, frac * netlist.die_width, netlist.die_height
        )
        observer_ports.append(port.index)
        sinks_of.setdefault(pin_idx, []).append(port.index)

    # ------------------------------------------------------------------
    # Materialize nets.
    # ------------------------------------------------------------------
    for driver_pin in sorted(sinks_of):
        netlist.add_net(f"n_{driver_pin}", driver_pin, sinks_of[driver_pin])

    netlist.validate()
    return netlist
