"""Design serialization: save/load netlists and Steiner forests.

A compact JSON-lines format (one object per line, section-tagged)
covering everything needed to reproduce a flow run outside this
process: cell instances with placement, ports, nets, die geometry,
clock constraints, and optionally the Steiner forest's topology and
coordinates.  Cell types are referenced by library name — the library
itself is parametric (``default_library``) and regenerates identically,
the same convention LEF/DEF uses for cells vs. instances.

Not a DEF parser; a pragmatic interchange format for this repo's
ecosystem (experiments, bug reports, golden files in tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.netlist.netlist import Netlist, PinDirection
from repro.pdk.clocks import ClockSpec
from repro.pdk.liberty import CellLibrary, default_library
from repro.pdk.technology import Technology, default_technology
from repro.steiner.forest import SteinerForest
from repro.steiner.tree import SteinerTree

FORMAT_VERSION = 1


def save_design(
    path: Union[str, Path],
    netlist: Netlist,
    forest: Optional[SteinerForest] = None,
) -> None:
    """Write ``netlist`` (and optionally ``forest``) to a .jsonl file."""
    path = Path(path)
    lines = [
        json.dumps(
            {
                "kind": "header",
                "version": FORMAT_VERSION,
                "name": netlist.name,
                "die": [netlist.die_width, netlist.die_height],
                "clock": {
                    "period": netlist.clock.period,
                    "uncertainty": netlist.clock.uncertainty,
                    "latency": netlist.clock.latency,
                    "input_delay": netlist.clock.input_delay,
                    "output_delay": netlist.clock.output_delay,
                },
                "library": netlist.library.name,
                "technology": netlist.technology.name,
            }
        )
    ]
    for cell in netlist.cells:
        lines.append(
            json.dumps(
                {
                    "kind": "cell",
                    "name": cell.name,
                    "type": cell.cell_type.name,
                    "x": cell.x,
                    "y": cell.y,
                }
            )
        )
    for pin in netlist.pins:
        if pin.is_port:
            lines.append(
                json.dumps(
                    {
                        "kind": "port",
                        "name": pin.name,
                        "direction": pin.direction.value,
                        "x": pin.offset[0],
                        "y": pin.offset[1],
                        "cap": pin.cap,
                    }
                )
            )
    for net in netlist.nets:
        lines.append(
            json.dumps(
                {
                    "kind": "net",
                    "name": net.name,
                    "driver": netlist.pins[net.driver].name,
                    "sinks": [netlist.pins[s].name for s in net.sinks],
                }
            )
        )
    if forest is not None:
        for tree in forest.trees:
            lines.append(
                json.dumps(
                    {
                        "kind": "tree",
                        "net": netlist.nets[tree.net_index].name,
                        "pins": [netlist.pins[p].name for p in tree.pin_ids],
                        "steiner": tree.steiner_xy.tolist(),
                        "edges": [list(e) for e in tree.edges],
                    }
                )
            )
    path.write_text("\n".join(lines) + "\n")


def load_design(
    path: Union[str, Path],
    library: Optional[CellLibrary] = None,
    technology: Optional[Technology] = None,
) -> Tuple[Netlist, Optional[SteinerForest]]:
    """Read a design written by :func:`save_design`."""
    path = Path(path)
    library = library or default_library()
    technology = technology or default_technology()

    records = [json.loads(line) for line in path.read_text().splitlines() if line]
    header = records[0]
    if header.get("kind") != "header":
        raise ValueError(f"{path}: missing header record")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported format version {header.get('version')}")

    clock = ClockSpec(**header["clock"])
    netlist = Netlist(header["name"], library, technology, clock)
    netlist.die_width, netlist.die_height = header["die"]

    pin_by_name = {}
    for rec in records[1:]:
        if rec["kind"] == "cell":
            cell = netlist.add_cell(rec["name"], library[rec["type"]])
            cell.x, cell.y = rec["x"], rec["y"]
        elif rec["kind"] == "port":
            pin = netlist.add_port(
                rec["name"],
                PinDirection(rec["direction"]),
                rec["x"],
                rec["y"],
                cap=rec["cap"],
            )
            pin_by_name[pin.name] = pin.index
    for pin in netlist.pins:
        pin_by_name[pin.name] = pin.index

    trees = []
    for rec in records[1:]:
        if rec["kind"] == "net":
            netlist.add_net(
                rec["name"],
                pin_by_name[rec["driver"]],
                [pin_by_name[s] for s in rec["sinks"]],
            )
    net_by_name = {net.name: net.index for net in netlist.nets}
    pos = netlist.pin_positions()
    for rec in records[1:]:
        if rec["kind"] == "tree":
            pin_ids = [pin_by_name[p] for p in rec["pins"]]
            trees.append(
                SteinerTree(
                    net_index=net_by_name[rec["net"]],
                    pin_ids=pin_ids,
                    pin_xy=pos[np.array(pin_ids, dtype=np.int64)],
                    steiner_xy=np.array(rec["steiner"], dtype=np.float64).reshape(-1, 2),
                    edges=[tuple(e) for e in rec["edges"]],
                )
            )

    netlist.validate()
    forest = SteinerForest(netlist, trees) if trees else None
    if forest is not None:
        forest.validate()
    return netlist, forest
