"""The ten named benchmark recipes.

The paper evaluates on ten OpenCores designs synthesized with the
SkyWater 130 nm PDK (Table I).  We cannot ship those netlists, so each
name maps to a seeded :class:`GeneratorConfig` whose *relative* scale
follows Table I (jpeg_encoder largest, spm tiny, etc.).  Absolute sizes
default to roughly 1/20 of the paper's so the full ten-design flow runs
in CI time; ``build_benchmark(..., scale=...)`` scales sizes up for
larger runs.

The train/test split matches the paper: six training designs (chacha,
cic_decimator, APU, des, jpeg_encoder, spm) and four test designs
(aes_cipher, picorv32a, usb_cdc_core, des3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netlist.generator import GeneratorConfig, generate_netlist
from repro.netlist.netlist import Netlist
from repro.pdk.liberty import CellLibrary
from repro.pdk.technology import Technology


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one named benchmark."""

    name: str
    n_registers: int
    n_comb: int
    n_pi: int
    n_po: int
    depth: int
    seed: int
    clock_period: float  # ns; deliberately tight so designs violate
    is_train: bool

    def config(self, scale: float = 1.0) -> GeneratorConfig:
        return GeneratorConfig(
            name=self.name,
            n_registers=max(2, int(self.n_registers * scale)),
            n_comb=max(self.depth, int(self.n_comb * scale)),
            n_pi=max(2, int(self.n_pi * min(scale, 2.0))),
            n_po=max(2, int(self.n_po * min(scale, 2.0))),
            depth=self.depth,
            seed=self.seed,
            clock_period=self.clock_period,
        )


# Sizes follow Table I proportions at ~1/20 scale.  Seeds are fixed so
# every run regenerates identical designs.  Clock periods were chosen so
# the baseline flow reports negative WNS on every design, as in the
# paper (all ten designs violate).
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("chacha", 120, 620, 12, 12, 16, 101, 1.55, True),
        BenchmarkSpec("cic_decimator", 12, 30, 4, 4, 6, 102, 0.75, True),
        BenchmarkSpec("APU", 24, 120, 6, 6, 10, 103, 1.00, True),
        BenchmarkSpec("des", 110, 580, 12, 12, 15, 104, 1.45, True),
        BenchmarkSpec("jpeg_encoder", 220, 2480, 16, 16, 22, 105, 1.95, True),
        BenchmarkSpec("spm", 6, 12, 3, 3, 4, 106, 0.55, True),
        BenchmarkSpec("aes_cipher", 60, 520, 10, 10, 14, 107, 1.35, False),
        BenchmarkSpec("picorv32a", 90, 560, 12, 12, 18, 108, 1.70, False),
        BenchmarkSpec("usb_cdc_core", 30, 56, 6, 6, 8, 109, 0.85, False),
        BenchmarkSpec("des3", 380, 1930, 14, 14, 20, 110, 1.85, False),
    ]
}

TRAIN_BENCHMARKS: List[str] = [n for n, s in BENCHMARKS.items() if s.is_train]
TEST_BENCHMARKS: List[str] = [n for n, s in BENCHMARKS.items() if not s.is_train]


def build_benchmark(
    name: str,
    scale: float = 1.0,
    library: Optional[CellLibrary] = None,
    technology: Optional[Technology] = None,
) -> Netlist:
    """Generate the named benchmark netlist (unplaced)."""
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}")
    return generate_netlist(BENCHMARKS[name].config(scale), library=library, technology=technology)
