"""Netlist / Steiner-forest statistics — the columns of Table I.

The paper counts graph elements as seen by the GNN:

* ``cell_nodes`` — pin nodes of the netlist graph;
* ``steiner_nodes`` — Steiner points of the constructed forest;
* ``net_edges`` — edges of the Steiner graph (driver-to-sink paths
  through Steiner points) plus netlist-graph net arcs;
* ``cell_edges`` — intra-cell timing arcs;
* ``endpoints`` — timing path endpoints (register D pins and POs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.netlist.netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.steiner.forest import SteinerForest


@dataclass(frozen=True)
class NetlistStats:
    """One row of Table I."""

    name: str
    cell_nodes: int
    steiner_nodes: int
    net_edges: int
    cell_edges: int
    endpoints: int

    def as_row(self) -> tuple:
        return (
            self.name,
            self.cell_nodes,
            self.steiner_nodes,
            self.net_edges,
            self.cell_edges,
            self.endpoints,
        )


def collect_stats(netlist: Netlist, forest: Optional["SteinerForest"] = None) -> NetlistStats:
    """Compute Table-I statistics for a netlist (+ optional forest)."""
    steiner_nodes = 0
    steiner_edges = 0
    if forest is not None:
        steiner_nodes = forest.num_steiner_points
        steiner_edges = forest.num_edges
    return NetlistStats(
        name=netlist.name,
        cell_nodes=netlist.num_pins,
        steiner_nodes=steiner_nodes,
        net_edges=len(netlist.net_edges()) + steiner_edges,
        cell_edges=len(netlist.cell_edges()),
        endpoints=len(netlist.endpoints()),
    )


def aggregate_stats(rows, name: str) -> NetlistStats:
    """Sum a set of rows into a 'Total Train' / 'Total Test' row."""
    rows = list(rows)
    return NetlistStats(
        name=name,
        cell_nodes=sum(r.cell_nodes for r in rows),
        steiner_nodes=sum(r.steiner_nodes for r in rows),
        net_edges=sum(r.net_edges for r in rows),
        cell_edges=sum(r.cell_edges for r in rows),
        endpoints=sum(r.endpoints for r in rows),
    )
