"""Netlist substrate: data model, synthetic generator, named benchmarks.

Replaces the OpenCores designs of the paper with seeded synthetic
netlists that reproduce the *structural* properties the TSteiner
pipeline depends on: register-bounded combinational cones, realistic
fanout distributions, primary I/O, and per-design scale ratios matching
Table I of the paper.
"""

from repro.netlist.netlist import (
    CellInst,
    Net,
    Netlist,
    Pin,
    PinDirection,
)
from repro.netlist.generator import GeneratorConfig, generate_netlist
from repro.netlist.benchmarks import (
    BENCHMARKS,
    TEST_BENCHMARKS,
    TRAIN_BENCHMARKS,
    BenchmarkSpec,
    build_benchmark,
)
from repro.netlist.stats import NetlistStats, collect_stats

__all__ = [
    "CellInst",
    "Net",
    "Netlist",
    "Pin",
    "PinDirection",
    "GeneratorConfig",
    "generate_netlist",
    "BENCHMARKS",
    "TRAIN_BENCHMARKS",
    "TEST_BENCHMARKS",
    "BenchmarkSpec",
    "build_benchmark",
    "NetlistStats",
    "collect_stats",
]
