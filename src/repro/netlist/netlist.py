"""Netlist data model.

A :class:`Netlist` is the single source of truth for design structure:
cell instances (placed or not), pins with global integer ids, and nets
(one driver, many sinks).  Primary inputs/outputs are modelled as
port pins that belong to no cell (``cell_index == -1``) and carry their
own coordinates on the die boundary.

The clock network is ideal: register clock pins are driven directly by
the clock source with the spec's latency, so no clock net appears in
the net list (the paper likewise optimizes signal nets only).

Timing-graph conventions (used by both the STA engine and the GNN):

* *startpoints* — PI ports and register ``Q`` pins;
* *endpoints* — PO ports and register ``D`` pins;
* *cell edges* — input pin -> output pin inside a combinational cell
  (and ``CK -> Q`` inside a register);
* *net edges* — driver pin -> each sink pin of a net.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.pdk.clocks import ClockSpec
from repro.pdk.liberty import CellLibrary, CellType
from repro.pdk.technology import Technology


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Pin:
    """A pin: either a cell pin or a boundary port.

    ``offset`` is relative to the owning cell's origin; for ports the
    offset *is* the absolute position.
    """

    index: int
    name: str
    direction: PinDirection
    cell_index: int  # -1 for ports
    offset: Tuple[float, float]
    cap: float = 0.0  # pF, input pins only
    is_port: bool = False

    @property
    def is_cell_pin(self) -> bool:
        return self.cell_index >= 0


@dataclass
class CellInst:
    """A placed instance of a library cell."""

    index: int
    name: str
    cell_type: CellType
    x: float = 0.0
    y: float = 0.0
    pin_indices: Dict[str, int] = field(default_factory=dict)

    @property
    def is_sequential(self) -> bool:
        return self.cell_type.is_sequential

    @property
    def width(self) -> float:
        return self.cell_type.area  # in sites; scaled by site width at placement


@dataclass
class Net:
    """A signal net: one driver pin and one or more sink pins."""

    index: int
    name: str
    driver: int
    sinks: List[int] = field(default_factory=list)

    @property
    def pins(self) -> List[int]:
        return [self.driver] + self.sinks

    @property
    def degree(self) -> int:
        return 1 + len(self.sinks)


class Netlist:
    """Container tying cells, pins and nets together."""

    def __init__(
        self,
        name: str,
        library: CellLibrary,
        technology: Technology,
        clock: ClockSpec,
    ) -> None:
        self.name = name
        self.library = library
        self.technology = technology
        self.clock = clock
        self.cells: List[CellInst] = []
        self.pins: List[Pin] = []
        self.nets: List[Net] = []
        self.die_width: float = 0.0
        self.die_height: float = 0.0
        self._pin_net: Optional[np.ndarray] = None
        self._pin_static: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cell(self, name: str, cell_type: CellType) -> CellInst:
        """Create a cell instance together with all its pins."""
        cell = CellInst(index=len(self.cells), name=name, cell_type=cell_type)
        self.cells.append(cell)
        n_pins = len(cell_type.input_pins) + len(cell_type.output_pins)
        for k, pin_name in enumerate(cell_type.input_pins):
            pin = Pin(
                index=len(self.pins),
                name=f"{name}/{pin_name}",
                direction=PinDirection.INPUT,
                cell_index=cell.index,
                offset=(0.1 + 0.2 * k, 0.3),
                cap=cell_type.input_cap(pin_name),
            )
            self.pins.append(pin)
            cell.pin_indices[pin_name] = pin.index
        for k, pin_name in enumerate(cell_type.output_pins):
            pin = Pin(
                index=len(self.pins),
                name=f"{name}/{pin_name}",
                direction=PinDirection.OUTPUT,
                cell_index=cell.index,
                offset=(0.1 + 0.2 * (n_pins - 1 - k), 0.7),
            )
            self.pins.append(pin)
            cell.pin_indices[pin_name] = pin.index
        self._pin_net = None
        self._pin_static = None
        return cell

    def add_port(self, name: str, direction: PinDirection, x: float, y: float, cap: float = 0.004) -> Pin:
        """Create a boundary port pin.

        A primary *input* port drives a net, hence carries
        ``PinDirection.OUTPUT`` from the netlist-graph point of view;
        a primary *output* port is a net sink (``INPUT``).
        """
        pin = Pin(
            index=len(self.pins),
            name=name,
            direction=direction,
            cell_index=-1,
            offset=(x, y),
            cap=cap if direction == PinDirection.INPUT else 0.0,
            is_port=True,
        )
        self.pins.append(pin)
        self._pin_net = None
        self._pin_static = None
        return pin

    def add_net(self, name: str, driver: int, sinks: Sequence[int]) -> Net:
        if self.pins[driver].direction != PinDirection.OUTPUT:
            raise ValueError(f"net {name}: driver pin {driver} is not an output")
        for s in sinks:
            if self.pins[s].direction != PinDirection.INPUT:
                raise ValueError(f"net {name}: sink pin {s} is not an input")
        net = Net(index=len(self.nets), name=name, driver=driver, sinks=list(sinks))
        self.nets.append(net)
        self._pin_net = None
        return net

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def _pin_structure(self) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized static pin layout: (owning cell per pin, offsets).

        Pin offsets and cell ownership never change after construction
        (cells only *move*), so the gather arrays are built once; the
        ``add_*`` methods reset the memo alongside ``_pin_net``.
        """
        static = self._pin_static
        if static is None:
            n = len(self.pins)
            cell_of = np.fromiter(
                (p.cell_index for p in self.pins), dtype=np.int64, count=n
            )
            offsets = np.array([p.offset for p in self.pins], dtype=np.float64)
            static = self._pin_static = (cell_of, offsets.reshape(n, 2))
        return static

    def pin_positions(self) -> np.ndarray:
        """(num_pins, 2) array of absolute pin coordinates.

        Vectorized gather over the memoized pin structure; only cell
        origins are re-read per call (placement moves cells between
        calls, never pin offsets).  Bitwise-equal to the per-pin loop:
        float addition is commutative.
        """
        cell_of, offsets = self._pin_structure()
        pos = offsets.copy()
        if self.cells:
            cell_xy = np.array(
                [(c.x, c.y) for c in self.cells], dtype=np.float64
            ).reshape(-1, 2)
            mask = cell_of >= 0
            pos[mask] += cell_xy[cell_of[mask]]
        return pos

    def pin_net_map(self) -> np.ndarray:
        """Array mapping pin index -> net index (-1 if unconnected)."""
        if self._pin_net is None:
            mapping = np.full(len(self.pins), -1, dtype=np.int64)
            for net in self.nets:
                for p in net.pins:
                    mapping[p] = net.index
            self._pin_net = mapping
        return self._pin_net

    def ports(self, direction: Optional[PinDirection] = None) -> List[Pin]:
        result = [p for p in self.pins if p.is_port]
        if direction is not None:
            result = [p for p in result if p.direction == direction]
        return result

    def primary_inputs(self) -> List[Pin]:
        return self.ports(PinDirection.OUTPUT)

    def primary_outputs(self) -> List[Pin]:
        return self.ports(PinDirection.INPUT)

    def registers(self) -> List[CellInst]:
        return [c for c in self.cells if c.is_sequential]

    def startpoints(self) -> List[int]:
        """Pin indices where timing paths begin (PIs and register Q)."""
        points = [p.index for p in self.primary_inputs()]
        for cell in self.registers():
            for out_pin in cell.cell_type.output_pins:
                points.append(cell.pin_indices[out_pin])
        return points

    def endpoints(self) -> List[int]:
        """Pin indices where timing paths end (POs and register D)."""
        points = [p.index for p in self.primary_outputs()]
        for cell in self.registers():
            for in_pin in cell.cell_type.input_pins:
                if in_pin != cell.cell_type.clock_pin:
                    points.append(cell.pin_indices[in_pin])
        return points

    def cell_edges(self) -> List[Tuple[int, int]]:
        """All (input pin, output pin) arcs inside cells.

        For registers, only the clock-to-q arc is included; the D pin
        has no outgoing arc because it terminates paths.
        """
        edges: List[Tuple[int, int]] = []
        for cell in self.cells:
            ct = cell.cell_type
            if ct.is_sequential:
                for out_pin in ct.output_pins:
                    edges.append((cell.pin_indices[ct.clock_pin], cell.pin_indices[out_pin]))
            else:
                for out_pin in ct.output_pins:
                    for in_pin in ct.input_pins:
                        edges.append((cell.pin_indices[in_pin], cell.pin_indices[out_pin]))
        return edges

    def net_edges(self) -> List[Tuple[int, int, int]]:
        """All (driver pin, sink pin, net index) arcs."""
        edges: List[Tuple[int, int, int]] = []
        for net in self.nets:
            for sink in net.sinks:
                edges.append((net.driver, sink, net.index))
        return edges

    def topological_pin_order(self) -> List[int]:
        """Pins in dependency order over combinational cell+net arcs.

        Raises ``ValueError`` on a combinational loop — synchronous
        designs from the generator never have one, but hand-built test
        netlists might.
        """
        n = len(self.pins)
        adj: List[List[int]] = [[] for _ in range(n)]
        indeg = np.zeros(n, dtype=np.int64)
        for a, b in self.cell_edges():
            adj[a].append(b)
            indeg[b] += 1
        for a, b, _ in self.net_edges():
            adj[a].append(b)
            indeg[b] += 1
        queue = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order.append(u)
            for v in adj[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise ValueError("combinational loop detected in netlist")
        return order

    def validate(self) -> None:
        """Structural sanity checks; raises on inconsistency."""
        driven = set()
        for net in self.nets:
            if not net.sinks:
                raise ValueError(f"net {net.name} has no sinks")
            for p in net.pins:
                if not 0 <= p < len(self.pins):
                    raise ValueError(f"net {net.name} references unknown pin {p}")
            if net.driver in driven:
                raise ValueError(f"pin {net.driver} drives multiple nets")
            driven.add(net.driver)
        for sink_count in np.bincount(
            np.array([s for net in self.nets for s in net.sinks], dtype=np.int64),
            minlength=len(self.pins),
        ):
            if sink_count > 1:
                raise ValueError("a sink pin is connected to multiple nets")
        self.topological_pin_order()

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, cells={self.num_cells}, "
            f"nets={self.num_nets}, pins={self.num_pins})"
        )
