"""Core reverse-mode autodiff tensor.

The design follows the classic tape-based approach: every operation
returns a new :class:`Tensor` holding references to its parents and a
closure that maps the output gradient to parent-gradient contributions.
Calling :meth:`Tensor.backward` topologically sorts the graph and
accumulates gradients into every tensor created with
``requires_grad=True``.

All data lives in ``float64`` numpy arrays by default.  Double precision
matters here: the adaptive-stepsize scheme of TSteiner divides two
gradient-difference norms (Eq. (9) of the paper), which is numerically
fragile in ``float32`` for nearly-converged points.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used by the refinement loop when evaluating candidate Steiner
    solutions whose gradients are not needed (accept/revert test in
    Algorithm 1) and by inference-only benchmark paths.
    """
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum the leading axes numpy prepended during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size one.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array that records operations for backprop."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op", "_ctx")
    __array_priority__ = 200  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "leaf",
        _ctx=None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op = _op
        # Op parameters (axis, clip bounds, indices, ...) recorded so the
        # tape compiler (autodiff/tape.py) can re-derive the op's exact
        # semantics from the built graph; unused by the closure engine.
        self._ctx = _ctx

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return a detached copy of the underlying array."""
        return self.data.copy()

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{flag})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
        ctx=None,
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, _op=op, _ctx=ctx)
        return Tensor(
            data, requires_grad=True, _parents=parents, _backward=backward, _op=op, _ctx=ctx
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            seed = np.ones_like(self.data)
        else:
            seed = np.broadcast_to(_as_array(grad), self.shape).astype(np.float64)

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow", ctx=float(exponent))

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(np.abs(self.data), (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        scale = np.where(self.data > 0, 1.0, negative_slope)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(self.data * scale, (self,), backward, "leaky_relu", ctx=negative_slope)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward, "clip", ctx=(low, high))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, "sum", ctx=(axis, keepdims))

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, int):
            count = self.shape[axis]
        else:
            count = int(np.prod([self.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient evenly among ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._make(out_data, (self,), backward, "max", ctx=(axis, keepdims))

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Linear algebra and shape ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other_t.data.T)
            if other_t.requires_grad:
                other_t._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other_t), backward, "matmul")

    __matmul__ = matmul

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(np.array(out_data, copy=True), (self,), backward, "getitem", ctx=index)

    # ------------------------------------------------------------------
    # Comparison (non-differentiable, returns numpy)
    # ------------------------------------------------------------------
    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    items: List[Tensor] = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in items], axis=axis)
    sizes = [t.shape[axis] for t in items]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(items, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(items), backward, "concat", ctx=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    items: List[Tensor] = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in items], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(items, slices):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(items), backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a plain boolean array."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward, "where")
