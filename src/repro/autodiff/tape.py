"""Tape-based autodiff executor: compile once, replay as flat loops.

The closure engine in :mod:`repro.autodiff.tensor` rebuilds the whole
computation graph — one ``Tensor`` object plus one backward closure per
op — on *every* forward call.  For the refinement loop that is pure
overhead: the op sequence depends only on the graph topology and the
model configuration, while only the input arrays change between
iterations.

:func:`compile_tape` lifts an already-built closure graph into a flat
instruction program.  Compilation is *lifting*, not tracing: the eager
closure forward runs once and the tape is derived from the graph it
built, so tape and closure can never disagree about which ops ran.
The compiler then plans aggressively, because everything the closure
engine decides at runtime is static for a fixed topology:

* **Static adjoint schedule.**  Whether each backward rule runs
  (``node.grad is not None`` in the closure engine) and whether each
  contribution is the first write or an accumulation depends only on
  graph structure.  Both are resolved at compile time, so the replay
  loop is guard-free: first contributions write through ``out=``
  straight into the adjoint buffer, later ones add in arrival order —
  the exact ``Tensor._accumulate`` semantics.
* **Alias contributions.**  An identity first-contribution (``add``
  either side, ``sub`` left side, ``reshape``, contiguous ``concat``
  slices) makes the parent's adjoint a *view* of the child's — zero
  runtime cost.  Safe because a node's adjoint is only ever read by its
  own rule: once that rule has run, later writes through the alias can
  no longer be observed.
* **Entry-order scatter plans.**  Scatter-adds (``getitem`` backward,
  ``segment_sum`` forward) replicate ``np.add.at``'s per-element
  accumulation order, choosing per index array: duplicate-free indices
  use one fancy assignment, low-duplication indices are decomposed into
  occurrence *rounds* (the r-th occurrence of every index forms a
  duplicate-free round; per output element the addends arrive in entry
  order), everything else falls back to ``np.add.at`` itself.
* **Buffer pooling.**  Forward values and adjoints are only live for a
  statically-known window, so buffers are recycled through a free pool
  the moment their last reader has run.  This shrinks the working set
  from one-buffer-per-node (hundreds of MB on the bench designs) to a
  few dozen hot buffers that stay cache-resident, and makes replay
  allocation-free.  Values the backward pass reads (e.g. ``tanh``
  outputs) are kept live; view ops (``reshape``/``transpose``) of
  static storage are precomputed and cost no instruction at all.
* **Forward prefixes.**  Each named output records the instruction
  prefix that computes it, and :meth:`Tape.run_forward` accepts
  ``start``/``upto`` bounds — the refinement loop's accept path replays
  only the penalty tail on top of the forward state the acceptance
  evaluation already computed.

Data-dependent quantities the closure engine computes from live values
at graph-build time (log-sum-exp shifts, congestion cell indices) are
recorded as detached recompute nodes (see ``functional._detached``)
and re-derived from live inputs on every replay rather than baked as
constants.

Replay parity with the closure engine is *bitwise* (asserted by
``tests/test_tape.py`` and the ``tape-parity`` kernels): every value
and every gradient matches ``np.array_equal`` with the reference,
which tolerates only ±0.0 sign differences (e.g. a duplicate-free
scatter assigns ``-0.0`` where ``0.0 + -0.0`` would give ``+0.0``).
Graphs containing an op the compiler does not know raise
:class:`TapeUnsupported`; callers fall back to the closure engine
(see ``timing_model/compiled.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, _unbroadcast


class TapeUnsupported(RuntimeError):
    """The recorded graph uses an op the tape compiler cannot replay."""


#: Ops the forward emitter understands; anything else aborts compilation.
_KNOWN_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "abs",
        "tanh", "sigmoid", "relu", "leaky_relu", "clip", "sum", "matmul",
        "reshape", "transpose", "getitem", "concat", "segment_sum",
        "segment_max", "detached_max", "detached_div", "detached_squeeze",
        "bilinear",
    }
)

_BINARY_UFUNC = {"add": np.add, "sub": np.subtract, "mul": np.multiply, "div": np.divide}

#: Elementwise ops whose output may safely reuse a dying operand buffer
#: (any operand/output aliasing is well-defined for elementwise ufuncs).
_INPLACE_SAFE = frozenset(
    {"add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "abs",
     "tanh", "sigmoid", "relu", "leaky_relu", "clip"}
)

#: Ops that are pure views of their parent when the parent's storage is
#: a fixed array: no instruction is emitted at all.
_VIEW_OPS = frozenset({"reshape", "transpose", "detached_squeeze"})

#: Above this many occurrence rounds a scatter falls back to np.add.at.
_MAX_SCATTER_ROUNDS = 8


# ----------------------------------------------------------------------
# Scatter plans (closure parity: np.add.at entry order per element)
# ----------------------------------------------------------------------
def _int1d(idx) -> bool:
    return (
        isinstance(idx, np.ndarray)
        and idx.ndim == 1
        and issubclass(idx.dtype.type, np.integer)
        and (idx.size == 0 or int(idx.min()) >= 0)
    )


def _occurrence_rounds(idx: np.ndarray) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split ``idx`` into duplicate-free rounds by occurrence number.

    Round ``r`` holds the entry positions where an index value appears
    for the (r+1)-th time.  Applying the rounds in order reproduces
    ``np.add.at``'s per-output-element entry order exactly, while each
    round is a plain duplicate-free fancy assignment/addition.
    """
    uniq, inv, counts = np.unique(idx, return_inverse=True, return_counts=True)
    order = np.argsort(inv, kind="stable")
    starts = np.zeros(len(uniq), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    occ_sorted = np.arange(len(idx), dtype=np.int64) - starts[inv[order]]
    rounds = []
    for r in range(int(counts.max())):
        sel = np.sort(order[occ_sorted == r])
        rounds.append((sel, idx[sel]))
    return rounds


class _ScatterPlan:
    """Compile-time plan for ``scatter_add(zeros, idx, g)`` of one site.

    ``write(dst, g)`` overwrites ``dst`` with the scatter (zeros
    included); ``add_into(dst, g, scr)`` adds the scatter onto ``dst``,
    staging multi-round scatters in ``scr`` first so the addition onto
    ``dst`` happens as a single ``+=`` — exactly like the closure
    engine's ``_accumulate(full)``.
    """

    __slots__ = ("idx", "kind", "rounds")

    def __init__(self, idx, out_shape: Tuple[int, ...], g_ndim: int) -> None:
        self.idx = idx
        self.rounds: List[Tuple[np.ndarray, np.ndarray]] = []
        if not _int1d(idx):
            self.kind = "generic"
        elif g_ndim == 1:
            self.kind = "bincount"  # bitwise == np.add.at for 1-D weights
        elif idx.size == 0 or np.unique(idx).size == idx.size:
            self.kind = "dupfree"
        else:
            rounds = _occurrence_rounds(idx)
            if len(rounds) <= _MAX_SCATTER_ROUNDS:
                self.kind = "rounds"
                self.rounds = rounds
            else:
                self.kind = "generic"

    @property
    def needs_scratch(self) -> bool:
        return self.kind in ("generic", "rounds")

    def write(self, dst: np.ndarray, g: np.ndarray) -> None:
        kind = self.kind
        if kind == "bincount":
            dst[...] = np.bincount(self.idx, weights=g, minlength=dst.shape[0])
        elif kind == "dupfree":
            dst.fill(0.0)
            if self.idx.size:
                dst[self.idx] = g
        elif kind == "rounds":
            dst.fill(0.0)
            sel0, tgt0 = self.rounds[0]
            dst[tgt0] = g[sel0]
            for sel, tgt in self.rounds[1:]:
                dst[tgt] += g[sel]
        else:
            dst.fill(0.0)
            np.add.at(dst, self.idx, g)

    def add_into(self, dst: np.ndarray, g: np.ndarray, scr: Optional[np.ndarray]) -> None:
        kind = self.kind
        if kind == "bincount":
            dst += np.bincount(self.idx, weights=g, minlength=dst.shape[0])
        elif kind == "dupfree":
            if self.idx.size:
                dst[self.idx] += g
        else:
            self.write(scr, g)
            dst += scr


# ----------------------------------------------------------------------
# The compiled tape
# ----------------------------------------------------------------------
class Tape:
    """A compiled forward/adjoint program over pooled, preallocated buffers.

    Built by :func:`compile_tape`; replay with :meth:`run_forward` /
    :meth:`run_backward`.  One instance is single-threaded and reuses
    its buffers across calls — callers who keep results must copy them
    (:meth:`grad` already copies).
    """

    def __init__(
        self,
        values: List[Optional[np.ndarray]],
        fwd: List[Callable[[], None]],
        bwd: List[Callable[[], None]],
        input_specs: List[Tuple[str, int, Tensor]],
        input_slots: Dict[str, Optional[int]],
        output_slots: Dict[str, int],
        prefix: Dict[str, int],
        root_slot: int,
        grad_bufs: Dict[str, Optional[np.ndarray]],
        fwd_ops: List[str],
        bwd_ops: List[str],
        stats: Dict[str, int],
    ) -> None:
        self._values = values
        self._fwd = fwd
        self._bwd = bwd
        self._input_specs = input_specs
        self._input_slots = input_slots
        self._output_slots = output_slots
        self._prefix = prefix
        self._root = root_slot
        self._grad_bufs = grad_bufs
        #: Op name per forward/backward instruction (profiling aid).
        self.fwd_ops = fwd_ops
        self.bwd_ops = bwd_ops
        #: Compile-time statistics (instruction/buffer/alias counts).
        self.stats = stats

    # -- introspection -------------------------------------------------
    @property
    def n_instructions(self) -> int:
        return len(self._fwd)

    @property
    def n_bwd_instructions(self) -> int:
        return len(self._bwd)

    @property
    def n_slots(self) -> int:
        return len(self._values)

    @property
    def input_names(self) -> List[str]:
        return list(self._input_slots)

    def prefix_length(self, name: str) -> int:
        """Number of forward instructions needed to compute output ``name``."""
        return self._prefix[name]

    # -- replay --------------------------------------------------------
    def run_forward(
        self,
        overrides: Optional[Dict[str, np.ndarray]] = None,
        upto: Optional[str] = None,
        start: int = 0,
    ) -> None:
        """Replay the forward pass with live input values.

        ``overrides`` maps input names to arrays; inputs not overridden
        read the bound tensor's current ``.data`` (so rebinding a
        parameter via ``load_state_dict`` is picked up automatically).
        ``upto`` stops after the instructions needed for that output;
        ``start`` skips a prefix whose buffer state is already valid —
        the caller owns that invariant (see ``CompiledObjective``).
        """
        vals = self._values
        for name, slot, tensor in self._input_specs:
            data = None if overrides is None else overrides.get(name)
            vals[slot] = tensor.data if data is None else data
        stop = len(self._fwd) if upto is None else self._prefix[upto]
        for f in self._fwd[start:stop]:
            f()

    def value(self, name: str) -> np.ndarray:
        """Output array for ``name`` — a live buffer view, copy to keep."""
        return self._values[self._output_slots[name]]

    def root_value(self) -> float:
        return float(self._values[self._root].reshape(()))

    def run_backward(self) -> None:
        """Adjoint replay seeded at the root (must follow run_forward).

        The program is guard-free: the first write to every adjoint
        buffer is a full overwrite, so replay starts from clean state
        by construction — an interrupted previous backward cannot leak
        stale adjoints into this one.
        """
        for fn in self._bwd:
            fn()

    def grad(self, name: str) -> Optional[np.ndarray]:
        """Copy of the adjoint accumulated for input ``name``.

        ``None`` when no gradient reached it — same contract as
        ``Tensor.grad`` after ``backward()``.
        """
        buf = self._grad_bufs.get(name)
        if buf is None:
            return None
        return np.array(buf, copy=True)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class _Pool:
    """Shape-keyed free list of float64 buffers."""

    def __init__(self) -> None:
        self._free: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        self.allocated = 0
        self.reused = 0

    def take(self, shape: Tuple[int, ...]) -> np.ndarray:
        lst = self._free.get(shape)
        if lst:
            self.reused += 1
            return lst.pop()
        self.allocated += 1
        return np.empty(shape)

    def give(self, buf: np.ndarray) -> None:
        self._free.setdefault(buf.shape, []).append(buf)


def _ctx_key(ctx):
    """Hashable identity key for an op's recorded parameters."""
    if isinstance(ctx, np.ndarray):
        return ("arr", id(ctx))
    if isinstance(ctx, tuple):
        return tuple(_ctx_key(c) for c in ctx)
    if isinstance(ctx, (int, float, str, bool, type(None), slice)):
        return ctx
    return ("obj", id(ctx))


def compile_tape(
    root: Tensor,
    inputs: Dict[str, Tensor],
    outputs: Optional[Dict[str, Tensor]] = None,
    grad_targets: Optional[Sequence[str]] = None,
) -> Tape:
    """Lift the closure graph under ``root`` into a :class:`Tape`.

    ``inputs`` binds leaf tensors (by object identity) to named slots
    whose values are read live at every replay; gradient-carrying
    inputs get adjoints readable via :meth:`Tape.grad`.  ``outputs``
    names interior values to expose (each also records a forward prefix
    length so it can be computed without running the full tape).
    ``root`` is the scalar the backward pass seeds with ones.

    ``grad_targets`` names the inputs whose gradients the caller will
    read (default: every gradient-carrying input).  The adjoint program
    is pruned to the rules on a root -> target path — bitwise-safe for
    the surviving targets because every consumer of a reached node is
    itself reached, so no contribution to a needed adjoint is ever
    dropped; ``grad`` on a non-target input returns ``None``.
    """
    if not isinstance(root, Tensor) or not root.requires_grad:
        raise TapeUnsupported("tape root must be a Tensor with requires_grad=True")
    if root.data.size != 1:
        raise TapeUnsupported("tape root must be a scalar")
    outputs = dict(outputs or {})
    roots: List[Tuple[str, Tensor]] = [(n, t) for n, t in outputs.items()]
    roots.append(("__root__", root))

    input_names: Dict[int, str] = {}
    for name, t in inputs.items():
        if not isinstance(t, Tensor):
            raise TapeUnsupported(f"input {name!r} is not a Tensor")
        if id(t) in input_names:
            raise TapeUnsupported(f"tensor bound to two input names ({name!r})")
        input_names[id(t)] = name

    # ---- phase 1: collect every reachable node, parents-first ----
    post: List[Tensor] = []
    marks: List[int] = []  # node count after traversing each root
    visited: Set[int] = set()
    for _, r in roots:
        stack: List[Tuple[Tensor, bool]] = [(r, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                post.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))
        marks.append(len(post))

    for node in post:
        if node._parents and node._op not in _KNOWN_OPS:
            raise TapeUnsupported(f"op {node._op!r} has no tape rule")
        nid = id(node)
        if nid in input_names and node._parents:
            raise TapeUnsupported(f"input {input_names[nid]!r} is not a leaf tensor")

    # ---- phase 2: adjoint pruning (root -> grad-target paths) ----
    if grad_targets is None:
        target_ids = {id(t) for t in inputs.values() if t.requires_grad}
    else:
        unknown = [n for n in grad_targets if n not in inputs]
        if unknown:
            raise TapeUnsupported(f"grad targets {unknown} are not inputs")
        target_ids = {id(inputs[n]) for n in grad_targets}
    reach: Set[int] = set()
    for node in post:  # parents precede children, so one pass suffices
        if node.requires_grad and (
            id(node) in target_ids or any(id(p) in reach for p in node._parents)
        ):
            reach.add(id(node))

    # ---- phase 3: backward rule order (replicate Tensor.backward) ----
    border: List[Tensor] = []
    bvisited: Set[int] = set()
    bstack: List[Tuple[Tensor, bool]] = [(root, False)]
    while bstack:
        node, processed = bstack.pop()
        if processed:
            border.append(node)
            continue
        if id(node) in bvisited:
            continue
        bvisited.add(id(node))
        bstack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in bvisited:
                bstack.append((parent, False))
    exec_nodes = list(reversed(border))

    # ---- phase 4: static contribution plan + adjoint buffers ----
    # count mirrors the closure engine's ``node.grad is not None`` guard
    # and first-write-copies semantics; both are structural, never
    # data-dependent, so the whole schedule is resolved here.
    plans: List[Tuple[Tensor, List[Tuple[int, Tensor, str, bool]]]] = []
    adj_buf: Dict[int, np.ndarray] = {}
    adj_pool = _Pool()
    adj_owned: Dict[int, np.ndarray] = {}
    alias_blocked: Set[int] = set()  # adjoint memory shared via alias: never pooled
    needed_fwd: Set[int] = set()  # node ids whose forward value backward reads
    n_alias = 0
    count: Dict[int, int] = {}

    def _concat_slicers(node: Tensor) -> List[Tuple[slice, ...]]:
        axis = node._ctx
        sizes = [p.data.shape[axis] for p in node._parents]
        offsets = np.cumsum([0] + sizes)
        out = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * node.data.ndim
            slicer[axis] = slice(int(start), int(stop))
            out.append(tuple(slicer))
        return out

    if id(root) in reach:
        root_adj = np.empty(root.data.shape)
        adj_buf[id(root)] = root_adj
        count[id(root)] = 1
        for node in exec_nodes:
            nid = id(node)
            if nid not in reach or count.get(nid, 0) == 0 or node._backward is None:
                continue
            op = node._op
            g = adj_buf[nid]
            plist: List[Tuple[int, Tensor, str, bool]] = []
            slicers = _concat_slicers(node) if op == "concat" else None
            for side, p in enumerate(node._parents):
                pid = id(p)
                if pid not in reach:
                    continue
                first = count.get(pid, 0) == 0
                count[pid] = count.get(pid, 0) + 1
                aliased = False
                if first:
                    view: Optional[np.ndarray] = None
                    if op == "add" and p.data.shape == node.data.shape:
                        view = g
                    elif op == "sub" and side == 0 and p.data.shape == node.data.shape:
                        view = g
                    elif op == "reshape":
                        v = g.reshape(p.data.shape)
                        if np.shares_memory(v, g):
                            view = v
                    elif op == "concat":
                        v = g[slicers[side]]
                        if v.flags["C_CONTIGUOUS"]:
                            view = v
                    if view is not None:
                        adj_buf[pid] = view
                        alias_blocked.add(nid)
                        alias_blocked.add(pid)
                        aliased = True
                        n_alias += 1
                    else:
                        buf = adj_pool.take(p.data.shape)
                        adj_buf[pid] = buf
                        adj_owned[pid] = buf
                plist.append((side, p, "init" if first else "acc", aliased))
                # Which forward values will this contribution read?
                if op == "mul" or op == "matmul":
                    needed_fwd.add(id(node._parents[1 - side]))
                elif op == "div":
                    needed_fwd.add(id(node._parents[1]))
                    if side == 1:
                        needed_fwd.add(id(node._parents[0]))
                elif op in ("pow", "log", "abs"):
                    needed_fwd.add(id(node._parents[0]))
                elif op in ("exp", "sqrt", "tanh", "sigmoid"):
                    needed_fwd.add(nid)
            if plist:
                plans.append((node, plist))
            owned = adj_owned.pop(nid, None)
            if owned is not None and nid not in alias_blocked:
                adj_pool.give(owned)

    # ---- phase 5a: forward analysis (CSE, views, liveness) ----
    rep: Dict[int, int] = {}  # node id -> representative node id (CSE)
    node_by_id: Dict[int, Tensor] = {id(n): n for n in post}
    kind: Dict[int, str] = {}  # input | const | op | view | cse
    dynamic: Set[int] = set()  # storage rebinds per run (inputs + views of them)
    owner: Dict[int, int] = {}  # node id -> id of node owning its storage
    last_read: Dict[int, int] = {}  # owner id -> last reading postorder pos
    cse_tab: Dict[tuple, int] = {}
    n_cse = 0

    def _rep(nid: int) -> int:
        return rep.get(nid, nid)

    for pos, node in enumerate(post):
        nid = id(node)
        if nid in input_names:
            kind[nid] = "input"
            dynamic.add(nid)
            owner[nid] = nid
            continue
        if not node._parents:
            kind[nid] = "const"
            owner[nid] = nid
            continue
        op = node._op
        if nid not in reach:
            key = (op, tuple(_rep(id(p)) for p in node._parents), _ctx_key(node._ctx))
            hit = cse_tab.get(key)
            if hit is not None:
                rep[nid] = hit
                kind[nid] = "cse"
                owner[nid] = owner[hit]
                n_cse += 1
                continue
            cse_tab[key] = nid
        if op in _VIEW_OPS:
            kind[nid] = "view"
            powner = owner[_rep(id(node._parents[0]))]
            owner[nid] = powner
            if powner in dynamic or _rep(id(node._parents[0])) in dynamic:
                dynamic.add(nid)
            last_read[owner[_rep(id(node._parents[0]))]] = pos
            continue
        kind[nid] = "op"
        owner[nid] = nid
        for p in node._parents:
            last_read[owner[_rep(id(p))]] = pos

    persistent: Set[int] = {owner[_rep(id(r))] for _, r in roots}
    persistent.update(owner[_rep(fid)] for fid in needed_fwd if fid in owner)

    # ---- phase 5b: forward emission (pooling + fast paths) ----
    slot_of: Dict[int, int] = {}
    values: List[Optional[np.ndarray]] = []
    fwd: List[Callable[[], None]] = []
    fwd_ops: List[str] = []
    instr_count_at: List[int] = []
    fwd_pool = _Pool()
    poolable: Dict[int, np.ndarray] = {}  # owner id -> released buffer
    input_specs: List[Tuple[str, int, Tensor]] = []
    packs: Dict[tuple, dict] = {}  # bilinear index packs
    aux: Dict[int, object] = {}  # node id -> masks/winners for backward rules

    def _new_slot(arr: Optional[np.ndarray]) -> int:
        values.append(arr)
        return len(values) - 1

    def _release_dead(node: Tensor, pos: int) -> None:
        for p in node._parents:
            o = owner[_rep(id(p))]
            if last_read.get(o) == pos and o not in persistent:
                buf = poolable.pop(o, None)
                if buf is not None:
                    fwd_pool.give(buf)

    def _alloc_out(node: Tensor, pos: int) -> np.ndarray:
        nid = id(node)
        inplace = node._op in _INPLACE_SAFE
        if inplace:
            _release_dead(node, pos)
        buf = fwd_pool.take(node.data.shape)
        if nid not in persistent:
            poolable[nid] = buf
        if not inplace:
            _release_dead(node, pos)
        return buf

    vals = values  # alias for closure brevity

    for pos, node in enumerate(post):
        nid = id(node)
        k = kind[nid]
        if k == "cse":
            slot_of[nid] = slot_of[rep[nid]]
            instr_count_at.append(len(fwd))
            continue
        if k == "input":
            slot = _new_slot(None)
            slot_of[nid] = slot
            input_specs.append((input_names[nid], slot, node))
            instr_count_at.append(len(fwd))
            continue
        if k == "const":
            slot_of[nid] = _new_slot(node.data)
            instr_count_at.append(len(fwd))
            continue
        if k == "view":
            a = slot_of[id(node._parents[0])]
            slot = _new_slot(None)
            slot_of[nid] = slot
            op = node._op
            shape, ctx = node.data.shape, node._ctx
            if nid in dynamic:
                if op == "reshape":
                    def f(vals=vals, slot=slot, a=a, shape=shape):
                        vals[slot] = vals[a].reshape(shape)
                elif op == "transpose":
                    def f(vals=vals, slot=slot, a=a):
                        vals[slot] = vals[a].T
                else:  # detached_squeeze
                    def f(vals=vals, slot=slot, a=a, axis=ctx):
                        x = vals[a]
                        vals[slot] = (
                            np.squeeze(x, axis=axis) if axis is not None else x.reshape(())
                        )
                fwd.append(f)
                fwd_ops.append(op)
            else:
                src = values[a]
                if op == "reshape":
                    v = src.reshape(shape)
                elif op == "transpose":
                    v = src.T
                else:
                    v = np.squeeze(src, axis=ctx) if ctx is not None else src.reshape(())
                if np.shares_memory(v, src):
                    values[slot] = v
                else:
                    # reshape of a non-contiguous view copies: recompute per run.
                    def f(vals=vals, slot=slot, a=a, shape=shape):
                        vals[slot] = vals[a].reshape(shape)
                    fwd.append(f)
                    fwd_ops.append(op)
            instr_count_at.append(len(fwd))
            continue

        # ---- real op ----
        op = node._op
        ctx = node._ctx
        ps = [slot_of[id(p)] for p in node._parents]
        shape = node.data.shape
        f = _emit_forward(node, op, ctx, ps, shape, vals, _alloc_out, pos, packs, slot_of, aux)
        slot_of[nid] = slot_of.get(nid, len(values) - 1)
        if f is not None:
            fwd.append(f)
            fwd_ops.append(op)
        instr_count_at.append(len(fwd))

    # ---- per-output forward prefixes ----
    prefix: Dict[str, int] = {}
    for (name, _), mark in zip(roots, marks):
        prefix[name] = instr_count_at[mark - 1] if mark else 0

    # ---- phase 6: backward emission ----
    bwd: List[Callable[[], None]] = []
    bwd_ops: List[str] = []
    scratch_tab: Dict[Tuple[Tuple[int, ...], int], np.ndarray] = {}

    def scratch(shape: Tuple[int, ...], i: int = 0) -> np.ndarray:
        key = (shape, i)
        buf = scratch_tab.get(key)
        if buf is None:
            buf = scratch_tab[key] = np.empty(shape)
        return buf

    if id(root) in reach:
        root_adj = adj_buf[id(root)]

        def seed(root_adj=root_adj):
            root_adj.fill(1.0)

        bwd.append(seed)
        bwd_ops.append("seed")
        for node, plist in plans:
            g = adj_buf[id(node)]
            for side, p, mode, aliased in plist:
                if aliased:
                    continue
                dst = adj_buf[id(p)]
                fn = _emit_contribution(
                    node, side, p, mode, g, dst, vals, slot_of, scratch, aux
                )
                bwd.append(fn)
                bwd_ops.append(node._op)

    input_slots: Dict[str, Optional[int]] = {
        name: slot_of.get(id(t)) for name, t in inputs.items()
    }
    output_slots = {name: slot_of[id(t)] for name, t in outputs.items()}
    grad_bufs: Dict[str, Optional[np.ndarray]] = {}
    for name, t in inputs.items():
        grad_bufs[name] = adj_buf.get(id(t)) if count.get(id(t), 0) > 0 else None

    stats = {
        "fwd_instructions": len(fwd),
        "bwd_instructions": len(bwd),
        "slots": len(values),
        "cse_hits": n_cse,
        "alias_contributions": n_alias,
        "fwd_buffers": fwd_pool.allocated,
        "fwd_buffer_reuses": fwd_pool.reused,
        "adj_buffers": adj_pool.allocated,
        "adj_buffer_reuses": adj_pool.reused,
    }

    return Tape(
        values=values,
        fwd=fwd,
        bwd=bwd,
        input_specs=input_specs,
        input_slots=input_slots,
        output_slots=output_slots,
        prefix=prefix,
        root_slot=slot_of[id(root)],
        grad_bufs=grad_bufs,
        fwd_ops=fwd_ops,
        bwd_ops=bwd_ops,
        stats=stats,
    )


# ----------------------------------------------------------------------
# Forward instruction emission
# ----------------------------------------------------------------------
def _emit_forward(
    node: Tensor,
    op: str,
    ctx,
    ps: List[int],
    shape: Tuple[int, ...],
    vals: List[Optional[np.ndarray]],
    alloc_out: Callable[[Tensor, int], np.ndarray],
    pos: int,
    packs: Dict[tuple, dict],
    slot_of: Dict[int, int],
    aux: Dict[int, object],
) -> Optional[Callable[[], None]]:
    """Emit one forward instruction; registers the node's slot in vals.

    Returns the callable, or ``None`` when the node needs no runtime
    instruction (shared bilinear pack members reuse the pack's work).
    """

    def out_slot(buf: np.ndarray) -> None:
        vals.append(buf)
        slot_of[id(node)] = len(vals) - 1

    if op in _BINARY_UFUNC:
        a, b = ps
        buf = alloc_out(node, pos)
        out_slot(buf)
        u = _BINARY_UFUNC[op]

        def f(u=u, vals=vals, a=a, b=b, buf=buf):
            u(vals[a], vals[b], out=buf)

        return f

    if op == "neg":
        (a,) = ps
        buf = alloc_out(node, pos)
        out_slot(buf)
        return lambda vals=vals, a=a, buf=buf: np.negative(vals[a], out=buf)

    if op == "pow":
        (a,) = ps
        buf = alloc_out(node, pos)
        out_slot(buf)
        return lambda vals=vals, a=a, buf=buf, k=ctx: np.power(vals[a], k, out=buf)

    if op in ("exp", "log", "sqrt", "abs", "tanh"):
        (a,) = ps
        buf = alloc_out(node, pos)
        out_slot(buf)
        u = {"exp": np.exp, "log": np.log, "sqrt": np.sqrt, "abs": np.abs, "tanh": np.tanh}[op]
        return lambda u=u, vals=vals, a=a, buf=buf: u(vals[a], out=buf)

    if op == "sigmoid":
        (a,) = ps
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf):
            # 1.0 / (1.0 + np.exp(-x)), fused in place.
            np.negative(vals[a], out=buf)
            np.exp(buf, out=buf)
            np.add(1.0, buf, out=buf)
            np.divide(1.0, buf, out=buf)

        return f

    if op == "relu":
        (a,) = ps
        mask = np.empty(shape, dtype=bool)
        aux[id(node)] = mask  # read by the backward rule
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, mask=mask):
            np.greater(vals[a], 0, out=mask)
            np.multiply(vals[a], mask, out=buf)

        return f

    if op == "leaky_relu":
        (a,) = ps
        slope = ctx
        mask = np.empty(shape, dtype=bool)
        scale = np.empty(shape)
        aux[id(node)] = scale
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, mask=mask, scale=scale, slope=slope):
            # scale == np.where(x > 0, 1.0, slope) element for element.
            np.greater(vals[a], 0, out=mask)
            scale.fill(slope)
            scale[mask] = 1.0
            np.multiply(vals[a], scale, out=buf)

        return f

    if op == "clip":
        (a,) = ps
        low, high = ctx
        mask = np.empty(shape, dtype=bool)
        aux[id(node)] = mask
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, mask=mask, low=low, high=high):
            x = vals[a]
            mask[...] = (x > low) & (x < high)
            np.clip(x, low, high, out=buf)

        return f

    if op == "sum":
        (a,) = ps
        axis, keepdims = ctx
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, axis=axis, keepdims=keepdims):
            np.sum(vals[a], axis=axis, keepdims=keepdims, out=buf)

        return f

    if op == "matmul":
        a, b = ps
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, b=b, buf=buf):
            np.matmul(vals[a], vals[b], out=buf)

        return f

    if op == "getitem":
        (a,) = ps
        index = ctx
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, index=index):
            buf[...] = vals[a][index]

        return f

    if op == "concat":
        axis = ctx
        sizes = [p.data.shape[axis] for p in node._parents]
        offsets = np.cumsum([0] + sizes)
        buf = alloc_out(node, pos)
        out_slot(buf)
        pieces = []
        for slot_p, start, stop in zip(ps, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * node.data.ndim
            slicer[axis] = slice(int(start), int(stop))
            pieces.append((slot_p, buf[tuple(slicer)]))

        def f(vals=vals, pieces=pieces):
            for slot_p, view in pieces:
                np.copyto(view, vals[slot_p])

        return f

    if op == "segment_sum":
        (a,) = ps
        seg, _num = ctx
        seg = np.asarray(seg, dtype=np.int64)
        plan = _ScatterPlan(seg, shape, node._parents[0].data.ndim)
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, plan=plan):
            plan.write(buf, vals[a])

        return f

    if op == "segment_max":
        (a,) = ps
        seg, num_segments, fill = ctx
        seg = np.asarray(seg, dtype=np.int64)
        empty = ~np.isin(np.arange(num_segments), seg)
        winner = np.empty(node._parents[0].data.shape, dtype=bool)
        aux[id(node)] = (seg, winner)
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, seg=seg, empty=empty, fill=fill, winner=winner):
            x = vals[a]
            buf.fill(-np.inf)
            np.maximum.at(buf, seg, x)
            buf[empty] = fill
            np.equal(buf[seg], x, out=winner)

        return f

    # ---- detached recompute nodes (never carry gradient) ----
    if op == "detached_max":
        (a,) = ps
        axis = ctx
        buf = alloc_out(node, pos)
        out_slot(buf)

        def f(vals=vals, a=a, buf=buf, axis=axis):
            np.max(vals[a], axis=axis, keepdims=True, out=buf)

        return f

    if op == "detached_div":
        (a,) = ps
        buf = alloc_out(node, pos)
        out_slot(buf)
        return lambda vals=vals, a=a, buf=buf, d=ctx: np.divide(vals[a], d, out=buf)

    if op == "bilinear":
        cxs, cys = ps
        field, which = ctx
        nx, ny = field.shape
        key = (cxs, cys, id(field))
        pack = packs.get(key)
        buf = alloc_out(node, pos)
        out_slot(buf)
        n = shape[0] if shape else 1
        if pack is None:
            pack = packs[key] = {
                "ix": np.empty(n, dtype=np.int64),
                "iy": np.empty(n, dtype=np.int64),
                "ix2": np.empty(n, dtype=np.int64),
                "iy2": np.empty(n, dtype=np.int64),
                "f": np.empty(n),
            }
            ix, iy, ix2, iy2, ftmp = (
                pack["ix"], pack["iy"], pack["ix2"], pack["iy2"], pack["f"]
            )
            hx, hy = max(nx - 2, 0), max(ny - 2, 0)

            def index_fn(
                vals=vals, cxs=cxs, cys=cys, ix=ix, iy=iy, ix2=ix2, iy2=iy2,
                ftmp=ftmp, hx=hx, hy=hy, nx=nx, ny=ny,
            ):
                np.floor(vals[cxs], out=ftmp)
                np.clip(ftmp, 0, hx, out=ftmp)
                ix[...] = ftmp
                np.floor(vals[cys], out=ftmp)
                np.clip(ftmp, 0, hy, out=ftmp)
                iy[...] = ftmp
                np.minimum(ix + 1, nx - 1, out=ix2)
                np.minimum(iy + 1, ny - 1, out=iy2)

            pack["index_fn"] = index_fn
        ix, iy, ix2, iy2 = pack["ix"], pack["iy"], pack["ix2"], pack["iy2"]
        index_fn = pack.pop("index_fn", None)
        if which == "ixf":
            def gather(buf=buf, ix=ix):
                buf[...] = ix
        elif which == "iyf":
            def gather(buf=buf, iy=iy):
                buf[...] = iy
        elif which == "c00":
            def gather(buf=buf, field=field, ix=ix, iy=iy):
                buf[...] = field[ix, iy]
        elif which == "c10":
            def gather(buf=buf, field=field, ix2=ix2, iy=iy):
                buf[...] = field[ix2, iy]
        elif which == "c01":
            def gather(buf=buf, field=field, ix=ix, iy2=iy2):
                buf[...] = field[ix, iy2]
        else:  # c11
            def gather(buf=buf, field=field, ix2=ix2, iy2=iy2):
                buf[...] = field[ix2, iy2]
        if index_fn is not None:
            def f(index_fn=index_fn, gather=gather):
                index_fn()
                gather()
            return f
        return gather

    raise TapeUnsupported(f"op {op!r} has no tape rule")


# ----------------------------------------------------------------------
# Backward contribution emission
# ----------------------------------------------------------------------
def _store(dst: np.ndarray, mode: str) -> Callable[[np.ndarray], None]:
    """init: full overwrite; acc: add — Tensor._accumulate, compiled."""
    if mode == "init":
        def s(c, dst=dst):
            np.copyto(dst, c)
    else:
        def s(c, dst=dst):
            dst += c
    return s


def _emit_contribution(
    node: Tensor,
    side: int,
    p: Tensor,
    mode: str,
    g: np.ndarray,
    dst: np.ndarray,
    vals: List[Optional[np.ndarray]],
    slot_of: Dict[int, int],
    scratch: Callable[..., np.ndarray],
    aux: Dict[int, object],
) -> Callable[[], None]:
    """One adjoint contribution, transcribing the closure rule bit for bit.

    Every numpy call chain reproduces the corresponding closure in
    ``tensor.py``/``functional.py`` term for term (operand order,
    ``_unbroadcast`` placement) — the only licensed deviations are
    ``out=`` placement and ±0.0 signs, neither of which changes a
    value.  ``mode`` bakes the first-write/accumulate decision; alias
    contributions never reach this function.
    """
    op = node._op
    ctx = node._ctx
    shape = node.data.shape
    pshape = p.data.shape
    eq = pshape == shape
    init = mode == "init"
    store = _store(dst, mode)

    if op in ("add", "sub"):
        # Non-alias cases only: acc, shape-mismatch, or sub's right side.
        if op == "add" or side == 0:
            if eq:
                if init:
                    return lambda dst=dst, g=g: np.copyto(dst, g)
                return lambda dst=dst, g=g: np.add(dst, g, out=dst)
            return lambda store=store, g=g, pshape=pshape: store(_unbroadcast(g, pshape))
        if eq:
            if init:
                return lambda dst=dst, g=g: np.negative(g, out=dst)
            return lambda dst=dst, g=g: np.subtract(dst, g, out=dst)

        def f(store=store, g=g, pshape=pshape, scratch=scratch, shape=shape):
            s = scratch(shape)
            np.negative(g, out=s)
            store(_unbroadcast(s, pshape))

        return f

    if op == "mul":
        b = slot_of[id(node._parents[1 - side])]

        if eq and init:
            return lambda dst=dst, g=g, vals=vals, b=b: np.multiply(g, vals[b], out=dst)

        def f(store=store, g=g, vals=vals, b=b, scratch=scratch, shape=shape, pshape=pshape):
            s = scratch(shape)
            np.multiply(g, vals[b], out=s)
            store(_unbroadcast(s, pshape))

        return f

    if op == "div":
        if side == 0:
            b = slot_of[id(node._parents[1])]
            if eq and init:
                return lambda dst=dst, g=g, vals=vals, b=b: np.divide(g, vals[b], out=dst)

            def f(store=store, g=g, vals=vals, b=b, scratch=scratch, shape=shape, pshape=pshape):
                s = scratch(shape)
                np.divide(g, vals[b], out=s)
                store(_unbroadcast(s, pshape))

            return f
        a = slot_of[id(node._parents[0])]
        b = slot_of[id(node._parents[1])]

        def f(store=store, g=g, vals=vals, a=a, b=b, scratch=scratch, shape=shape, pshape=pshape):
            # -g * a / (b ** 2), with the closure's exact op sequence.
            s = scratch(shape)
            s2 = scratch(shape, 1)
            np.negative(g, out=s)
            np.multiply(s, vals[a], out=s)
            np.power(vals[b], 2, out=s2)
            np.divide(s, s2, out=s)
            store(_unbroadcast(s, pshape))

        return f

    if op == "neg":
        if init:
            return lambda dst=dst, g=g: np.negative(g, out=dst)
        return lambda dst=dst, g=g: np.subtract(dst, g, out=dst)

    if op == "pow":
        a = slot_of[id(p)]
        k = ctx

        def f(store=store, g=g, vals=vals, a=a, k=k, scratch=scratch, shape=shape, dst=dst, init=init):
            s = scratch(shape)
            s2 = scratch(shape, 1)
            np.multiply(g, k, out=s)
            np.power(vals[a], k - 1, out=s2)
            if init:
                np.multiply(s, s2, out=dst)
            else:
                np.multiply(s, s2, out=s)
                dst += s

        return f

    if op in ("exp", "sqrt", "tanh", "sigmoid"):
        o = slot_of[id(node)]  # own forward output

        if op == "exp":
            if init:
                return lambda dst=dst, g=g, vals=vals, o=o: np.multiply(g, vals[o], out=dst)

            def f(dst=dst, g=g, vals=vals, o=o, scratch=scratch, shape=shape):
                s = scratch(shape)
                np.multiply(g, vals[o], out=s)
                dst += s

            return f
        if op == "sqrt":

            def f(dst=dst, g=g, vals=vals, o=o, scratch=scratch, shape=shape, init=init):
                # g * 0.5 / out
                s = scratch(shape)
                np.multiply(g, 0.5, out=s)
                if init:
                    np.divide(s, vals[o], out=dst)
                else:
                    np.divide(s, vals[o], out=s)
                    dst += s

            return f
        if op == "tanh":

            def f(dst=dst, g=g, vals=vals, o=o, scratch=scratch, shape=shape, init=init):
                # g * (1.0 - out ** 2)
                s = scratch(shape)
                np.power(vals[o], 2, out=s)
                np.subtract(1.0, s, out=s)
                if init:
                    np.multiply(g, s, out=dst)
                else:
                    np.multiply(g, s, out=s)
                    dst += s

            return f

        def f(dst=dst, g=g, vals=vals, o=o, scratch=scratch, shape=shape, init=init):
            # g * out * (1.0 - out)
            s = scratch(shape)
            s2 = scratch(shape, 1)
            np.multiply(g, vals[o], out=s)
            np.subtract(1.0, vals[o], out=s2)
            if init:
                np.multiply(s, s2, out=dst)
            else:
                np.multiply(s, s2, out=s)
                dst += s

        return f

    if op == "log":
        a = slot_of[id(p)]
        if init:
            return lambda dst=dst, g=g, vals=vals, a=a: np.divide(g, vals[a], out=dst)

        def f(dst=dst, g=g, vals=vals, a=a, scratch=scratch, shape=shape):
            s = scratch(shape)
            np.divide(g, vals[a], out=s)
            dst += s

        return f

    if op == "abs":
        a = slot_of[id(p)]

        def f(dst=dst, g=g, vals=vals, a=a, scratch=scratch, shape=shape, init=init):
            s = scratch(shape)
            np.sign(vals[a], out=s)
            if init:
                np.multiply(g, s, out=dst)
            else:
                np.multiply(g, s, out=s)
                dst += s

        return f

    if op in ("relu", "clip", "leaky_relu"):
        mask = aux[id(node)]  # bool mask / float scale from the forward

        if init:
            return lambda dst=dst, g=g, mask=mask: np.multiply(g, mask, out=dst)

        def f(dst=dst, g=g, mask=mask, scratch=scratch, shape=shape):
            s = scratch(shape)
            np.multiply(g, mask, out=s)
            dst += s

        return f

    if op == "sum":
        axis, keepdims = ctx
        ge = g
        if axis is not None and not keepdims:
            ge = np.expand_dims(g, axis)
        bview = np.broadcast_to(ge, pshape)
        if init:
            return lambda dst=dst, bview=bview: np.copyto(dst, bview)
        return lambda dst=dst, bview=bview: np.add(dst, bview, out=dst)

    if op == "matmul":
        other = slot_of[id(node._parents[1 - side])]
        if side == 0:
            if init:
                return lambda dst=dst, g=g, vals=vals, b=other: np.matmul(
                    g, vals[b].T, out=dst
                )

            def f(dst=dst, g=g, vals=vals, b=other, scratch=scratch, pshape=pshape):
                s = scratch(pshape)
                np.matmul(g, vals[b].T, out=s)
                dst += s

            return f
        if init:
            return lambda dst=dst, g=g, vals=vals, a=other: np.matmul(
                vals[a].T, g, out=dst
            )

        def f(dst=dst, g=g, vals=vals, a=other, scratch=scratch, pshape=pshape):
            s = scratch(pshape)
            np.matmul(vals[a].T, g, out=s)
            dst += s

        return f

    if op == "reshape":
        gv = g.reshape(pshape)  # alias handled upstream; this is the copy case
        if init:
            return lambda dst=dst, gv=gv: np.copyto(dst, gv)
        return lambda dst=dst, gv=gv: np.add(dst, gv, out=dst)

    if op == "transpose":
        gv = g.T
        if init:
            return lambda dst=dst, gv=gv: np.copyto(dst, gv)

        def f(dst=dst, gv=gv):
            dst += gv

        return f

    if op == "concat":
        axis = ctx
        sizes = [q.data.shape[axis] for q in node._parents]
        offsets = np.cumsum([0] + sizes)
        slicer = [slice(None)] * node.data.ndim
        slicer[axis] = slice(int(offsets[side]), int(offsets[side + 1]))
        gv = g[tuple(slicer)]
        if init:
            return lambda dst=dst, gv=gv: np.copyto(dst, gv)

        def f(dst=dst, gv=gv):
            dst += gv

        return f

    if op == "getitem":
        index = ctx
        plan = _ScatterPlan(
            index if isinstance(index, np.ndarray) else index,
            pshape,
            g.ndim,
        )
        if init:
            return lambda plan=plan, dst=dst, g=g: plan.write(dst, g)
        scr = scratch(pshape, 7) if plan.needs_scratch else None
        return lambda plan=plan, dst=dst, g=g, scr=scr: plan.add_into(dst, g, scr)

    if op == "segment_sum":
        seg, _num = ctx
        seg = np.asarray(seg, dtype=np.int64)
        if init:
            def f(dst=dst, g=g, seg=seg):
                dst[...] = g[seg]
        else:
            def f(dst=dst, g=g, seg=seg):
                dst += g[seg]
        return f

    if op == "segment_max":
        seg, winner = aux[id(node)]

        def f(store=store, g=g, seg=seg, winner=winner, shape=shape):
            contrib = np.where(winner, g[seg], 0.0)
            tie_counts = np.zeros(shape, dtype=np.float64)
            np.add.at(tie_counts, seg, winner.astype(np.float64))
            tie_counts = np.maximum(tie_counts, 1.0)
            store(contrib / tie_counts[seg])

        return f

    raise TapeUnsupported(f"op {op!r} has no backward tape rule")
