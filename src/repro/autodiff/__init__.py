"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage replaces PyTorch for this reproduction.  It provides a
``Tensor`` type with a dynamic computation graph, a functional layer with
the primitives message-passing GNNs need (``gather``, ``segment_sum``,
``logsumexp``), small neural-network building blocks and the optimizers
used by both model training and the TSteiner refinement loop.

Only the features the paper's pipeline exercises are implemented, but
those are implemented completely: broadcasting, reduction over axes,
fancy row indexing with repeated indices (scatter-add on backward) and
gradient accumulation through arbitrary DAGs.
"""

from repro.autodiff.tensor import Tensor, no_grad, tensor
from repro.autodiff import functional
from repro.autodiff import nn
from repro.autodiff import optim
from repro.autodiff import init

__all__ = ["Tensor", "tensor", "no_grad", "functional", "nn", "optim", "init"]
