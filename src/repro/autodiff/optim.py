"""Optimizers.

Two families live here:

* :class:`SGD` and :class:`Adam` — standard optimizers used to *train*
  the GNN timing evaluator.
* :class:`PaperSO` — the stochastic optimizer of TSteiner's Eq. (7),
  which uses *per-step* first/second moment estimates
  ``m = (1-beta1)*g`` and ``v = (1-beta2)*g*g`` (no accumulation across
  iterations, exactly as the equation is written in the paper), used to
  move Steiner points.  :class:`AccumulatingSO` is the conventional
  Adam-style accumulated variant provided for the ablation study.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba), for evaluator training."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> dict:
        """Moment/step state for checkpointing (parameter-order keyed)."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (same param order)."""
        if len(state["m"]) != len(self.params) or len(state["v"]) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} moment arrays for "
                f"{len(self.params)} parameters"
            )
        self._t = int(state["t"])
        self._m = [np.array(m, dtype=np.float64, copy=True) for m in state["m"]]
        self._v = [np.array(v, dtype=np.float64, copy=True) for v in state["v"]]


class PaperSO:
    """The paper's stochastic optimizer (Eq. (7)) over coordinate arrays.

    Operates on raw numpy coordinate arrays rather than ``Tensor``
    parameters because the refinement loop manages accept/revert state
    itself.  Each call computes per-step moments from the supplied
    gradient and returns the updated coordinates:

    ``m = (1 - beta1) * g``
    ``v = (1 - beta2) * g * g``
    ``x' = x - theta * m / (sqrt(v) + eps)``

    which reduces to a sign-like step of magnitude
    ``theta * (1-beta1)/sqrt(1-beta2)`` wherever the gradient is
    non-zero — the reason a per-design adaptive ``theta`` matters.
    """

    def __init__(self, theta: float, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.theta = theta
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def update(self, coords: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return refined coordinates; does not mutate the input."""
        g = np.asarray(grad, dtype=np.float64)
        m = (1.0 - self.beta1) * g
        v = (1.0 - self.beta2) * (g * g)
        return np.asarray(coords, dtype=np.float64) - self.theta * m / (np.sqrt(v) + self.eps)


class AccumulatingSO:
    """Adam-style accumulated-moment variant of :class:`PaperSO`.

    Included for the ablation bench: the paper's per-step form reacts
    instantly to gradient sign flips after an accept/revert, while the
    accumulated form carries momentum across reverts.
    """

    def __init__(self, theta: float, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.theta = theta
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._t = 0

    def update(self, coords: np.ndarray, grad: np.ndarray) -> np.ndarray:
        g = np.asarray(grad, dtype=np.float64)
        if self._m is None:
            self._m = np.zeros_like(g)
            self._v = np.zeros_like(g)
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * g
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * g * g
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return np.asarray(coords, dtype=np.float64) - self.theta * m_hat / (np.sqrt(v_hat) + self.eps)
