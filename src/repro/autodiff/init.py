"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that
model construction is fully deterministic given a seed — the experiment
harness relies on this for reproducible Table III numbers.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a 2-D weight."""
    fan_in, fan_out = shape
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suited to relu-family activations."""
    fan_in = shape[0]
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def small_normal(shape, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)
