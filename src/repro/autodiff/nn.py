"""Minimal neural-network module system on top of the autodiff tensor.

Mirrors the small subset of ``torch.nn`` the TSteiner evaluator needs:
``Linear``, ``LayerNorm``, ``MLP`` with configurable activations, and a
``Module`` base class with recursive parameter collection and state-dict
save/load for model checkpointing between training and refinement runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import init as _init
from repro.autodiff.tensor import Tensor

Activation = Callable[[Tensor], Tensor]

ACTIVATIONS: Dict[str, Activation] = {
    "relu": lambda x: x.relu(),
    "leaky_relu": lambda x: x.leaky_relu(0.1),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
}


class Module:
    """Base class; subclasses register parameters and submodules as attributes."""

    def parameters(self) -> List[Tensor]:
        """All trainable tensors, depth-first, deterministic order."""
        params: List[Tensor] = []
        for _, value in self._children():
            if isinstance(value, Tensor):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, value in self._children():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Tensor):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)

    def _children(self) -> Iterator[Tuple[str, object]]:
        for name in sorted(vars(self)):
            value = vars(self)[name]
            if isinstance(value, (Tensor, Module)):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, (Tensor, Module)):
                        yield f"{name}[{i}]", item

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            p.data = np.array(state[name], dtype=np.float64, copy=True)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_init.xavier_uniform((in_features, out_features), rng), requires_grad=True)
        self.bias = Tensor(_init.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        self.features = features
        self.eps = eps
        self.gamma = Tensor(np.ones(features), requires_grad=True)
        self.beta = Tensor(np.zeros(features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class MLP(Module):
    """Multi-layer perceptron with a hidden activation on every layer but the last."""

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        activation: str = "leaky_relu",
        final_activation: str = "identity",
        layer_norm: bool = False,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.layers: List[Linear] = [
            Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)
        ]
        self.norms: List[LayerNorm] = (
            [LayerNorm(dims[i + 1]) for i in range(len(dims) - 2)] if layer_norm else []
        )
        self.activation = ACTIVATIONS[activation]
        self.final_activation = ACTIVATIONS[final_activation]
        self._use_norm = layer_norm

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers[:-1]):
            x = layer(x)
            if self._use_norm:
                x = self.norms[i](x)
            x = self.activation(x)
        return self.final_activation(self.layers[-1](x))


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for m in self.modules:
            x = m(x)
        return x
