"""Functional building blocks for graph neural networks.

The two primitives every message-passing layer reduces to are

* :func:`gather` — read per-edge source features ``x[src]``; and
* :func:`segment_sum` / :func:`segment_mean` / :func:`segment_max` —
  scatter-reduce per-edge messages onto destination nodes.

On the backward pass the two are adjoint: the gradient of a gather is a
scatter-add and vice versa, which is what makes Steiner-point position
gradients flow from endpoint arrival-time predictions all the way back
through three rounds of broadcast/reduce message passing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff.tensor import Tensor, concatenate, stack, where  # noqa: F401 (re-export)


def gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows of ``x`` by integer ``index`` (repeats allowed)."""
    idx = np.asarray(index, dtype=np.int64)
    return x[idx]


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    Empty segments produce zero rows, which is the correct neutral
    element for nodes with no incoming messages.
    """
    seg = np.asarray(segment_ids, dtype=np.int64)
    if seg.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids has {seg.shape[0]} entries for {x.shape[0]} rows"
        )
    out_shape = (num_segments,) + x.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, seg, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[seg])

    return Tensor._make(out_data, (x,), backward, "segment_sum", ctx=(seg, num_segments))


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``x`` per segment; empty segments stay zero."""
    seg = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(seg, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    total = segment_sum(x, seg, num_segments)
    return total * Tensor(1.0 / counts.reshape((num_segments,) + (1,) * (x.ndim - 1)))


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int, fill: float = 0.0) -> Tensor:
    """Max-reduce rows of ``x`` per segment.

    Gradient is routed to a single argmax row per segment (first
    occurrence), the standard subgradient choice.  Empty segments take
    ``fill`` and receive no gradient.
    """
    seg = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + x.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, seg, x.data)
    empty = ~np.isin(np.arange(num_segments), seg)
    out_data[empty] = fill

    # Identify one winning row per (segment, feature) slot for backward.
    winner = out_data[seg] == x.data

    def backward(grad: np.ndarray) -> None:
        contrib = np.where(winner, grad[seg], 0.0)
        # If several rows tie, split evenly to keep gradcheck happy.
        tie_counts = np.zeros(out_shape, dtype=np.float64)
        np.add.at(tie_counts, seg, winner.astype(np.float64))
        tie_counts = np.maximum(tie_counts, 1.0)
        x._accumulate(contrib / tie_counts[seg])

    return Tensor._make(out_data, (x,), backward, "segment_max", ctx=(seg, num_segments, fill))


def _detached(data: np.ndarray, parents, op: str, ctx=None) -> Tensor:
    """Non-differentiable node that keeps parent links for the compiler.

    The closure engine treats these exactly like the plain ``Tensor``
    constants they replace: ``requires_grad`` is False, so ``backward``
    never pushes them on its DFS stack and no gradient flows through.
    The tape compiler, however, sees the recorded parents and *op* and
    re-computes ``data`` from live parent values on every replay — which
    is how data-dependent quantities (log-sum-exp shifts, congestion
    cell indices) stay correct when the input coordinates change.
    """
    return Tensor(np.asarray(data, dtype=np.float64), _parents=tuple(parents), _op=op, _ctx=ctx)


def detached_max(x: Tensor, axis: Optional[int] = None) -> Tensor:
    """``np.max(x.data, axis, keepdims=True)`` as a recompute node."""
    return _detached(np.max(x.data, axis=axis, keepdims=True), (x,), "detached_max", ctx=axis)


def detached_div(x: Tensor, divisor: float) -> Tensor:
    """``x.data / divisor`` with no gradient flow (recomputed on replay).

    Kept as a true division — ``x / d`` and ``x * (1 / d)`` differ in
    the last ulp for some operands, and tape parity is bitwise.
    """
    return _detached(x.data / divisor, (x,), "detached_div", ctx=float(divisor))


def detached_squeeze(x: Tensor, axis: Optional[int] = None) -> Tensor:
    """Squeeze ``axis`` (or reshape to scalar) with no gradient flow."""
    data = np.squeeze(x.data, axis=axis) if axis is not None else x.data.reshape(())
    return _detached(data, (x,), "detached_squeeze", ctx=axis)


def bilinear_parts(field: np.ndarray, cx: Tensor, cy: Tensor):
    """Data-dependent pieces of a bilinear field sample at (cx, cy).

    ``cx``/``cy`` are continuous cell coordinates.  Returns the floor
    cell corners as float tensors (``ixf``, ``iyf``) and the four
    gathered corner values (``c00``, ``c10``, ``c01``, ``c11``) — all
    detached recompute nodes: cell indices are piecewise constant in
    the positions, so no gradient flows through them, but a compiled
    tape re-derives them from the live coordinates each replay.
    """
    nx, ny = field.shape
    ix = np.clip(np.floor(cx.data).astype(np.int64), 0, max(nx - 2, 0))
    iy = np.clip(np.floor(cy.data).astype(np.int64), 0, max(ny - 2, 0))
    ix2 = np.minimum(ix + 1, nx - 1)
    iy2 = np.minimum(iy + 1, ny - 1)
    parents = (cx, cy)

    def node(data: np.ndarray, which: str) -> Tensor:
        return _detached(data, parents, "bilinear", ctx=(field, which))

    return (
        node(ix.astype(np.float64), "ixf"),
        node(iy.astype(np.float64), "iyf"),
        node(field[ix, iy], "c00"),
        node(field[ix2, iy], "c10"),
        node(field[ix, iy2], "c01"),
        node(field[ix2, iy2], "c11"),
    )


def logsumexp(x: Tensor, gamma: float = 1.0, axis: Optional[int] = None) -> Tensor:
    """Numerically-stable smoothed maximum, Eq. (5) of the paper.

    ``LSE_gamma(x) = gamma * log(sum(exp(x / gamma)))`` which upper
    bounds ``max(x)`` and converges to it as ``gamma -> 0``.

    The shift is the usual max-subtraction stabilizer.  It is data
    dependent but piecewise constant, so it carries no gradient; it is
    recorded as a detached recompute node so a compiled tape re-derives
    it from the live input instead of baking a stale constant.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    shift = detached_max(x, axis=axis)
    shifted = x * (1.0 / gamma) - detached_div(shift, gamma)
    summed = shifted.exp().sum(axis=axis)
    return summed.log() * gamma + detached_squeeze(shift, axis=axis)


def softmin_weights(values: np.ndarray, gamma: float) -> np.ndarray:
    """Non-differentiable helper: softmin weighting used in diagnostics."""
    v = np.asarray(values, dtype=np.float64)
    z = -(v - v.min()) / gamma
    w = np.exp(z)
    return w / w.sum()


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """Smooth approximation of relu; used for non-negative predictions.

    Uses the symmetric decomposition ``log(1+exp(s)) = s/2 + |s|/2 +
    log(1+exp(-|s|))``, which is numerically stable in both tails *and*
    has the exact gradient (sigmoid) at s = 0, where the naive
    max-based split returns a wrong subgradient.
    """
    scaled = x * beta
    stable = ((scaled.abs() * -1.0).exp() + 1.0).log()
    return (scaled * 0.5 + scaled.abs() * 0.5 + stable) * (1.0 / beta)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target_t).abs().mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss, robust to the long-tail arrival times of deep paths."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    abs_diff = diff.abs()
    quadratic = diff * diff * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
