"""GCell grid substrate shared by global routing and edge shifting."""

from repro.routegrid.grid import GCellGrid

__all__ = ["GCellGrid"]
