"""GCell routing grid with per-direction capacity accounting.

The grid follows the usual global-routing abstraction: the die is
tiled into square GCells; routing demand crosses GCell *edges*.
Horizontal wire crossing the boundary between cell (i, j) and
(i+1, j) consumes horizontal capacity ``cap_h[i, j]``; vertical wire
between (i, j) and (i, j+1) consumes ``cap_v[i, j]``.

Capacities aggregate the track counts of all layers in the matching
preferred direction, derated by a blockage factor representing pin
density and power straps (commercial grids are likewise derated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.pdk.technology import Technology


class GCellGrid:
    """Capacity/usage bookkeeping over the GCell tiling."""

    def __init__(
        self,
        die_width: float,
        die_height: float,
        technology: Technology,
        derate: float = 0.7,
    ) -> None:
        self.technology = technology
        self.gcell = technology.gcell_size
        self.nx = max(1, int(np.ceil(die_width / self.gcell)))
        self.ny = max(1, int(np.ceil(die_height / self.gcell)))
        h_tracks = sum(
            technology.tracks_per_gcell(l.index) for l in technology.horizontal_layers()
        )
        v_tracks = sum(
            technology.tracks_per_gcell(l.index) for l in technology.vertical_layers()
        )
        # cap_h[i, j]: capacity of the boundary between (i, j) and (i+1, j).
        self.cap_h = np.full((max(self.nx - 1, 1), self.ny), h_tracks * derate)
        self.cap_v = np.full((self.nx, max(self.ny - 1, 1)), v_tracks * derate)
        self.use_h = np.zeros_like(self.cap_h)
        self.use_v = np.zeros_like(self.cap_v)
        # History cost for negotiation-based rip-up-and-reroute.
        self.hist_h = np.zeros_like(self.cap_h)
        self.hist_v = np.zeros_like(self.cap_v)

    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> Tuple[int, int]:
        """GCell indices containing point (x, y)."""
        return (
            int(np.clip(x / self.gcell, 0, self.nx - 1)),
            int(np.clip(y / self.gcell, 0, self.ny - 1)),
        )

    def center(self, gx: int, gy: int) -> Tuple[float, float]:
        return ((gx + 0.5) * self.gcell, (gy + 0.5) * self.gcell)

    # ------------------------------------------------------------------
    # Edge-level accounting.  Edges are identified by (direction, i, j):
    # 'H' edge (i, j) spans cells (i, j)-(i+1, j).
    # ------------------------------------------------------------------
    def edge_cost(self, direction: str, i: int, j: int, overflow_penalty: float = 8.0) -> float:
        """Congestion-aware cost of crossing one GCell boundary."""
        if direction == "H":
            cap, use, hist = self.cap_h[i, j], self.use_h[i, j], self.hist_h[i, j]
        else:
            cap, use, hist = self.cap_v[i, j], self.use_v[i, j], self.hist_v[i, j]
        utilization = (use + 1.0) / max(cap, 1e-9)
        cost = 1.0 + hist
        if utilization > 1.0:
            cost += overflow_penalty * (utilization - 1.0) ** 2
        elif utilization > 0.7:
            cost += (utilization - 0.7) * 2.0
        return cost

    def add_usage(self, direction: str, i: int, j: int, amount: float = 1.0) -> None:
        if direction == "H":
            self.use_h[i, j] += amount
        else:
            self.use_v[i, j] += amount

    def bump_history(self, increment: float = 0.5) -> None:
        """Raise history cost on currently-overflowed edges (NCR style)."""
        over_h = self.use_h > self.cap_h
        over_v = self.use_v > self.cap_v
        self.hist_h[over_h] += increment
        self.hist_v[over_v] += increment

    # ------------------------------------------------------------------
    def horizontal_run(self, gy: int, gx1: int, gx2: int) -> Iterator[Tuple[str, int, int]]:
        """Edges crossed by a horizontal run at row gy from gx1 to gx2."""
        lo, hi = sorted((gx1, gx2))
        for i in range(lo, hi):
            yield ("H", i, gy)

    def vertical_run(self, gx: int, gy1: int, gy2: int) -> Iterator[Tuple[str, int, int]]:
        lo, hi = sorted((gy1, gy2))
        for j in range(lo, hi):
            yield ("V", gx, j)

    # ------------------------------------------------------------------
    def overflow(self) -> float:
        """Total overflow across all edges (0 when congestion-free)."""
        return float(
            np.maximum(self.use_h - self.cap_h, 0.0).sum()
            + np.maximum(self.use_v - self.cap_v, 0.0).sum()
        )

    def max_utilization(self) -> float:
        u_h = (self.use_h / np.maximum(self.cap_h, 1e-9)).max() if self.use_h.size else 0.0
        u_v = (self.use_v / np.maximum(self.cap_v, 1e-9)).max() if self.use_v.size else 0.0
        return float(max(u_h, u_v))

    def overflow_map(self) -> np.ndarray:
        """(nx, ny) per-GCell overflow heat map (for the DRV model)."""
        heat = np.zeros((self.nx, self.ny))
        over_h = np.maximum(self.use_h - self.cap_h, 0.0)
        over_v = np.maximum(self.use_v - self.cap_v, 0.0)
        if over_h.size:
            heat[: self.nx - 1, :] += over_h
            heat[1:, :] += over_h
        if over_v.size:
            heat[:, : self.ny - 1] += over_v
            heat[:, 1:] += over_v
        return heat

    def utilization_map(self) -> np.ndarray:
        """(nx, ny) per-GCell utilization (use/capacity, max over dirs).

        A smooth-ish congestion field: 0 in empty regions, ~1 at
        capacity, >1 where overflowed.  The timing evaluator samples it
        bilinearly as a differentiable feature of Steiner positions.
        """
        field = np.zeros((self.nx, self.ny))
        if self.use_h.size:
            u_h = self.use_h / np.maximum(self.cap_h, 1e-9)
            field[: self.nx - 1, :] = np.maximum(field[: self.nx - 1, :], u_h)
            field[1:, :] = np.maximum(field[1:, :], u_h)
        if self.use_v.size:
            u_v = self.use_v / np.maximum(self.cap_v, 1e-9)
            field[:, : self.ny - 1] = np.maximum(field[:, : self.ny - 1], u_v)
            field[:, 1:] = np.maximum(field[:, 1:], u_v)
        return field

    def reset_usage(self) -> None:
        self.use_h[:] = 0.0
        self.use_v[:] = 0.0
        self.hist_h[:] = 0.0
        self.hist_v[:] = 0.0
