"""Flow pipeline: placement -> Steiner -> [TSteiner] -> GR -> DR -> STA.

Each stage is timed with ``time.perf_counter`` so Table IV can report
the same runtime breakdown as the paper (TSteiner / global route /
detailed route).  The baseline arm and the TSteiner arm share identical
inputs: ``prepare_design`` is deterministic, and the TSteiner arm works
on a *copy* of the initial forest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.refine import RefinementConfig, RefinementResult
from repro.runtime import Budget, StageError
from repro.core.tsteiner import TSteiner
from repro.droute.detailed import DetailedRouter, DetailedRouterConfig
from repro.groute.layer_assign import assign_layers
from repro.groute.router import GlobalRouteResult, GlobalRouter, RouterConfig
from repro.netlist.benchmarks import BENCHMARKS, build_benchmark
from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.placement.placer import PlacementConfig, place
from repro.routegrid.grid import GCellGrid
from repro.sta.engine import STAEngine, TimingReport
from repro.sta.hold import HoldReport, run_hold_analysis

if TYPE_CHECKING:
    from repro.eco.driver import EcoResult
    from repro.mcmm.sta import ScenarioReport
from repro.steiner.edge_shifting import shift_edges
from repro.steiner.forest import SteinerForest, build_forest
from repro.timing_model.dataset import DesignSample, make_sample
from repro.timing_model.model import TimingEvaluator


@dataclass
class FlowResult:
    """Sign-off and routing-quality metrics of one flow run (Table II)."""

    name: str
    wns: float
    tns: float
    num_violations: int
    wirelength: float
    num_vias: int
    num_drvs: int
    runtimes: Dict[str, float] = field(default_factory=dict)
    overflow: float = 0.0
    refinement: Optional[RefinementResult] = None
    report: Optional[TimingReport] = None
    route_result: Optional[GlobalRouteResult] = None
    # MCMM: per-scenario + merged sign-off verdict when the flow ran
    # with a non-neutral scenario set; the top-level
    # wns/tns/num_violations then carry the *merged* metrics.
    scenario_report: Optional["ScenarioReport"] = None
    # Hold (min-delay) sign-off of the routed design; populated
    # whenever post-route STA succeeds.
    hold_report: Optional[HoldReport] = None
    # Closed-loop ECO (docs/ECO.md): populated when the flow ran with
    # ``eco=...``.  The ECO stage operates on a *clone* of the netlist
    # and forest (pre-route parasitics), so the flow-level routed
    # wns/tns above are untouched; ``eco.final`` carries the post-ECO
    # pre-route verdict.
    eco: Optional["EcoResult"] = None
    # Resilience: per-stage failures recorded by the guarded flow
    # (stage name -> "ExceptionType: message"); a result with entries
    # here is *partial* — unreachable metrics are NaN/zero.
    stage_errors: Dict[str, str] = field(default_factory=dict)
    timed_out: bool = False  # any stage wound down on an expired budget

    @property
    def total_runtime(self) -> float:
        return sum(self.runtimes.values())

    @property
    def partial(self) -> bool:
        return bool(self.stage_errors)


def prepare_design(
    name: str,
    scale: float = 1.0,
    edge_shift_passes: int = 1,
    placement_config: Optional[PlacementConfig] = None,
    forest_kernel: str = "flat",
) -> Tuple[Netlist, SteinerForest]:
    """Generate, place and Steinerize one named benchmark.

    Deterministic: repeated calls return byte-identical geometry, so
    baseline and TSteiner arms can be compared fairly.
    ``forest_kernel`` selects the construction implementation
    (``"flat"`` batched kernels or the per-net ``"reference"``; both
    are bitwise-equal, docs/PERFORMANCE.md).
    """
    netlist = build_benchmark(name, scale=scale)
    place(netlist, placement_config)
    forest = build_forest(netlist, kernel=forest_kernel)
    if edge_shift_passes > 0:
        shift_edges(forest, passes=edge_shift_passes)
    return netlist, forest


def run_routing_flow(
    netlist: Netlist,
    forest: SteinerForest,
    model: Optional[TimingEvaluator] = None,
    refinement_config: Optional[RefinementConfig] = None,
    router_config: Optional[RouterConfig] = None,
    droute_config: Optional[DetailedRouterConfig] = None,
    engine: Optional[STAEngine] = None,
    budget: Optional[Budget] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    strict: bool = False,
    timing_graph=None,
    telemetry=None,
    scenarios=None,
    eco=None,
) -> FlowResult:
    """Route and sign off one design; optionally run TSteiner first.

    The input ``forest`` is not mutated — the flow operates on a copy,
    so a single prepared design can feed both arms of Table II.

    ``timing_graph`` optionally hands TSteiner a prebuilt
    :class:`~repro.timing_model.graph.TimingGraph` for this design
    (see :meth:`TSteiner.optimize`); the experiment suite memoizes it
    per (design, seed) so repeated optimized runs skip the rebuild.

    Every stage runs guarded (docs/RESILIENCE.md): a failing stage is
    recorded in ``FlowResult.stage_errors`` and the flow continues with
    what it has — a crashed TSteiner falls back to the unrefined
    forest, a crashed STA returns routing metrics with NaN timing.
    ``strict=True`` restores fail-fast behaviour by re-raising the
    first failure as a :class:`~repro.runtime.errors.StageError`.
    ``budget`` is shared across refinement, global routing, detailed
    routing; stages past an expired budget degrade rather than hang.
    ``checkpoint_dir``/``resume`` enable refinement snapshots.
    ``telemetry`` records per-stage spans and ``stage_error`` events
    (docs/OBSERVABILITY.md); defaults to the process global.

    ``scenarios`` (a ``repro.mcmm.ScenarioSet``) switches refinement
    acceptance and the final sign-off to the MCMM merged verdict
    (docs/MCMM.md): ``FlowResult.scenario_report`` carries per-scenario
    metrics, and the top-level WNS/TNS become the merged ones.  ``None``
    or a one-element neutral set keeps today's single-scenario flow
    bitwise-unchanged.

    ``eco`` (a ``repro.eco.EcoConfig``) appends a guarded closed-loop
    ECO stage after sign-off: the driver runs on a *clone* of the
    netlist + refined forest under the same scenario set and its result
    lands in ``FlowResult.eco`` (docs/ECO.md).  Pre-route parasitics —
    the routed flow metrics above stay untouched.
    """
    tel = telemetry if telemetry is not None else get_telemetry()
    work = forest.copy()
    runtimes: Dict[str, float] = {}
    refinement: Optional[RefinementResult] = None
    stage_errors: Dict[str, str] = {}
    timed_out = False
    mcmm = scenarios is not None and not scenarios.is_single_neutral()

    def guard(stage: str, exc: Exception) -> None:
        if tel.enabled:
            tel.event(
                "stage_error",
                stage=stage,
                design=netlist.name,
                error=f"{type(exc).__name__}: {exc}",
                strict=strict,
            )
        if strict:
            raise StageError(stage, exc)
        stage_errors[stage] = f"{type(exc).__name__}: {exc}"

    if model is not None:
        t0 = time.perf_counter()
        with tel.span("flow.tsteiner", design=netlist.name):
            try:
                optimizer = TSteiner(model, refinement_config, scenarios=scenarios)
                ckpt = (
                    Path(checkpoint_dir) / f"refine-{netlist.name}.npz"
                    if checkpoint_dir is not None
                    else None
                )
                refinement = optimizer.optimize(
                    netlist,
                    work,
                    budget=budget,
                    checkpoint_path=ckpt,
                    resume=resume,
                    graph=timing_graph,
                    telemetry=tel,
                )
                timed_out = timed_out or refinement.timed_out
            except Exception as exc:
                # Degrade to the baseline arm: route the unrefined forest.
                guard("tsteiner", exc)
        runtimes["tsteiner"] = time.perf_counter() - t0

    route_result: Optional[GlobalRouteResult] = None
    grid = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
    t0 = time.perf_counter()
    with tel.span("flow.groute", design=netlist.name):
        try:
            router = GlobalRouter(grid, router_config)
            route_result = router.route(work, budget=budget)
            assign_layers(route_result, netlist.technology, grid.nx * grid.ny)
            timed_out = timed_out or route_result.timed_out
        except Exception as exc:
            guard("groute", exc)
    runtimes["groute"] = time.perf_counter() - t0

    detail = None
    if route_result is not None:
        t0 = time.perf_counter()
        with tel.span("flow.droute", design=netlist.name):
            try:
                droute = DetailedRouter(grid, droute_config)
                detail = droute.route(work, route_result, budget=budget)
                timed_out = timed_out or detail.timed_out
            except Exception as exc:
                guard("droute", exc)
        runtimes["droute"] = time.perf_counter() - t0
    else:
        stage_errors.setdefault("droute", "skipped: global routing failed")

    report = None
    scenario_report = None
    hold_report = None
    if route_result is not None:
        t0 = time.perf_counter()
        with tel.span("flow.sta", design=netlist.name):
            try:
                engine = engine or STAEngine(netlist)
                report = engine.run(work, route_result, utilization=grid.utilization_map())
                if mcmm:
                    from repro.mcmm.sta import ScenarioSTA

                    scenario_report = ScenarioSTA(
                        netlist, work, scenarios, engine=engine
                    ).run(route_result=route_result, utilization=grid.utilization_map())
                    if tel.enabled:
                        tel.event(
                            "mcmm_report",
                            design=netlist.name,
                            merged_wns=scenario_report.merged_wns,
                            merged_tns=scenario_report.merged_tns,
                            merged_violations=scenario_report.merged_violations,
                            scenarios=[
                                {
                                    "name": m.name,
                                    "check": m.check,
                                    "wns": m.wns,
                                    "tns": m.tns,
                                    "violations": m.num_violations,
                                }
                                for m in scenario_report.scenarios
                            ],
                        )
                if tel.enabled:
                    # Hold sign-off rides along when a trace is being
                    # recorded so `python -m repro report` can surface
                    # it (docs/OBSERVABILITY.md).
                    hold_report = run_hold_analysis(
                        engine, work, route_result,
                        utilization=grid.utilization_map(),
                    )
                    tel.event(
                        "hold_report",
                        design=netlist.name,
                        whs=hold_report.whs,
                        violations=hold_report.num_violations,
                        endpoints=len(hold_report.hold_slack),
                    )
            except Exception as exc:
                guard("sta", exc)
        runtimes["sta"] = time.perf_counter() - t0
    else:
        stage_errors.setdefault("sta", "skipped: global routing failed")

    eco_result = None
    if eco is not None:
        t0 = time.perf_counter()
        with tel.span("flow.eco", design=netlist.name):
            try:
                from repro.eco.driver import run_eco
                from repro.eco.ops import clone_state

                eco_netlist, eco_forest = clone_state(netlist, work)
                eco_result = run_eco(
                    eco_netlist,
                    eco_forest,
                    config=eco,
                    scenarios=scenarios,
                    budget=budget,
                )
                timed_out = timed_out or eco_result.timed_out
                if tel.enabled:
                    tel.event(
                        "eco_report",
                        design=netlist.name,
                        arm=eco_result.arm,
                        accepted=eco_result.num_accepted,
                        digest=eco_result.digest,
                        initial_wns=eco_result.initial.get("wns"),
                        initial_tns=eco_result.initial.get("tns"),
                        final_wns=eco_result.final.get("wns"),
                        final_tns=eco_result.final.get("tns"),
                        area_delta=eco_result.area_delta,
                    )
            except Exception as exc:
                guard("eco", exc)
        runtimes["eco"] = time.perf_counter() - t0

    nan = float("nan")
    if scenario_report is not None:
        top_wns = scenario_report.merged_wns
        top_tns = scenario_report.merged_tns
        top_vios = scenario_report.merged_violations
    else:
        top_wns = report.wns if report is not None else nan
        top_tns = report.tns if report is not None else nan
        top_vios = report.num_violations if report is not None else 0
    return FlowResult(
        name=netlist.name,
        wns=top_wns,
        tns=top_tns,
        num_violations=top_vios,
        wirelength=detail.wirelength if detail is not None else nan,
        num_vias=detail.num_vias if detail is not None else 0,
        num_drvs=detail.num_drvs if detail is not None else 0,
        runtimes=runtimes,
        overflow=route_result.overflow if route_result is not None else 0.0,
        refinement=refinement,
        report=report,
        eco=eco_result,
        scenario_report=scenario_report,
        hold_report=hold_report,
        route_result=route_result,
        stage_errors=stage_errors,
        timed_out=timed_out,
    )


def make_training_samples(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    train_names: Optional[Sequence[str]] = None,
    augment: int = 2,
    augment_seed: int = 77,
) -> List[DesignSample]:
    """Run the baseline flow on each design and package GNN samples.

    ``train_names`` defaults to the paper's six training designs; other
    designs are marked held-out (``is_train=False``).

    ``augment`` adds that many *position-disturbed* variants per
    training design (random Steiner moves, re-routed and re-timed by
    the oracle).  Without augmentation the model only ever sees
    RSMT-optimal geometry and learns nothing about how sign-off timing
    *responds* to Steiner moves — precisely the derivative the
    refinement loop consumes.  Disturbed variants are train-only and
    excluded from Table III scoring.
    """
    from repro.flow.baseline import random_disturbance
    from repro.netlist.benchmarks import TRAIN_BENCHMARKS

    names = list(names) if names is not None else list(BENCHMARKS)
    train_set = set(train_names) if train_names is not None else set(TRAIN_BENCHMARKS)
    rng = np.random.default_rng(augment_seed)
    samples: List[DesignSample] = []

    def route_and_sample(netlist: Netlist, forest: SteinerForest, is_train: bool, engine: STAEngine) -> DesignSample:
        grid = GCellGrid(netlist.die_width, netlist.die_height, netlist.technology)
        router = GlobalRouter(grid)
        route_result = router.route(forest)
        assign_layers(route_result, netlist.technology, grid.nx * grid.ny)
        return make_sample(
            netlist,
            forest,
            route_result,
            is_train=is_train,
            engine=engine,
            congestion=grid.utilization_map(),
        )

    for name in names:
        netlist, forest = prepare_design(name, scale=scale)
        engine = STAEngine(netlist)
        is_train = name in train_set
        samples.append(route_and_sample(netlist, forest, is_train, engine))
        if is_train:
            for k in range(augment):
                disturbed = random_disturbance(forest, rng)
                aug = route_and_sample(netlist, disturbed, True, engine)
                aug.name = f"{name}@aug{k}"
                samples.append(aug)
    return samples
