"""End-to-end physical-design flow orchestration (Fig. 1 of the paper).

``prepare_design`` runs synthesis-substitute generation, placement,
Steiner construction and edge shifting; ``run_routing_flow`` runs the
optional TSteiner step followed by global routing, detailed routing and
sign-off STA, recording per-stage wall-clock runtimes (Table IV).
"""

from repro.flow.pipeline import (
    FlowResult,
    prepare_design,
    run_routing_flow,
    make_training_samples,
)
from repro.flow.baseline import random_disturbance, random_move_trials

__all__ = [
    "FlowResult",
    "prepare_design",
    "run_routing_flow",
    "make_training_samples",
    "random_disturbance",
    "random_move_trials",
]
