"""Random-disturbance baseline (Fig. 2 and Fig. 5 of the paper).

The paper motivates learned refinement by showing that *random* Steiner
point moves change sign-off TNS noticeably (ratio spread around 1.0)
but do not help on average — the 'ExpV-Random' series of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.flow.pipeline import FlowResult, run_routing_flow
from repro.netlist.netlist import Netlist
from repro.steiner.forest import SteinerForest


def random_disturbance(
    forest: SteinerForest,
    rng: np.random.Generator,
    max_distance: Optional[float] = None,
) -> SteinerForest:
    """A copy of ``forest`` with uniformly perturbed Steiner points.

    Moves are bounded by ``max_distance`` (default: one GCell, the
    same cap the refinement loop uses) and clamped to the die.
    """
    if max_distance is None:
        max_distance = forest.netlist.technology.gcell_size
    disturbed = forest.copy()
    coords = disturbed.get_steiner_coords()
    if coords.size:
        noise = rng.uniform(-max_distance, max_distance, size=coords.shape)
        disturbed.set_steiner_coords(disturbed.clamp_coords(coords + noise))
    return disturbed


@dataclass
class RandomTrialStats:
    """Distribution of sign-off metric ratios across random trials."""

    tns_ratios: List[float]
    wns_ratios: List[float]

    @property
    def mean_tns_ratio(self) -> float:
        return float(np.mean(self.tns_ratios)) if self.tns_ratios else 1.0

    @property
    def mean_wns_ratio(self) -> float:
        return float(np.mean(self.wns_ratios)) if self.wns_ratios else 1.0

    @property
    def tns_spread(self) -> float:
        return float(np.std(self.tns_ratios)) if self.tns_ratios else 0.0


def random_move_trials(
    netlist: Netlist,
    forest: SteinerForest,
    baseline: FlowResult,
    trials: int = 10,
    seed: int = 2023,
    max_distance: Optional[float] = None,
) -> RandomTrialStats:
    """Re-run the flow ``trials`` times with random Steiner disturbance.

    Ratios are disturbed/baseline for TNS and WNS; both metrics are
    negative, so a ratio above 1.0 means the random move made timing
    *worse*.  The paper runs 10-50 trials per design (Fig. 2).
    """
    rng = np.random.default_rng(seed)
    tns_ratios: List[float] = []
    wns_ratios: List[float] = []
    for _ in range(trials):
        disturbed = random_disturbance(forest, rng, max_distance)
        result = run_routing_flow(netlist, disturbed)
        if abs(baseline.tns) > 1e-9:
            tns_ratios.append(result.tns / baseline.tns)
        if abs(baseline.wns) > 1e-9:
            wns_ratios.append(result.wns / baseline.wns)
    return RandomTrialStats(tns_ratios=tns_ratios, wns_ratios=wns_ratios)
