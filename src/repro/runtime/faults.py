"""Deterministic fault injection.

The resilience guarantees in this repo — degrade on validator failure,
skip-and-shrink on NaN gradients, best-so-far on deadline expiry,
byte-identical resume — are only guarantees if they are *testable on
demand*.  This harness makes any wrapped callable misbehave on exactly
the k-th call:

* ``mode="raise"`` — raise a chosen exception (default
  :class:`FaultInjected`);
* ``mode="nan"`` — run the real call, then poison every float in the
  result with NaN (arrays, scalars, tuples/lists/dicts thereof, and
  Tensor-likes exposing a ``data`` ndarray);
* ``mode="stall"`` — consume ``stall_seconds`` via the injectable
  ``sleep`` before delegating; paired with a
  :class:`~repro.runtime.budget.ManualClock` this drives deadline
  expiry with zero real waiting.

Faults fire on 1-based call indices, optionally repeating from that
index onward (``repeat=True`` models a hard-down dependency rather
than a transient blip).

Two entry points: :func:`wrap` returns a counting proxy for a callable
you hand somewhere (a validator, a gradient fn); :func:`inject` is a
context manager that temporarily replaces ``obj.attr`` — including
class attributes, so ``inject(GlobalRouter, "route", ...)`` faults
every router the flow constructs — and always restores on exit.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.runtime.errors import FaultInjected

MODE_RAISE = "raise"
MODE_NAN = "nan"
MODE_STALL = "stall"


@dataclass
class FaultSpec:
    """One scheduled fault: fire on the ``at_call``-th invocation."""

    at_call: int
    mode: str = MODE_RAISE
    exc: Optional[BaseException] = None  # instance or class; raise-mode only
    stall_seconds: float = 0.0
    repeat: bool = False  # fire on every call >= at_call

    def fires(self, call_index: int) -> bool:
        if self.repeat:
            return call_index >= self.at_call
        return call_index == self.at_call


def _poison(value: Any) -> Any:
    """Recursively replace floats with NaN, preserving structure."""
    if isinstance(value, np.ndarray):
        if np.issubdtype(value.dtype, np.floating):
            return np.full_like(value, np.nan)
        return value
    if isinstance(value, float):
        return float("nan")
    if isinstance(value, tuple):
        return tuple(_poison(v) for v in value)
    if isinstance(value, list):
        return [_poison(v) for v in value]
    if isinstance(value, dict):
        return {k: _poison(v) for k, v in value.items()}
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray) and np.issubdtype(data.dtype, np.floating):
        value.data = np.full_like(data, np.nan)
        return value
    return value


class FaultyCallable:
    """Counting proxy that applies scheduled :class:`FaultSpec` faults."""

    def __init__(
        self,
        fn: Callable,
        specs: Tuple[FaultSpec, ...],
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.fn = fn
        self.specs = tuple(specs)
        self.sleep = sleep
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        poison = False
        for spec in self.specs:
            if not spec.fires(self.calls):
                continue
            self._report(spec)
            if spec.mode == MODE_RAISE:
                exc = spec.exc
                if exc is None:
                    exc = FaultInjected(f"injected fault on call {self.calls}")
                elif isinstance(exc, type):
                    exc = exc(f"injected fault on call {self.calls}")
                raise exc
            if spec.mode == MODE_STALL:
                self.sleep(spec.stall_seconds)
            elif spec.mode == MODE_NAN:
                poison = True
            else:
                raise ValueError(f"unknown fault mode {spec.mode!r}")
        result = self.fn(*args, **kwargs)
        return _poison(result) if poison else result

    def _report(self, spec: FaultSpec) -> None:
        """Record the firing fault in the active telemetry trace."""
        from repro.obs import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.count("faults.injected")
            tel.event("fault_injected", mode=spec.mode, call=self.calls)


def wrap(
    fn: Callable,
    *specs: FaultSpec,
    sleep: Callable[[float], None] = time.sleep,
) -> FaultyCallable:
    """Return a fault-injecting proxy around ``fn``."""
    return FaultyCallable(fn, specs, sleep=sleep)


@contextlib.contextmanager
def inject(
    obj: Any,
    attr: str,
    *specs: FaultSpec,
    sleep: Callable[[float], None] = time.sleep,
):
    """Temporarily replace ``obj.attr`` with a faulty proxy.

    Works on instances and classes alike; for a class attribute the
    proxy receives ``self`` as its first positional argument exactly
    like the function it shadows.  Yields the proxy (exposing
    ``.calls``) and restores the original attribute on exit, even when
    the injected fault propagates.
    """
    original = getattr(obj, attr)
    proxy = FaultyCallable(original, specs, sleep=sleep)
    setattr(obj, attr, proxy)
    try:
        yield proxy
    finally:
        setattr(obj, attr, original)
