"""Backoff-retry wrapper for flaky stages.

Used by the hybrid refinement loop around the sign-off-lite validator:
a transient probe failure is retried with (injectable) backoff, and
only after the attempt budget is exhausted does the caller degrade to
evaluator-only acceptance.  ``sleep`` is a parameter so tests (and the
fault harness) substitute a :class:`~repro.runtime.budget.ManualClock`
and retries cost zero real time.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

from repro.runtime.errors import BudgetExceeded

T = TypeVar("T")


def retry_call(
    fn: Callable[..., T],
    *args,
    attempts: int = 3,
    backoff: float = 0.0,
    backoff_factor: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
) -> T:
    """Call ``fn`` up to ``attempts`` times; re-raise the last failure.

    :class:`BudgetExceeded` is never retried — an expired budget must
    propagate immediately, retrying it only burns more of nothing.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = backoff
    last: BaseException = None
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except BudgetExceeded:
            raise
        except retry_on as exc:
            last = exc
            if attempt + 1 < attempts and delay > 0:
                sleep(delay)
                delay *= backoff_factor
    raise last
