"""Backoff-retry wrapper for flaky stages.

Used by the hybrid refinement loop around the sign-off-lite validator
and by the serving layer's crash-requeue path: a transient failure is
retried with exponential backoff (optionally jittered so a fleet of
retries does not stampede in lockstep), and only after the attempt
budget is exhausted does the caller degrade or quarantine.

Everything time-shaped is injectable, mirroring
:mod:`repro.runtime.budget`: ``sleep`` accepts either a plain callable
or a :class:`~repro.runtime.budget.ManualClock` (its ``advance`` is
used), so tests — and the fault harness — consume *virtual* time and
retries cost zero real wall-clock.  Jitter draws from an injectable
``random.Random`` so jittered schedules are reproducible.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from repro.runtime.errors import BudgetExceeded

T = TypeVar("T")

SleepLike = Union[Callable[[float], None], "object"]


def _sleep_fn(sleep: SleepLike) -> Callable[[float], None]:
    """Accept a sleep callable or a ManualClock-like object.

    A :class:`~repro.runtime.budget.ManualClock` exposes ``sleep`` (an
    alias of ``advance``); passing the clock itself therefore works the
    same as passing ``clock.advance``.
    """
    if callable(sleep):
        return sleep  # plain callable (time.sleep, ManualClock.advance)
    attr = getattr(sleep, "sleep", None)
    if callable(attr):
        return attr
    raise TypeError(f"sleep must be callable or expose .sleep; got {sleep!r}")


def backoff_delay(
    attempt: int,
    base: float,
    factor: float = 2.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before retry number ``attempt`` (0-based) of a schedule.

    ``base * factor**attempt``, scaled by a symmetric jitter of up to
    ``jitter`` (a fraction in [0, 1]) when an ``rng`` is supplied or
    jitter is nonzero.  Deterministic for a seeded ``rng``.
    """
    delay = base * (factor ** max(0, int(attempt)))
    if jitter > 0.0 and delay > 0.0:
        r = rng if rng is not None else random
        delay *= 1.0 + jitter * (2.0 * r.random() - 1.0)
    return max(0.0, delay)


def retry_call(
    fn: Callable[..., T],
    *args,
    attempts: int = 3,
    backoff: float = 0.0,
    backoff_factor: float = 2.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: SleepLike = time.sleep,
    **kwargs,
) -> T:
    """Call ``fn`` up to ``attempts`` times; re-raise the last failure.

    :class:`BudgetExceeded` is never retried — an expired budget must
    propagate immediately, retrying it only burns more of nothing.

    ``sleep`` may be a callable *or* a ManualClock (virtual time);
    ``jitter``/``rng`` perturb the exponential schedule reproducibly.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    do_sleep = _sleep_fn(sleep)
    last: BaseException = None
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except BudgetExceeded:
            raise
        except retry_on as exc:
            last = exc
            if attempt + 1 < attempts and backoff > 0:
                do_sleep(
                    backoff_delay(
                        attempt, backoff, backoff_factor, jitter=jitter, rng=rng
                    )
                )
    raise last
