"""Atomic checkpoint I/O.

All snapshots in this repo — refinement state, trainer state, the
serialized evaluator — go through :func:`atomic_save_npz`: the payload
is written to a temporary file in the target directory and moved into
place with ``os.replace``, so a kill at any instant leaves either the
previous complete checkpoint or the new complete checkpoint, never a
truncated hybrid.  :func:`load_npz` re-validates on the way back in and
raises :class:`~repro.runtime.errors.CheckpointError` on anything
unreadable, so a corrupt file surfaces as a clean, typed failure
instead of a zipfile traceback ten frames deep.

Scalars (python ints/floats/bools) ride along as 0-d numpy arrays; the
loader unwraps them, so callers round-trip plain dictionaries of
numbers and arrays without manual packing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.runtime.errors import CheckpointError

# Format marker: lets the loader reject files that are valid .npz but
# were never written by this module (or by a newer incompatible layout).
FORMAT_KEY = "__repro_ckpt__"
FORMAT_VERSION = 1

# JSON sidecar key for non-array metadata (strings, nested config).
META_KEY = "__meta_json__"


def atomic_save_npz(
    path: Union[str, Path],
    arrays: Dict[str, Any],
    meta: Dict[str, Any] = None,
) -> Path:
    """Atomically write ``arrays`` (+ optional JSON ``meta``) to ``path``.

    Values may be numpy arrays or python scalars.  The write is
    temp-file + ``os.replace``: concurrent readers always see a
    complete file.

    When a telemetry run is active (``repro.obs.get_telemetry()``), its
    run id and trace schema version are stamped into ``meta`` (without
    overwriting caller-supplied values), so a later ``--resume`` can
    stitch the continuation trace onto the original run
    (docs/OBSERVABILITY.md).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, np.ndarray] = {FORMAT_KEY: np.asarray(FORMAT_VERSION)}
    for key, value in arrays.items():
        if key in (FORMAT_KEY, META_KEY):
            raise ValueError(f"reserved checkpoint key {key!r}")
        payload[key] = np.asarray(value)
    from repro.obs import SCHEMA_VERSION, get_telemetry

    tel = get_telemetry()
    if tel.enabled:
        meta = dict(meta) if meta is not None else {}
        meta.setdefault("telemetry_run", tel.run_id)
        meta.setdefault("telemetry_schema", SCHEMA_VERSION)
    if meta is not None:
        blob = json.dumps(meta).encode("utf-8")
        payload[META_KEY] = np.frombuffer(blob, dtype=np.uint8)

    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def _damage_offset(path: Path) -> tuple:
    """Locate where a damaged checkpoint stops being parseable.

    Returns ``(offset, detail)``.  Heuristics over the zip container
    that backs ``.npz``: a wrong magic number means the file was never
    a checkpoint (offset 0); a missing end-of-central-directory record
    means the tail was cut off (offset = file size, i.e. the byte where
    the rest of the archive should have been); otherwise the EOCD
    offset is reported so the caller can see how much of the file the
    container actually accounts for.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        return 0, f"unreadable: {exc}"
    size = len(data)
    if size < 4 or not data.startswith(b"PK\x03\x04"):
        return 0, f"bad zip magic at byte 0 (file is {size} bytes)"
    eocd = data.rfind(b"PK\x05\x06")
    if eocd == -1:
        return size, f"truncated at byte {size}: no end-of-central-directory record"
    return eocd, f"archive directory at byte {eocd} of {size} is inconsistent"


def load_npz(path: Union[str, Path], require: tuple = ()) -> Dict[str, Any]:
    """Load a checkpoint written by :func:`atomic_save_npz`.

    Returns a dict of arrays with 0-d arrays unwrapped to python
    scalars, plus the JSON metadata under ``"meta"`` when present.
    Raises :class:`CheckpointError` on a missing file, a truncated or
    corrupt archive, a foreign .npz, or missing ``require`` keys.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}", path=path)
    try:
        with np.load(path, allow_pickle=False) as data:
            files = set(data.files)
            if FORMAT_KEY not in files:
                raise CheckpointError(
                    f"{path} is not a repro checkpoint (missing {FORMAT_KEY})",
                    path=path,
                )
            out: Dict[str, Any] = {}
            for key in files - {FORMAT_KEY, META_KEY}:
                arr = data[key]
                out[key] = arr.item() if arr.ndim == 0 else arr
            if META_KEY in files:
                out["meta"] = json.loads(bytes(data[META_KEY].tobytes()).decode("utf-8"))
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/ValueError/OSError → typed error
        offset, detail = _damage_offset(path)
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path} ({detail}): {exc}",
            path=path,
            offset=offset,
        ) from exc
    missing = [k for k in require if k not in out]
    if missing:
        raise CheckpointError(f"checkpoint {path} missing keys {missing}", path=path)
    return out
