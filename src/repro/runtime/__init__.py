"""Resilience runtime: guards, budgets, checkpoints, retry, fault injection.

This package is the survival layer under every long-running loop in the
reproduction (docs/RESILIENCE.md).  It deliberately imports nothing
from the rest of ``repro`` except numpy-level utilities, so any module
— core, flow, timing_model, routers — can depend on it without cycles.
"""

from repro.runtime.budget import Budget, ManualClock
from repro.runtime.checkpoint import atomic_save_npz, load_npz
from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    FaultInjected,
    NumericalError,
    ReproError,
    StageError,
    ValidatorError,
    WorkerError,
)
from repro.runtime.guards import (
    POLICY_RAISE,
    POLICY_SANITIZE,
    all_finite,
    check_finite,
    sanitize,
    validate_policy,
)
from repro.runtime.retry import backoff_delay, retry_call

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CheckpointError",
    "FaultInjected",
    "ManualClock",
    "NumericalError",
    "POLICY_RAISE",
    "POLICY_SANITIZE",
    "ReproError",
    "StageError",
    "ValidatorError",
    "WorkerError",
    "all_finite",
    "atomic_save_npz",
    "backoff_delay",
    "check_finite",
    "load_npz",
    "retry_call",
    "sanitize",
    "validate_policy",
]
