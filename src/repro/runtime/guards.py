"""Non-finite detection with configurable policy.

The refinement and training loops compute gradients, arrival times and
candidate coordinates that must stay finite; a single NaN silently
poisons every downstream accept/revert decision (NaN comparisons are
all False, so Algorithm 1 would reject forever while Adam moments rot).
Guards catch the poison at the source under one of two policies:

* ``POLICY_RAISE`` — raise :class:`NumericalError` immediately
  (default; fail fast in development and CI);
* ``POLICY_SANITIZE`` — report the problem to the caller, who skips the
  step / substitutes a safe value and keeps the run alive (production
  behaviour: one bad step must not discard hours of refinement).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime.errors import NumericalError

POLICY_RAISE = "raise"
POLICY_SANITIZE = "sanitize"
POLICIES = (POLICY_RAISE, POLICY_SANITIZE)


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ValueError(f"unknown non-finite policy {policy!r}; expected one of {POLICIES}")
    return policy


def all_finite(value) -> bool:
    """True when every element of ``value`` (array or scalar) is finite."""
    arr = np.asarray(value, dtype=np.float64)
    return bool(np.isfinite(arr).all())


def check_finite(value, what: str, policy: str = POLICY_RAISE) -> bool:
    """Guard one quantity.

    Returns True when ``value`` is wholly finite.  Otherwise raises
    :class:`NumericalError` under ``POLICY_RAISE``, or returns False
    under ``POLICY_SANITIZE`` so the caller can skip the step.
    """
    validate_policy(policy)
    if all_finite(value):
        return True
    from repro.obs import get_telemetry

    tel = get_telemetry()
    if tel.enabled:
        tel.count("guards.nonfinite")
        tel.event("nonfinite", what=what, policy=policy)
    if policy == POLICY_SANITIZE:
        return False
    arr = np.asarray(value, dtype=np.float64)
    bad = int((~np.isfinite(arr)).sum())
    raise NumericalError(what, f"{bad}/{arr.size} elements non-finite")


def sanitize(value: np.ndarray, fill: float = 0.0) -> Tuple[np.ndarray, int]:
    """Replace non-finite entries with ``fill``; returns (copy, #replaced)."""
    arr = np.asarray(value, dtype=np.float64)
    mask = ~np.isfinite(arr)
    n_bad = int(mask.sum())
    if n_bad == 0:
        return arr, 0
    out = arr.copy()
    out[mask] = fill
    return out, n_bad
