"""Wall-clock and probe-count budgets with cooperative checks.

Long-running loops (Algorithm 1, evaluator training, the negotiated
routers) poll a shared :class:`Budget` at iteration boundaries and wind
down gracefully when it expires: they return their best-so-far result
flagged ``timed_out=True`` instead of hanging or dying mid-flight.

The clock is injectable so tests can drive deadline expiry
deterministically with :class:`ManualClock` — no real sleeping, no
timing flakiness.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.runtime.errors import BudgetExceeded


class ManualClock:
    """Deterministic test clock: ``now()`` returns an explicit counter.

    ``advance`` doubles as a drop-in ``sleep`` replacement, so retry
    backoff and fault "stall" injection consume *virtual* time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += float(seconds)

    # Alias so a ManualClock can be passed wherever a sleep fn is wanted.
    sleep = advance


class Budget:
    """A cooperative budget over wall-clock seconds and/or oracle probes.

    ``None`` for either limit means unlimited.  The budget starts
    counting at construction; ``restart()`` rebases the clock (used when
    a budget object is built before the work it governs).

    A single Budget may be threaded through several stages — refinement,
    training, routing — so the *whole* flow shares one deadline, the way
    a sign-off farm kills a job at its slot limit rather than per-tool.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_probes: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.wall_seconds = wall_seconds
        self.max_probes = max_probes
        self._clock = clock or time.monotonic
        self._start = self._clock()
        self.probes_spent = 0
        self._reported = False

    # ------------------------------------------------------------------
    def restart(self) -> "Budget":
        self._start = self._clock()
        self.probes_spent = 0
        self._reported = False
        return self

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining_seconds(self) -> Optional[float]:
        if self.wall_seconds is None:
            return None
        return self.wall_seconds - self.elapsed()

    def spend_probe(self, n: int = 1) -> None:
        self.probes_spent += n

    # ------------------------------------------------------------------
    def expired(self) -> bool:
        """True once either limit is exhausted (cooperative check)."""
        if self.wall_seconds is not None and self.elapsed() >= self.wall_seconds:
            self._report_exhaustion("wall_seconds")
            return True
        if self.max_probes is not None and self.probes_spent >= self.max_probes:
            self._report_exhaustion("max_probes")
            return True
        return False

    def _report_exhaustion(self, limit: str) -> None:
        """Emit one ``budget_exhausted`` trace event per exhaustion.

        Telemetry is resolved from the process global at report time
        (``repro.obs``); the flag resets with :meth:`restart`.
        """
        if self._reported:
            return
        self._reported = True
        from repro.obs import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.event(
                "budget_exhausted",
                limit=limit,
                elapsed=self.elapsed(),
                probes=self.probes_spent,
                wall_seconds=self.wall_seconds,
                max_probes=self.max_probes,
            )

    def check(self, what: str = "budget") -> None:
        """Hard variant: raise :class:`BudgetExceeded` when expired."""
        if self.expired():
            raise BudgetExceeded(what)
