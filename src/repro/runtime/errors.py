"""Structured exception taxonomy for the resilience runtime.

Every failure the flow can survive is funnelled through one of these
classes so callers (and the CLI) can distinguish *what kind* of thing
went wrong without string-matching messages:

* :class:`NumericalError` — non-finite values where finite ones are
  required (gradients, arrival times, candidate coordinates);
* :class:`StageError` — a flow stage raised; carries the stage name and
  the original exception as ``__cause__``;
* :class:`ValidatorError` — the sign-off-lite oracle probe failed;
* :class:`BudgetExceeded` — a wall-clock or probe budget expired where
  a caller asked for a hard stop (cooperative loops normally *return*
  a flagged best-so-far result instead of raising);
* :class:`CheckpointError` — a checkpoint file is missing required
  keys, truncated, or otherwise unreadable; carries the path and the
  byte offset where parsing broke down when those are known;
* :class:`WorkerError` — a parallel or serving worker failed while
  processing a named task; carries the failing design name;
* :class:`FaultInjected` — raised by the deterministic fault-injection
  harness (tests only); inherits :class:`ReproError` so guarded stages
  treat it like any real failure.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all structured errors raised by this package."""


class NumericalError(ReproError):
    """A quantity that must be finite (gradient, arrival, coordinate) is not."""

    def __init__(self, what: str, detail: str = "") -> None:
        self.what = what
        msg = f"non-finite values in {what}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class StageError(ReproError):
    """A named flow stage failed; the original exception is ``__cause__``."""

    def __init__(self, stage: str, cause: Optional[BaseException] = None) -> None:
        self.stage = stage
        detail = f": {type(cause).__name__}: {cause}" if cause is not None else ""
        super().__init__(f"stage {stage!r} failed{detail}")
        if cause is not None:
            self.__cause__ = cause


class ValidatorError(ReproError):
    """The routing+STA oracle probe raised or returned unusable metrics."""


class BudgetExceeded(ReproError):
    """A wall-clock or probe budget was exhausted and a hard stop was requested."""

    def __init__(self, what: str = "budget") -> None:
        self.what = what
        super().__init__(f"{what} exhausted")


class CheckpointError(ReproError):
    """A checkpoint/weights file is corrupt, truncated, or incompatible.

    ``path`` and ``offset`` (when known) locate the damage: ``offset``
    is the byte position where the archive stops being parseable — 0
    for a wrong magic number, the truncation point for a cut-off file.
    """

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.path = str(path) if path is not None else None
        self.offset = offset
        super().__init__(message)


class WorkerError(ReproError):
    """A parallel/serving worker failed while processing a named task.

    ``design`` names the failing work item (the experiment runners and
    the serving layer both key work by design name); ``failures`` lists
    every ``(label, error)`` pair when a fan-out saw several.  Partial
    results, when the caller could salvage them, ride on ``results``.
    """

    def __init__(
        self,
        design: str,
        detail: str = "",
        failures: tuple = (),
        results: Optional[list] = None,
    ) -> None:
        self.design = design
        self.failures = list(failures)
        self.results = results
        msg = f"worker failed on {design!r}"
        if detail:
            msg += f": {detail}"
        if len(self.failures) > 1:
            others = ", ".join(repr(label) for label, _ in self.failures[1:])
            msg += f" (also failed: {others})"
        super().__init__(msg)


class FaultInjected(ReproError):
    """Deterministically injected failure (see :mod:`repro.runtime.faults`)."""
