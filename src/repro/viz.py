"""Dependency-free visualization: SVG and ASCII renderings.

Real physical-design work lives and dies by looking at pictures; this
module renders the three artifacts users ask for most, without pulling
in matplotlib:

* :func:`render_design_svg` — die, cells, Steiner trees (optionally a
  congestion underlay) as a standalone SVG string;
* :func:`congestion_ascii` — a terminal heat map of GCell utilization;
* :func:`slack_histogram_ascii` — endpoint slack distribution.

Writing the SVG to a file and opening it in any browser shows the
placement and routing trees of a design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.steiner.forest import SteinerForest

_SVG_HEADER = (
    '<svg xmlns="http://www.w3.org/2000/svg" viewBox="{vb}" '
    'width="{w}" height="{h}" style="background:#fff">'
)


def render_design_svg(
    netlist: Netlist,
    forest: Optional[SteinerForest] = None,
    congestion: Optional[np.ndarray] = None,
    scale: float = 8.0,
    highlight_nets: Optional[Sequence[int]] = None,
) -> str:
    """Render placement + Steiner trees as an SVG document string."""
    w, h = netlist.die_width, netlist.die_height
    parts: List[str] = [
        _SVG_HEADER.format(vb=f"0 0 {w:.1f} {h:.1f}", w=int(w * scale), h=int(h * scale))
    ]
    # Flip y so the origin sits bottom-left like die coordinates.
    parts.append(f'<g transform="translate(0,{h:.1f}) scale(1,-1)">')
    parts.append(
        f'<rect x="0" y="0" width="{w:.1f}" height="{h:.1f}" '
        'fill="none" stroke="#333" stroke-width="0.3"/>'
    )

    if congestion is not None and congestion.size:
        nx, ny = congestion.shape
        gx, gy = w / nx, h / ny
        peak = max(float(congestion.max()), 1e-9)
        for i in range(nx):
            for j in range(ny):
                u = float(congestion[i, j]) / peak
                if u < 0.05:
                    continue
                parts.append(
                    f'<rect x="{i * gx:.1f}" y="{j * gy:.1f}" width="{gx:.1f}" '
                    f'height="{gy:.1f}" fill="#d32" opacity="{0.35 * u:.2f}"/>'
                )

    for cell in netlist.cells:
        cw = cell.cell_type.area * netlist.technology.site_width
        ch = netlist.technology.row_height
        color = "#68a" if not cell.is_sequential else "#a86"
        parts.append(
            f'<rect x="{cell.x:.2f}" y="{cell.y:.2f}" width="{cw:.2f}" '
            f'height="{ch:.2f}" fill="{color}" opacity="0.55" stroke="none"/>'
        )

    if forest is not None:
        wanted = set(highlight_nets) if highlight_nets is not None else None
        for tree in forest.trees:
            if wanted is not None and tree.net_index not in wanted:
                continue
            stroke = "#c22" if wanted is not None else "#282"
            width = 0.25 if wanted is not None else 0.12
            xy = tree.node_xy()
            for u, v in tree.edges:
                # Draw the L-route through the implied corner.
                x1, y1 = xy[u]
                x2, y2 = xy[v]
                parts.append(
                    f'<polyline points="{x1:.2f},{y1:.2f} {x2:.2f},{y1:.2f} '
                    f'{x2:.2f},{y2:.2f}" fill="none" stroke="{stroke}" '
                    f'stroke-width="{width}"/>'
                )
            for k in range(tree.n_steiner):
                sx, sy = tree.steiner_xy[k]
                parts.append(
                    f'<circle cx="{sx:.2f}" cy="{sy:.2f}" r="0.3" fill="#22c"/>'
                )

    parts.append("</g></svg>")
    return "\n".join(parts)


_ASCII_RAMP = " .:-=+*#%@"


def congestion_ascii(utilization: np.ndarray, width: int = 60) -> str:
    """Terminal heat map of a GCell utilization field."""
    util = np.asarray(utilization, dtype=np.float64)
    if util.size == 0:
        return "(empty grid)"
    nx, ny = util.shape
    step = max(1, nx // width)
    peak = max(float(util.max()), 1e-9)
    lines = []
    for j in range(ny - 1, -1, -step):
        row = []
        for i in range(0, nx, step):
            u = float(util[i, j]) / peak
            row.append(_ASCII_RAMP[min(int(u * (len(_ASCII_RAMP) - 1)), len(_ASCII_RAMP) - 1)])
        lines.append("".join(row))
    lines.append(f"(peak utilization {util.max():.2f})")
    return "\n".join(lines)


def slack_histogram_ascii(slacks: Dict[int, float], bins: int = 12, width: int = 40) -> str:
    """Terminal histogram of endpoint slacks; violations marked."""
    values = np.array(list(slacks.values()), dtype=np.float64)
    if values.size == 0:
        return "(no endpoints)"
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    peak = max(int(counts.max()), 1)
    lines = [f"endpoint slack histogram ({values.size} endpoints)"]
    for c, e0, e1 in zip(counts, edges[:-1], edges[1:]):
        marker = "!" if e1 <= 0 else " "
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{marker}[{e0:8.3f},{e1:8.3f}) {bar} {c}")
    lines.append("(! = violating bins)")
    return "\n".join(lines)
