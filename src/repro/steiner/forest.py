"""Steiner forest: one tree per net, with flat coordinate views.

The refinement loop of TSteiner treats all Steiner points of a design
as a single ``(S, 2)`` coordinate matrix (concurrent refinement).  The
forest owns the mapping between that flat view and per-tree storage,
plus boundary clamping against the routing grid and the final rounding
post-processing step Fig. 4 of the paper describes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.obs import get_telemetry
from repro.steiner.rsmt import construct_tree
from repro.steiner.tree import SteinerTree


class SteinerForest:
    """All Steiner trees of a design."""

    def __init__(self, netlist: Netlist, trees: List[SteinerTree]) -> None:
        self.netlist = netlist
        self.trees = trees
        self._offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        for i, tree in enumerate(trees):
            self._offsets[i + 1] = self._offsets[i] + tree.n_steiner

    # ------------------------------------------------------------------
    @property
    def num_trees(self) -> int:
        return len(self.trees)

    @property
    def num_steiner_points(self) -> int:
        return int(self._offsets[-1])

    @property
    def num_edges(self) -> int:
        return sum(len(t.edges) for t in self.trees)

    def tree_for_net(self, net_index: int) -> SteinerTree:
        for tree in self.trees:
            if tree.net_index == net_index:
                return tree
        raise KeyError(f"no tree for net {net_index}")

    def steiner_slice(self, tree_idx: int) -> slice:
        """Flat-view slice holding tree ``tree_idx``'s Steiner points."""
        return slice(int(self._offsets[tree_idx]), int(self._offsets[tree_idx + 1]))

    # ------------------------------------------------------------------
    # Flat coordinate view
    # ------------------------------------------------------------------
    def get_steiner_coords(self) -> np.ndarray:
        """(S, 2) concatenated Steiner coordinates (copy)."""
        out = np.empty((int(self._offsets[-1]), 2), dtype=np.float64)
        pos = 0
        for tree in self.trees:
            a = tree.steiner_xy
            k = a.shape[0]
            if k:
                out[pos : pos + k] = a
                pos += k
        return out

    def set_steiner_coords(self, coords: np.ndarray) -> None:
        """Write a flat (S, 2) coordinate matrix back into the trees."""
        coords = np.asarray(coords, dtype=np.float64).reshape(-1, 2)
        if coords.shape[0] != self.num_steiner_points:
            raise ValueError(
                f"expected {self.num_steiner_points} Steiner points, got {coords.shape[0]}"
            )
        pos = 0
        for tree in self.trees:
            k = tree.steiner_xy.shape[0]
            if k:
                tree.steiner_xy = coords[pos : pos + k].copy()
                pos += k

    def clamp_coords(self, coords: np.ndarray) -> np.ndarray:
        """Clamp a flat coordinate matrix to the routing-grid boundary."""
        out = np.asarray(coords, dtype=np.float64).reshape(-1, 2).copy()
        np.clip(out[:, 0], 0.0, self.netlist.die_width, out=out[:, 0])
        np.clip(out[:, 1], 0.0, self.netlist.die_height, out=out[:, 1])
        return out

    @staticmethod
    def round_array(coords: np.ndarray) -> np.ndarray:
        """Snap coordinates to the 0.01 um manufacturing grid."""
        return np.round(np.asarray(coords, dtype=np.float64) * 100.0) / 100.0

    def round_coords(self) -> None:
        """Post-processing: snap Steiner coordinates to integer dbu.

        The paper rounds final positions onto the grid; we round to the
        nearest 0.01 um (a 10 nm manufacturing grid).
        """
        for tree in self.trees:
            if tree.n_steiner:
                tree.steiner_xy = self.round_array(tree.steiner_xy)

    # ------------------------------------------------------------------
    def total_wirelength(self) -> float:
        return float(sum(t.wirelength() for t in self.trees))

    def two_pin_segments(self) -> List[Tuple[int, Tuple[float, float], Tuple[float, float]]]:
        """All tree edges as (net_index, (x1, y1), (x2, y2)) segments.

        This is the decomposition of multi-pin nets into two-pin nets
        that global routing consumes.
        """
        segments = []
        for tree in self.trees:
            for a, b in tree.segments():
                segments.append((tree.net_index, a, b))
        return segments

    def copy(self) -> "SteinerForest":
        return SteinerForest(self.netlist, [t.copy() for t in self.trees])

    def validate(self) -> None:
        for tree in self.trees:
            tree.validate()

    def refresh_pin_positions(self) -> None:
        """Re-read pin coordinates from the netlist (after re-placement)."""
        pos = self.netlist.pin_positions()
        for tree in self.trees:
            tree.pin_xy = pos[np.array(tree.pin_ids, dtype=np.int64)]


#: Forest memo keyed by (geometry digest, skip_degenerate, kernel).
#: Content-addressed rather than object-identity-addressed: serve
#: warm-state rebuilds and repeated flow runs construct *new* Netlist
#: objects with byte-identical geometry, which an identity cache would
#: always miss.  Bounded LRU; entries are master copies, callers get
#: private forks (refinement mutates Steiner coordinates in place).
_FOREST_CACHE: "OrderedDict[Tuple[bytes, bool, str], SteinerForest]" = OrderedDict()
_FOREST_CACHE_CAP = 8


def _forest_digest(netlist: Netlist, pos: np.ndarray) -> bytes:
    """Digest of everything the initial construction depends on."""
    h = hashlib.blake2b(digest_size=16)
    h.update(pos.tobytes())
    for net in netlist.nets:
        h.update(np.int64(net.driver).tobytes())
        h.update(np.array(net.sinks, dtype=np.int64).tobytes())
    return h.digest()


def _fork_forest(netlist: Netlist, master: SteinerForest) -> SteinerForest:
    """Private copy of a cached forest, rebound to the caller's netlist.

    Steiner coordinates (the movable state) and edge lists are copied;
    ``pin_ids``/``pin_xy`` are shared read-only — no code path writes
    them in place (re-placement *reassigns* ``pin_xy``).
    """
    trusted = SteinerTree._trusted
    trees = [
        trusted(t.net_index, t.pin_ids, t.pin_xy, t.steiner_xy.copy(), list(t.edges))
        for t in master.trees
    ]
    return SteinerForest(netlist, trees)


def clear_forest_cache() -> None:
    """Drop all memoized forests (tests / memory pressure)."""
    _FOREST_CACHE.clear()


def build_forest(
    netlist: Netlist,
    skip_degenerate: bool = True,
    kernel: str = "flat",
    cache: bool = True,
) -> SteinerForest:
    """Construct initial Steiner trees for every net of ``netlist``.

    ``kernel`` selects the implementation: ``"flat"`` runs the batched
    whole-design kernels of :mod:`repro.steiner.flat_build`,
    ``"reference"`` the original per-net constructor; the two are
    bitwise-equal (tests/test_flat_steiner.py).  ``cache=True``
    memoizes by geometry digest so repeated builds of identical
    geometry (serve warm-state rebuilds, flow re-runs) return a fork of
    the cached forest instead of reconstructing.
    """
    if kernel not in ("flat", "reference"):
        raise ValueError(f"unknown forest kernel {kernel!r}")
    tel = get_telemetry()
    pos = netlist.pin_positions()
    key = None
    if cache:
        key = (_forest_digest(netlist, pos), bool(skip_degenerate), kernel)
        master = _FOREST_CACHE.get(key)
        if master is not None:
            _FOREST_CACHE.move_to_end(key)
            if tel.enabled:
                tel.count("steiner.cache_hits")
            return _fork_forest(netlist, master)
        if tel.enabled:
            tel.count("steiner.cache_misses")

    with tel.span("forest_build", design=netlist.name, kernel=kernel) as span:
        if kernel == "flat":
            if tel.enabled:
                tel.count("steiner.builds_flat")
            net_indices: List[int] = []
            net_pins: List[List[int]] = []
            for net in netlist.nets:
                pins = net.pins
                if skip_degenerate and len(pins) < 2:
                    continue
                net_indices.append(net.index)
                net_pins.append(pins)
            from repro.steiner.flat_build import construct_trees_flat

            trees = construct_trees_flat(net_indices, net_pins, pos)
        else:
            if tel.enabled:
                tel.count("steiner.builds_reference")
            trees = []
            for net in netlist.nets:
                pins = net.pins
                if skip_degenerate and len(pins) < 2:
                    continue
                trees.append(
                    construct_tree(net.index, pins, pos[np.array(pins, dtype=np.int64)])
                )
        forest = SteinerForest(netlist, trees)
        if tel.enabled:
            buckets = {1: 0, 2: 0, 3: 0, 4: 0}
            for t in trees:
                d = t.n_pins
                buckets[d if d < 4 else 4] += 1
            span.annotate(
                n_trees=len(trees),
                n_steiner=forest.num_steiner_points,
                deg1=buckets[1],
                deg2=buckets[2],
                deg3=buckets[3],
                deg4plus=buckets[4],
            )

    if cache:
        _FOREST_CACHE[key] = _fork_forest(netlist, forest)
        while len(_FOREST_CACHE) > _FOREST_CACHE_CAP:
            _FOREST_CACHE.popitem(last=False)
    return forest
