"""Congestion-driven edge shifting (Pan & Chu, FastRoute).

After initial tree construction the paper applies "the edge shifting
technique for congestion alleviation": sliding a tree edge within the
span allowed by its endpoints to a less congested position, without
changing tree topology or wirelength.

Our variant moves *Steiner points* whose incident edges form a sliding
window: a Steiner node with a horizontal trunk can slide vertically
within the span of its neighbours (and vice versa).  Candidate
positions are GCell centres; the one minimizing the congestion cost of
the incident edges wins.  Wirelength never increases (positions outside
the neighbour span are not considered).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.steiner.forest import SteinerForest
from repro.steiner.tree import SteinerTree

# A congestion probe: maps (x1, y1, x2, y2) of an L-route to a cost.
CongestionProbe = Callable[[float, float, float, float], float]


def _slide_candidates(low: float, high: float, step: float) -> np.ndarray:
    """Candidate coordinates between two neighbours, on a GCell lattice."""
    if high - low < step:
        return np.array([(low + high) * 0.5])
    start = np.ceil(low / step) * step
    return np.arange(start, high + 1e-9, step)


def shift_tree_edges(
    tree: SteinerTree,
    probe: CongestionProbe,
    gcell: float,
) -> int:
    """Shift the Steiner points of one tree; returns number of moves."""
    moves = 0
    adj = tree.adjacency()
    for node in range(tree.n_pins, tree.n_nodes):
        neighbours = adj[node]
        if not 2 <= len(neighbours) <= 3:
            continue
        xy = tree.node_xy()
        nxy = xy[neighbours]
        local = node - tree.n_pins
        here = tree.steiner_xy[local].copy()

        best_cost = _node_cost(here, nxy, probe)
        best_pos = here.copy()
        # Slide in x within the neighbour x-span, then in y.
        for axis in (0, 1):
            low, high = float(nxy[:, axis].min()), float(nxy[:, axis].max())
            for cand in _slide_candidates(low, high, gcell):
                pos = here.copy()
                pos[axis] = cand
                cost = _node_cost(pos, nxy, probe)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_pos = pos.copy()
        if not np.array_equal(best_pos, here):
            tree.steiner_xy[local] = best_pos
            moves += 1
    return moves


def _node_cost(pos: np.ndarray, neighbour_xy: np.ndarray, probe: CongestionProbe) -> float:
    """Congestion + wirelength cost of the edges at a candidate position."""
    cost = 0.0
    for n in neighbour_xy:
        cost += probe(float(pos[0]), float(pos[1]), float(n[0]), float(n[1]))
        cost += 1e-3 * (abs(pos[0] - n[0]) + abs(pos[1] - n[1]))  # WL tie-break
    return cost


def shift_edges(
    forest: SteinerForest,
    probe: Optional[CongestionProbe] = None,
    passes: int = 1,
) -> int:
    """Run edge shifting over the whole forest; returns total moves.

    Without a probe (no congestion map yet), a density self-estimate is
    built from the forest's own segments: edges crossing popular GCells
    cost more, so trunks spread out — the effect FastRoute's edge
    shifting has before global routing.
    """
    gcell = forest.netlist.technology.gcell_size
    if probe is None:
        probe = _self_density_probe(forest, gcell)
    total = 0
    for _ in range(passes):
        moved = 0
        for tree in forest.trees:
            if tree.n_steiner:
                moved += shift_tree_edges(tree, probe, gcell)
        total += moved
        if moved == 0:
            break
    return total


def _self_density_probe(forest: SteinerForest, gcell: float) -> CongestionProbe:
    """Estimate congestion from the forest's current segment density."""
    nx = max(1, int(np.ceil(forest.netlist.die_width / gcell)))
    ny = max(1, int(np.ceil(forest.netlist.die_height / gcell)))
    density = np.zeros((nx, ny), dtype=np.float64)

    def bucket(x: float, y: float) -> Tuple[int, int]:
        return (
            int(np.clip(x / gcell, 0, nx - 1)),
            int(np.clip(y / gcell, 0, ny - 1)),
        )

    for _, (x1, y1), (x2, y2) in forest.two_pin_segments():
        b1 = bucket(x1, y1)
        b2 = bucket(x2, y2)
        for bx in range(min(b1[0], b2[0]), max(b1[0], b2[0]) + 1):
            density[bx, b1[1]] += 1.0
        for by in range(min(b1[1], b2[1]), max(b1[1], b2[1]) + 1):
            density[b2[0], by] += 1.0

    def probe(x1: float, y1: float, x2: float, y2: float) -> float:
        b1 = bucket(x1, y1)
        b2 = bucket(x2, y2)
        cost = 0.0
        for bx in range(min(b1[0], b2[0]), max(b1[0], b2[0]) + 1):
            cost += density[bx, b1[1]]
        for by in range(min(b1[1], b2[1]), max(b1[1], b2[1]) + 1):
            cost += density[b2[0], by]
        return cost

    return probe
