"""Flat (whole-design) batched Steiner tree construction.

:func:`repro.steiner.rsmt.construct_tree` builds one tree at a time in
Python — dozens of tiny numpy calls per net.  This module constructs
the initial trees of **all nets at once** by bucketing nets by degree
over CSR pin arrays (same idiom as ``sta/flat.py``):

* **1 pin** — degenerate, no edges (only reachable with
  ``skip_degenerate=False``);
* **2 pins** — one batched corner kernel: the L-bend corner of every
  two-pin net of the design in two vector ops;
* **3 pins** — one batched rectilinear-median kernel: ``np.median``
  over a ``(G, 3, 2)`` block plus per-leg corner masks; nets whose
  median coincides with a pin fall back to the (rare) per-net star
  constructor, matching the reference case split;
* **4+ pins** — a batched Prim over padded ``(G, d, d)`` distance
  blocks (one ``argmin`` per MST step for *all* degree-``d`` nets
  simultaneously) followed by vectorized L-corner insertion toward the
  net centroid.  Nets with coincident node coordinates — the only case
  where the reference runs its Steinerization merge — are detected with
  one batched duplicate scan and handed to the exact per-net merge
  pass.

The contract is **bitwise equality**: for every net, the flat builder
produces the same pin order, the same Steiner coordinates (same floats,
not just close), and the same edge list as ``construct_tree``.  The
per-net constructor stays available as the oracle
(``build_forest(kernel="reference")``) and as the fallback arm a future
learned topology seeder will need.

Corner-choice rule (shared with ``rsmt._corner_for``): of the two
L-shapes between ``a`` and ``b``, take the corner closer (L1) to the
net centroid; ties — including every 2-pin net, whose centroid is the
segment midpoint and therefore always equidistant — break to the
``(b.x, a.y)`` corner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.steiner.rsmt import _merge_coincident_steiner, _star_tree
from repro.steiner.tree import SteinerTree

#: Shared empty Steiner block for degenerate/aligned nets.  Safe to
#: share across trees: zero-size in-place writes are no-ops and every
#: code path that grows/shrinks Steiner storage *reassigns* the
#: attribute instead of resizing in place.
_EMPTY_STEINER = np.zeros((0, 2), dtype=np.float64)

#: Degree-2 edge templates (copied per tree — edge lists are mutable).
_EDGES_ALIGNED = [(0, 1)]
_EDGES_BEND = [(0, 2), (2, 1)]


def _three_pin_templates() -> Dict[int, List[Tuple[int, int]]]:
    """Edge lists for the 8 corner patterns of a 3-pin median tree.

    Bit ``i`` of the key says leg ``i`` needs an L-corner.  Node 3 is
    the median; corner nodes are numbered 4.. in leg order, replicating
    the append order of the reference constructor.
    """
    out: Dict[int, List[Tuple[int, int]]] = {}
    for pattern in range(8):
        edges: List[Tuple[int, int]] = []
        next_id = 4
        for leg in range(3):
            if pattern >> leg & 1:
                edges.append((leg, next_id))
                edges.append((next_id, 3))
                next_id += 1
            else:
                edges.append((leg, 3))
        out[pattern] = edges
    return out


_TEMPLATES3 = _three_pin_templates()


def construct_trees_flat(
    net_indices: Sequence[int],
    net_pins: Sequence[List[int]],
    pos: np.ndarray,
) -> List[SteinerTree]:
    """Batched :func:`~repro.steiner.rsmt.construct_tree` over many nets.

    ``net_indices[i]`` / ``net_pins[i]`` describe net ``i`` (global pin
    ids into ``pos``); the returned trees are in input order and
    bitwise-equal to the per-net reference.  The ``pin_ids`` lists are
    stored on the trees without copying, matching the reference.
    """
    n = len(net_pins)
    if n == 0:
        return []
    pos = np.asarray(pos, dtype=np.float64).reshape(-1, 2)
    deg = np.fromiter((len(p) for p in net_pins), dtype=np.int64, count=n)
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=off[1:])
    total = int(off[-1])
    flat_pins = np.fromiter(
        (p for pins in net_pins for p in pins), dtype=np.int64, count=total
    )
    axy = pos[flat_pins]  # (P, 2) gathered pin coordinates, net-contiguous

    steiner_of: List[Optional[np.ndarray]] = [None] * n
    edges_of: List[Optional[List[Tuple[int, int]]]] = [None] * n
    star_hub: Dict[int, int] = {}  # net position -> hub pin (rare)
    merge_pending: List[int] = []  # net positions needing the merge pass

    # -- degree 1: no edges ------------------------------------------------
    for i in np.flatnonzero(deg < 2).tolist():
        steiner_of[i] = _EMPTY_STEINER
        edges_of[i] = []

    # -- degree 2: batched L-corner ---------------------------------------
    i2 = np.flatnonzero(deg == 2)
    if i2.size:
        a = axy[off[i2]]
        b = axy[off[i2] + 1]
        bend = (a[:, 0] != b[:, 0]) & (a[:, 1] != b[:, 1])
        # Centroid rule: the 2-pin centroid is the midpoint, always a
        # tie, so every bend takes the (b.x, a.y) corner.
        corners = np.stack([b[:, 0], a[:, 1]], axis=1)
        bend_l = bend.tolist()
        for k, i in enumerate(i2.tolist()):
            if bend_l[k]:
                steiner_of[i] = corners[k : k + 1]
                edges_of[i] = list(_EDGES_BEND)
            else:
                steiner_of[i] = _EMPTY_STEINER
                edges_of[i] = list(_EDGES_ALIGNED)

    # -- degree 3: batched rectilinear median ------------------------------
    i3 = np.flatnonzero(deg == 3)
    if i3.size:
        c = axy[off[i3][:, None] + np.arange(3)]  # (G, 3, 2)
        med = np.median(c, axis=1)  # exact middle value per axis
        pin_match = (c == med[:, None, :]).all(axis=2)  # (G, 3)
        on_pin = pin_match.any(axis=1)
        hub = np.argmax(pin_match, axis=1)  # first matching pin
        has = (c[:, :, 0] != med[:, None, 0]) & (c[:, :, 1] != med[:, None, 1])
        g3 = i3.size
        scratch = np.empty((g3, 4, 2), dtype=np.float64)
        scratch[:, 0] = med
        scratch[:, 1:, 0] = med[:, None, 0]  # corner x = median x
        scratch[:, 1:, 1] = c[:, :, 1]  # corner y = pin y
        mask = np.empty((g3, 4), dtype=bool)
        mask[:, 0] = True
        mask[:, 1:] = has
        mask[on_pin] = False  # star nets contribute no flat rows
        counts = mask.sum(axis=1)
        starts = np.zeros(g3 + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        rows = scratch[mask]  # net-major: [median, corners...] per net
        pattern = has[:, 0] + 2 * has[:, 1] + 4 * has[:, 2]
        on_pin_l = on_pin.tolist()
        hub_l = hub.tolist()
        pattern_l = pattern.tolist()
        starts_l = starts.tolist()
        for k, i in enumerate(i3.tolist()):
            if on_pin_l[k]:
                star_hub[i] = hub_l[k]
            else:
                steiner_of[i] = rows[starts_l[k] : starts_l[k + 1]]
                edges_of[i] = list(_TEMPLATES3[pattern_l[k]])

    # -- degree 4+: batched Prim + corner insertion ------------------------
    i4 = np.flatnonzero(deg >= 4)
    for d in np.unique(deg[i4]).tolist():
        idx = np.flatnonzero(deg == d)
        g = idx.size
        c = axy[off[idx][:, None] + np.arange(d)]  # (G, d, 2)
        dist = np.abs(c[:, :, None, :] - c[:, None, :, :]).sum(axis=-1)
        mst_u, mst_v = _batched_prim(dist)

        centroid = c.mean(axis=1)
        au = np.take_along_axis(c, mst_u[:, :, None], axis=1)  # (G, d-1, 2)
        av = np.take_along_axis(c, mst_v[:, :, None], axis=1)
        bend = (au[:, :, 0] != av[:, :, 0]) & (au[:, :, 1] != av[:, :, 1])
        c1 = np.stack([av[:, :, 0], au[:, :, 1]], axis=-1)
        c2 = np.stack([au[:, :, 0], av[:, :, 1]], axis=-1)
        d1 = np.abs(c1 - centroid[:, None, :]).sum(axis=-1)
        d2 = np.abs(c2 - centroid[:, None, :]).sum(axis=-1)
        corner = np.where((d1 <= d2)[:, :, None], c1, c2)

        counts = bend.sum(axis=1)
        starts = np.zeros(g + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        rows = corner[bend]  # net-major, MST-edge order

        # The reference merge pass only ever fires when two nodes share
        # exact coordinates; find those nets with one batched scan over
        # pins + inserted corners (complex view sorts lexicographically).
        nodes = np.full((g, 2 * d - 1), np.nan + 0j, dtype=np.complex128)
        nodes[:, :d] = c[:, :, 0] + 1j * c[:, :, 1]
        nodes[:, d:] = np.where(bend, corner[:, :, 0] + 1j * corner[:, :, 1], np.nan + 0j)
        nodes.sort(axis=1)
        dup = (nodes[:, 1:] == nodes[:, :-1]).any(axis=1)

        u_l = mst_u.tolist()
        v_l = mst_v.tolist()
        bend_l = bend.tolist()
        starts_l = starts.tolist()
        dup_l = dup.tolist()
        for k, i in enumerate(idx.tolist()):
            edges: List[Tuple[int, int]] = []
            next_id = d
            bk, uk, vk = bend_l[k], u_l[k], v_l[k]
            for j in range(d - 1):
                if bk[j]:
                    edges.append((uk[j], next_id))
                    edges.append((next_id, vk[j]))
                    next_id += 1
                else:
                    edges.append((uk[j], vk[j]))
            steiner_of[i] = rows[starts_l[k] : starts_l[k + 1]]
            edges_of[i] = edges
            if dup_l[k]:
                merge_pending.append(i)

    # -- materialize in net order ------------------------------------------
    off_l = off.tolist()
    deg_l = deg.tolist()
    trees: List[SteinerTree] = []
    trusted = SteinerTree._trusted
    for i in range(n):
        pins = net_pins[i]
        pin_xy = axy[off_l[i] : off_l[i] + deg_l[i]]
        hub = star_hub.get(i)
        if hub is not None:
            trees.append(_star_tree(net_indices[i], pins, pin_xy, hub))
        else:
            trees.append(
                trusted(net_indices[i], pins, pin_xy, steiner_of[i], edges_of[i])
            )

    # Exact Steinerization for the rare coincident-coordinate nets: the
    # reference merge/prune pass is a no-op for every other tree, so
    # running it only here preserves bitwise equality.
    for i in merge_pending:
        tree = trees[i]
        _merge_coincident_steiner(tree)
        tree.prune_leaf_steiner()
        tree.validate()
    return trees


def _batched_prim(dist: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Prim MST over every ``(d, d)`` distance block of ``dist`` at once.

    Replicates :func:`repro.steiner.rsmt._prim_mst` exactly — same seed
    node, same ``argmin`` tie-breaking (lowest index), same update rule
    — but one vectorized step grows the tree of *all* nets together.
    Returns ``(u, v)`` arrays of shape ``(G, d-1)`` in edge-pick order.
    """
    g, d = dist.shape[0], dist.shape[1]
    lanes = np.arange(g)
    in_tree = np.zeros((g, d), dtype=bool)
    in_tree[:, 0] = True
    best_dist = dist[:, 0, :].copy()
    best_from = np.zeros((g, d), dtype=np.int64)
    mst_u = np.empty((g, d - 1), dtype=np.int64)
    mst_v = np.empty((g, d - 1), dtype=np.int64)
    for step in range(d - 1):
        candidates = np.where(in_tree, np.inf, best_dist)
        nxt = np.argmin(candidates, axis=1)
        mst_u[:, step] = best_from[lanes, nxt]
        mst_v[:, step] = nxt
        in_tree[lanes, nxt] = True
        dist_new = dist[lanes, nxt, :]
        closer = dist_new < best_dist
        best_dist = np.where(closer, dist_new, best_dist)
        best_from = np.where(closer, nxt[:, None], best_from)
    return mst_u, mst_v
