"""Steiner tree substrate.

Implements what FLUTE + edge shifting provide in the paper's flow:
rectilinear Steiner tree construction per net, a forest container with
flat movable-coordinate views (the optimization variables of TSteiner),
and congestion-driven edge shifting.
"""

from repro.steiner.tree import SteinerTree
from repro.steiner.forest import SteinerForest, build_forest
from repro.steiner.rsmt import construct_tree
from repro.steiner.edge_shifting import shift_edges

__all__ = [
    "SteinerTree",
    "SteinerForest",
    "build_forest",
    "construct_tree",
    "shift_edges",
]
