"""Steiner tree substrate.

Implements what FLUTE + edge shifting provide in the paper's flow:
rectilinear Steiner tree construction per net, a forest container with
flat movable-coordinate views (the optimization variables of TSteiner),
and congestion-driven edge shifting.
"""

from repro.steiner.tree import SteinerTree
from repro.steiner.forest import SteinerForest, build_forest, clear_forest_cache
from repro.steiner.rsmt import construct_tree
from repro.steiner.flat_build import construct_trees_flat
from repro.steiner.edge_shifting import shift_edges

__all__ = [
    "SteinerTree",
    "SteinerForest",
    "build_forest",
    "clear_forest_cache",
    "construct_tree",
    "construct_trees_flat",
    "shift_edges",
]
