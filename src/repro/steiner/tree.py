"""Single-net Steiner tree.

Node numbering convention: nodes ``0 .. n_pins-1`` are pin nodes in the
order of ``pin_ids`` (index 0 is always the net's driver); nodes
``n_pins .. n_pins+n_steiner-1`` are Steiner nodes.  Pin positions are
fixed (owned by placement); Steiner positions are the movable state.

Edges are undirected pairs; a valid tree has exactly
``n_nodes - 1`` edges and is connected.  Edge length is rectilinear
(L1), matching how each two-pin segment is realized as an L-shaped
route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TreeTopology:
    """Driver-rooted integer-array view of one tree's topology.

    Memoized on the tree (topology never changes during refinement,
    only coordinates — Definition 1 of the paper) so repeated timing
    queries pay the BFS / edge-index construction exactly once.
    """

    parent: np.ndarray  # (n_nodes,) parent node, -1 at the driver
    bfs_order: np.ndarray  # (n_reached,) BFS order from the driver
    depth: np.ndarray  # (n_nodes,) BFS depth from the driver
    directed: np.ndarray  # (n_edges, 2) (parent, child), child ascending
    dir_edge_local: np.ndarray  # (n_edges,) undirected edge index per row
    directed_list: List[Tuple[int, int]]  # directed as python tuples


@dataclass
class SteinerTree:
    """Steiner tree of one net."""

    net_index: int
    pin_ids: List[int]  # global pin indices; [0] is the driver
    pin_xy: np.ndarray  # (n_pins, 2) fixed coordinates
    steiner_xy: np.ndarray  # (n_steiner, 2) movable coordinates
    edges: List[Tuple[int, int]] = field(default_factory=list)
    _topo: Optional[TreeTopology] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.pin_xy = np.asarray(self.pin_xy, dtype=np.float64).reshape(-1, 2)
        self.steiner_xy = np.asarray(self.steiner_xy, dtype=np.float64).reshape(-1, 2)
        if len(self.pin_ids) != self.pin_xy.shape[0]:
            raise ValueError("pin_ids and pin_xy disagree")
        self._topo = None

    @classmethod
    def _trusted(
        cls,
        net_index: int,
        pin_ids: List[int],
        pin_xy: np.ndarray,
        steiner_xy: np.ndarray,
        edges: List[Tuple[int, int]],
    ) -> "SteinerTree":
        """Construct without the ``__post_init__`` normalization pass.

        For callers that already hold well-formed ``(n, 2)`` float64
        arrays — the flat batched builder materializes thousands of
        trees per design, and the per-tree ``asarray``/``reshape``
        round-trips dominate its runtime otherwise.
        """
        tree = cls.__new__(cls)
        tree.net_index = net_index
        tree.pin_ids = pin_ids
        tree.pin_xy = pin_xy
        tree.steiner_xy = steiner_xy
        tree.edges = edges
        tree._topo = None
        return tree

    # ------------------------------------------------------------------
    @property
    def n_pins(self) -> int:
        return len(self.pin_ids)

    @property
    def n_steiner(self) -> int:
        return self.steiner_xy.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.n_pins + self.n_steiner

    def node_xy(self) -> np.ndarray:
        """(n_nodes, 2) positions, pins first then Steiner nodes."""
        if self.n_steiner == 0:
            return self.pin_xy.copy()
        return np.vstack([self.pin_xy, self.steiner_xy])

    def is_steiner_node(self, node: int) -> bool:
        return node >= self.n_pins

    def edge_lengths(self) -> np.ndarray:
        """Rectilinear length of every edge."""
        xy = self.node_xy()
        if not self.edges:
            return np.zeros(0)
        e = np.asarray(self.edges, dtype=np.int64)
        d = np.abs(xy[e[:, 0]] - xy[e[:, 1]])
        return d[:, 0] + d[:, 1]

    def wirelength(self) -> float:
        return float(self.edge_lengths().sum())

    # ------------------------------------------------------------------
    def topology(self) -> TreeTopology:
        """Driver-rooted topology arrays, memoized until edges change.

        Any method that rewrites ``edges`` must call
        :meth:`invalidate_topology`; moving coordinates does not.
        """
        topo = self._topo
        if topo is not None:
            return topo
        n = self.n_nodes
        adj = self.adjacency()
        parent = np.full(n, -1, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        order = [0]
        seen = [False] * n
        seen[0] = True
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    parent[v] = u
                    depth[v] = depth[u] + 1
                    order.append(v)
        slot: dict = {}
        for i, (u, v) in enumerate(self.edges):
            slot[(u, v)] = i
            slot[(v, u)] = i
        children = np.flatnonzero(parent >= 0)
        if children.size:
            directed = np.stack([parent[children], children], axis=1)
        else:
            directed = np.zeros((0, 2), dtype=np.int64)
        directed_list = [(int(p), int(c)) for p, c in directed]
        dir_local = np.asarray(
            [slot[pc] for pc in directed_list], dtype=np.int64
        )
        topo = TreeTopology(
            parent=parent,
            bfs_order=np.asarray(order, dtype=np.int64),
            depth=depth,
            directed=directed,
            dir_edge_local=dir_local,
            directed_list=directed_list,
        )
        self._topo = topo
        return topo

    def invalidate_topology(self) -> None:
        """Drop memoized topology after an edge rewrite."""
        self._topo = None

    def adjacency(self) -> List[List[int]]:
        adj: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for u, v in self.edges:
            adj[u].append(v)
            adj[v].append(u)
        return adj

    def validate(self) -> None:
        """Check tree-ness: edge count, connectivity, index bounds."""
        n = self.n_nodes
        if n == 1:
            if self.edges:
                raise ValueError("single-node tree must have no edges")
            return
        if len(self.edges) != n - 1:
            raise ValueError(
                f"net {self.net_index}: {len(self.edges)} edges for {n} nodes (want {n - 1})"
            )
        for u, v in self.edges:
            if not (0 <= u < n and 0 <= v < n) or u == v:
                raise ValueError(f"net {self.net_index}: bad edge ({u}, {v})")
        seen = [False] * n
        stack = [0]
        seen[0] = True
        adj = self.adjacency()
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        if not all(seen):
            raise ValueError(f"net {self.net_index}: tree is disconnected")

    def driver_paths(self) -> List[List[int]]:
        """Node path from the driver (node 0) to every sink pin node."""
        parent = self._parents_from_driver()
        paths: List[List[int]] = []
        for sink_node in range(1, self.n_pins):
            path = [sink_node]
            while path[-1] != 0:
                path.append(parent[path[-1]])
            paths.append(list(reversed(path)))
        return paths

    def _parents_from_driver(self) -> List[int]:
        return self.topology().parent.tolist()

    def directed_edges(self) -> List[Tuple[int, int]]:
        """Edges oriented away from the driver (parent -> child)."""
        return self.topology().directed_list

    def segments(self) -> Iterator[Tuple[Tuple[float, float], Tuple[float, float]]]:
        """Yield ((x1, y1), (x2, y2)) per edge at current positions."""
        xy = self.node_xy()
        for u, v in self.edges:
            yield (tuple(xy[u]), tuple(xy[v]))

    def copy(self) -> "SteinerTree":
        return SteinerTree(
            net_index=self.net_index,
            pin_ids=list(self.pin_ids),
            pin_xy=self.pin_xy.copy(),
            steiner_xy=self.steiner_xy.copy(),
            edges=list(self.edges),
        )

    def prune_degree2_steiner(self) -> None:
        """Remove Steiner nodes of degree 2 whose removal keeps a tree.

        Such nodes add optimization variables without adding topology;
        construction calls this to normalize trees.  Degree-2 corner
        points are *kept* only if their two edges are not collinear —
        the corner carries geometric meaning (an L-bend).
        """
        changed = True
        while changed:
            changed = False
            adj = self.adjacency()
            xy = self.node_xy()
            for node in range(self.n_pins, self.n_nodes):
                if len(adj[node]) != 2:
                    continue
                a, b = adj[node]
                # Collinear if the node lies on the bounding path of a-b
                # in one coordinate: both edges purely horizontal or
                # both purely vertical through the node.
                same_x = xy[a][0] == xy[node][0] == xy[b][0]
                same_y = xy[a][1] == xy[node][1] == xy[b][1]
                if not (same_x or same_y):
                    continue
                self._remove_steiner_node(node, a, b)
                changed = True
                break
        self.invalidate_topology()

    def prune_leaf_steiner(self) -> None:
        """Remove Steiner nodes of degree <= 1 (never useful in a tree)."""
        changed = True
        while changed:
            changed = False
            adj = self.adjacency()
            for node in range(self.n_pins, self.n_nodes):
                if len(adj[node]) <= 1:
                    self.edges = [e for e in self.edges if node not in e]
                    local = node - self.n_pins
                    self.steiner_xy = np.delete(self.steiner_xy, local, axis=0)
                    remap = lambda u: u - 1 if u > node else u
                    self.edges = [(remap(u), remap(v)) for u, v in self.edges]
                    self.invalidate_topology()
                    changed = True
                    break

    def _remove_steiner_node(self, node: int, a: int, b: int) -> None:
        new_edges = [e for e in self.edges if node not in e]
        new_edges.append((a, b))
        # Renumber: drop the Steiner row, shift higher node ids down.
        local = node - self.n_pins
        self.steiner_xy = np.delete(self.steiner_xy, local, axis=0)
        remap = lambda u: u - 1 if u > node else u
        self.edges = [(remap(u), remap(v)) for u, v in new_edges]
        self.invalidate_topology()
