"""Rectilinear Steiner tree construction (FLUTE substitute).

Strategy by net degree:

* 1 pin — degenerate, no edges;
* 2 pins — direct connection with one corner Steiner node when the
  pins are not axis-aligned (the L-bend);
* 3 pins — the exact rectilinear median point ``(median(x), median(y))``
  is the optimal single Steiner point;
* 4+ pins — rectilinear minimum spanning tree (Prim) over the pins,
  followed by L-corner insertion per MST edge and a Steinerization pass
  that merges corners landing on existing nodes.

The result is wirelength-competitive with FLUTE for the net degrees
real netlists are dominated by (97 %+ of nets have <= 4 pins) and, more
importantly for this reproduction, yields movable Steiner nodes on
essentially every net — the degrees of freedom TSteiner optimizes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.steiner.tree import SteinerTree


def _prim_mst(points: np.ndarray) -> List[Tuple[int, int]]:
    """Rectilinear MST over ``points`` via dense Prim (fine to ~hundreds)."""
    n = points.shape[0]
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best_dist = np.abs(points - points[0]).sum(axis=1)
    best_from = np.zeros(n, dtype=np.int64)
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(in_tree, np.inf, best_dist)
        nxt = int(np.argmin(candidates))
        edges.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        dist_new = np.abs(points - points[nxt]).sum(axis=1)
        closer = dist_new < best_dist
        best_dist = np.where(closer, dist_new, best_dist)
        best_from = np.where(closer, nxt, best_from)
    return edges


def _corner_for(a: np.ndarray, b: np.ndarray, toward: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """Corner of the L-route from ``a`` to ``b``; None if axis-aligned.

    Two L-shapes exist; pick the corner closer (L1) to ``toward`` — the
    net centroid — so initial trees are compact, breaking ties to the
    ``(b.x, a.y)`` corner.  ``toward=None`` means the segment midpoint
    (the centroid of a 2-pin net): both corners of the bounding box are
    exactly L1-equidistant from its center, so the tie-break applies.
    That tie is resolved symbolically — a floating-point midpoint is an
    ulp off the true center and would break the exact tie at random —
    which is why every kernel (per-net and flat batched) shares this
    one rule yet never computes the midpoint distance.
    """
    if a[0] == b[0] or a[1] == b[1]:
        return None
    c1 = np.array([b[0], a[1]])
    c2 = np.array([a[0], b[1]])
    if toward is None:
        # Midpoint centroid: d1 == d2 exactly, tie-break picks c1.
        return c1
    d1 = np.abs(c1 - toward).sum()
    d2 = np.abs(c2 - toward).sum()
    return c1 if d1 <= d2 else c2


def construct_tree(net_index: int, pin_ids: List[int], pin_xy: np.ndarray) -> SteinerTree:
    """Build the initial Steiner tree for one net."""
    pin_xy = np.asarray(pin_xy, dtype=np.float64).reshape(-1, 2)
    n = pin_xy.shape[0]
    if n != len(pin_ids):
        raise ValueError("pin_ids and pin_xy disagree")

    if n == 1:
        return SteinerTree(net_index, pin_ids, pin_xy, np.zeros((0, 2)), [])

    if n == 2:
        corner = _corner_for(pin_xy[0], pin_xy[1])
        if corner is None:
            return SteinerTree(net_index, pin_ids, pin_xy, np.zeros((0, 2)), [(0, 1)])
        return SteinerTree(
            net_index, pin_ids, pin_xy, corner.reshape(1, 2), [(0, 2), (2, 1)]
        )

    if n == 3:
        median = np.median(pin_xy, axis=0)
        if any(np.all(median == pin_xy[i]) for i in range(3)):
            # Median coincides with a pin: star from that pin, with
            # corner points for non-aligned legs.
            hub = next(i for i in range(3) if np.all(median == pin_xy[i]))
            return _star_tree(net_index, pin_ids, pin_xy, hub)
        steiner = [median]
        edges = []
        node_median = 3
        next_id = 4
        for i in range(3):
            corner = _corner_for(pin_xy[i], median)
            if corner is None:
                edges.append((i, node_median))
            else:
                steiner.append(corner)
                edges.append((i, next_id))
                edges.append((next_id, node_median))
                next_id += 1
        tree = SteinerTree(net_index, pin_ids, pin_xy, np.array(steiner), edges)
        tree.prune_degree2_steiner()
        return tree

    return _mst_based_tree(net_index, pin_ids, pin_xy)


def _star_tree(net_index: int, pin_ids: List[int], pin_xy: np.ndarray, hub: int) -> SteinerTree:
    """Connect every pin to pin ``hub`` with L-corners as needed."""
    steiner: List[np.ndarray] = []
    edges: List[Tuple[int, int]] = []
    next_id = pin_xy.shape[0]
    for i in range(pin_xy.shape[0]):
        if i == hub:
            continue
        corner = _corner_for(pin_xy[i], pin_xy[hub])
        if corner is None:
            edges.append((i, hub))
        else:
            steiner.append(corner)
            edges.append((i, next_id))
            edges.append((next_id, hub))
            next_id += 1
    steiner_arr = np.array(steiner).reshape(-1, 2) if steiner else np.zeros((0, 2))
    return SteinerTree(net_index, pin_ids, pin_xy, steiner_arr, edges)


def _mst_based_tree(net_index: int, pin_ids: List[int], pin_xy: np.ndarray) -> SteinerTree:
    """RMST + L-corner Steinerization for nets of degree >= 4."""
    n = pin_xy.shape[0]
    centroid = pin_xy.mean(axis=0)
    mst_edges = _prim_mst(pin_xy)

    steiner: List[np.ndarray] = []
    edges: List[Tuple[int, int]] = []
    next_id = n
    for u, v in mst_edges:
        corner = _corner_for(pin_xy[u], pin_xy[v], toward=centroid)
        if corner is None:
            edges.append((u, v))
        else:
            steiner.append(corner)
            edges.append((u, next_id))
            edges.append((next_id, v))
            next_id += 1

    steiner_arr = np.array(steiner).reshape(-1, 2) if steiner else np.zeros((0, 2))
    tree = SteinerTree(net_index, pin_ids, pin_xy, steiner_arr, edges)
    _merge_coincident_steiner(tree)
    tree.prune_leaf_steiner()
    tree.validate()
    return tree


def _merge_coincident_steiner(tree: SteinerTree) -> None:
    """Merge Steiner nodes that landed on identical coordinates.

    MST corners frequently coincide (shared trunk patterns); merging
    them produces proper degree-3+ Steiner topology instead of parallel
    duplicated points, and removes zero-length edges.
    """
    while True:
        xy = tree.node_xy()
        coords = {}
        dup: Optional[Tuple[int, int]] = None
        for node in range(tree.n_nodes):
            key = (float(xy[node][0]), float(xy[node][1]))
            if key in coords:
                keep = coords[key]
                # Prefer keeping a pin node over a Steiner node.
                if tree.is_steiner_node(keep) and not tree.is_steiner_node(node):
                    keep, node = node, keep
                if tree.is_steiner_node(node):
                    dup = (keep, node)
                    break
            else:
                coords[key] = node
        if dup is None:
            return
        keep, drop = dup
        new_edges = []
        for u, v in tree.edges:
            u2 = keep if u == drop else u
            v2 = keep if v == drop else v
            if u2 != v2 and (u2, v2) not in new_edges and (v2, u2) not in new_edges:
                new_edges.append((u2, v2))
        local = drop - tree.n_pins
        tree.steiner_xy = np.delete(tree.steiner_xy, local, axis=0)
        remap = lambda w: w - 1 if w > drop else w
        tree.edges = [(remap(u), remap(v)) for u, v in new_edges]
        _break_cycles(tree)


def _break_cycles(tree: SteinerTree) -> None:
    """Drop redundant edges if merging created a cycle (keep spanning tree)."""
    n = tree.n_nodes
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    kept: List[Tuple[int, int]] = []
    xy = tree.node_xy()
    # Keep shortest edges first so cycles drop their longest chord.
    for u, v in sorted(tree.edges, key=lambda e: float(np.abs(xy[e[0]] - xy[e[1]]).sum())):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            kept.append((u, v))
    tree.edges = kept
