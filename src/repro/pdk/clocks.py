"""Clock constraint specification.

A single-clock synchronous design model: every register is clocked by
one clock of ``period`` ns with optional source ``latency`` and
``uncertainty`` (subtracted from required times, the usual sign-off
pessimism).  Primary inputs launch at ``input_delay`` after the clock
edge; primary outputs must arrive ``output_delay`` before the next one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockSpec:
    """Timing constraints for a single-clock design."""

    period: float  # ns
    uncertainty: float = 0.05  # ns
    latency: float = 0.0  # ns, source insertion delay
    input_delay: float = 0.0  # ns at primary inputs
    output_delay: float = 0.0  # ns margin at primary outputs

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("clock period must be positive")
        if self.uncertainty < 0:
            raise ValueError("uncertainty cannot be negative")

    def required_at_register(self, setup_time: float) -> float:
        """Required arrival time at a register data pin."""
        return self.period + self.latency - setup_time - self.uncertainty

    def required_at_output(self) -> float:
        """Required arrival time at a primary output."""
        return self.period - self.output_delay - self.uncertainty

    def launch_time(self) -> float:
        """Arrival time at register clock pins / PI launch edge."""
        return self.latency

    def scaled(self, factor: float) -> "ClockSpec":
        """A copy with the period scaled by ``factor`` (for sweeps)."""
        return ClockSpec(
            period=self.period * factor,
            uncertainty=self.uncertainty,
            latency=self.latency,
            input_delay=self.input_delay,
            output_delay=self.output_delay,
        )
