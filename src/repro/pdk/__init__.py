"""Technology substrate: routing stack, wire RC and NLDM cell library.

Stands in for the SkyWater 130 nm PDK used by the paper.  The values are
130 nm-plausible rather than extracted, but the *structure* is faithful:
per-layer resistance/capacitance (so layer assignment changes delay),
via resistance, lookup-table (input-slew x output-load) cell delay and
output-slew models, and a clock specification that defines required
times at endpoints.
"""

from repro.pdk.technology import (
    RoutingLayer,
    Technology,
    ViaDef,
    default_technology,
)
from repro.pdk.liberty import (
    CellLibrary,
    CellType,
    LookupTable,
    TimingArc,
    TimingSense,
    default_library,
)
from repro.pdk.clocks import ClockSpec
from repro.pdk.corners import Corner, PRESET_CORNERS, get_corner

__all__ = [
    "RoutingLayer",
    "Technology",
    "ViaDef",
    "default_technology",
    "CellLibrary",
    "CellType",
    "LookupTable",
    "TimingArc",
    "TimingSense",
    "default_library",
    "ClockSpec",
    "Corner",
    "PRESET_CORNERS",
    "get_corner",
]
