"""PVT corner model for multi-corner sign-off (docs/MCMM.md).

A :class:`Corner` bundles the derating knobs one process/voltage/
temperature point applies on top of the nominal technology data:

* ``cell_derate`` scales every NLDM cell delay and output slew;
* ``wire_r_derate`` / ``wire_c_derate`` scale interconnect resistance
  and wire capacitance (pin caps are library data and stay nominal);
* ``setup_margin`` / ``hold_margin`` add to the library setup/hold
  requirements at register data pins;
* ``uncertainty_scale`` scales the clock uncertainty (slow corners are
  usually signed off with extra jitter pessimism).

``check`` selects which analysis the corner participates in: a
``"setup"`` corner is timed with latest (max) arrivals against the
capture edge, a ``"hold"`` corner with earliest (min) arrivals against
the same-cycle race condition.  The named presets below are
130 nm-plausible rather than extracted, matching the rest of the PDK
substrate (docs/SUBSTRATE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Corner:
    """One PVT corner: derates applied on top of the nominal library."""

    name: str
    check: str = "setup"  # "setup" (late/max) or "hold" (early/min)
    cell_derate: float = 1.0
    wire_r_derate: float = 1.0
    wire_c_derate: float = 1.0
    setup_margin: float = 0.0  # ns, added to library setup times
    hold_margin: float = 0.0  # ns, added to the hold requirement
    uncertainty_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.check not in ("setup", "hold"):
            raise ValueError(f"corner check must be 'setup' or 'hold', got {self.check!r}")
        for field in ("cell_derate", "wire_r_derate", "wire_c_derate", "uncertainty_scale"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.setup_margin < 0 or self.hold_margin < 0:
            raise ValueError("margins cannot be negative")

    @property
    def is_neutral(self) -> bool:
        """True when the corner leaves nominal timing untouched."""
        return (
            self.check == "setup"
            and self.cell_derate == 1.0
            and self.wire_r_derate == 1.0
            and self.wire_c_derate == 1.0
            and self.setup_margin == 0.0
            and self.hold_margin == 0.0
            and self.uncertainty_scale == 1.0
        )

    @property
    def delay_scale(self) -> float:
        """Scalar first-order path-delay scale under this corner.

        Cell delay scales with ``cell_derate``; an Elmore wire delay is
        a sum of R*C products, so uniform R and C derates scale it by
        their product — the geometric mean ``sqrt(r*c)`` applied twice.
        Used by the refinement surrogate (repro.mcmm.penalty), not by
        the exact batched STA, which derates R and C separately.
        """
        return self.cell_derate * math.sqrt(self.wire_r_derate * self.wire_c_derate)

    @property
    def wire_key(self) -> Tuple[float, float]:
        """Hashable (R derate, C derate) pair — scenarios sharing it
        share one Elmore pass in the batched STA."""
        return (self.wire_r_derate, self.wire_c_derate)


#: Named corner presets.  ``typ`` is the exact nominal point the
#: single-scenario engine has always timed.
PRESET_CORNERS: Dict[str, Corner] = {
    c.name: c
    for c in (
        Corner("typ"),
        Corner(
            "slow_setup",
            check="setup",
            cell_derate=1.12,
            wire_r_derate=1.10,
            wire_c_derate=1.06,
            setup_margin=0.01,
            uncertainty_scale=1.2,
        ),
        Corner(
            "fast_hold",
            check="hold",
            cell_derate=0.88,
            wire_r_derate=0.92,
            wire_c_derate=0.96,
            hold_margin=0.005,
        ),
        Corner(
            "slow_cold",
            check="setup",
            cell_derate=1.06,
            wire_r_derate=1.15,
            wire_c_derate=1.02,
            setup_margin=0.005,
            uncertainty_scale=1.1,
        ),
        Corner(
            "fast_setup",
            check="setup",
            cell_derate=0.90,
            wire_r_derate=0.94,
            wire_c_derate=0.97,
        ),
    )
}


def get_corner(name: str) -> Corner:
    """Look a preset corner up by name."""
    try:
        return PRESET_CORNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown corner {name!r}; presets: {', '.join(sorted(PRESET_CORNERS))}"
        ) from None
