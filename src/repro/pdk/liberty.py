"""NLDM-style standard-cell timing library.

Each cell arc carries two 2-D lookup tables indexed by (input slew,
output load): propagation delay and output slew.  Lookup uses bilinear
interpolation with clamped extrapolation, matching how sign-off STA
engines consume ``.lib`` data.

The default library is generated parametrically: per-cell drive
resistance, intrinsic delay and input capacitance produce LUT grids via
a first-order model ``delay = d0 + R_drive * C_load + k_s * slew_in``.
Generating the grids (instead of hard-coding the closed form into the
STA engine) keeps the engine honest — it only ever sees tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class TimingSense(enum.Enum):
    """Unateness of a combinational arc (affects rise/fall pairing)."""

    POSITIVE = "positive_unate"
    NEGATIVE = "negative_unate"
    NON_UNATE = "non_unate"


@dataclass
class LookupTable:
    """2-D NLDM table: rows = input slew (ns), cols = output load (pF)."""

    slew_axis: np.ndarray
    load_axis: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.slew_axis = np.asarray(self.slew_axis, dtype=np.float64)
        self.load_axis = np.asarray(self.load_axis, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (self.slew_axis.size, self.load_axis.size):
            raise ValueError("LUT value grid does not match axes")
        if np.any(np.diff(self.slew_axis) <= 0) or np.any(np.diff(self.load_axis) <= 0):
            raise ValueError("LUT axes must be strictly increasing")

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with clamping outside the grid."""
        s = float(np.clip(slew, self.slew_axis[0], self.slew_axis[-1]))
        c = float(np.clip(load, self.load_axis[0], self.load_axis[-1]))
        i = int(np.clip(np.searchsorted(self.slew_axis, s) - 1, 0, self.slew_axis.size - 2))
        j = int(np.clip(np.searchsorted(self.load_axis, c) - 1, 0, self.load_axis.size - 2))
        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        c0, c1 = self.load_axis[j], self.load_axis[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        v = self.values
        return float(
            v[i, j] * (1 - ts) * (1 - tc)
            + v[i + 1, j] * ts * (1 - tc)
            + v[i, j + 1] * (1 - ts) * tc
            + v[i + 1, j + 1] * ts * tc
        )

    def lookup_many(self, slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
        """Vectorized bilinear lookup."""
        s = np.clip(np.asarray(slews, dtype=np.float64), self.slew_axis[0], self.slew_axis[-1])
        c = np.clip(np.asarray(loads, dtype=np.float64), self.load_axis[0], self.load_axis[-1])
        i = np.clip(np.searchsorted(self.slew_axis, s) - 1, 0, self.slew_axis.size - 2)
        j = np.clip(np.searchsorted(self.load_axis, c) - 1, 0, self.load_axis.size - 2)
        s0, s1 = self.slew_axis[i], self.slew_axis[i + 1]
        c0, c1 = self.load_axis[j], self.load_axis[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        v = self.values
        return (
            v[i, j] * (1 - ts) * (1 - tc)
            + v[i + 1, j] * ts * (1 - tc)
            + v[i, j + 1] * (1 - ts) * tc
            + v[i + 1, j + 1] * ts * tc
        )


@dataclass
class TimingArc:
    """One input-pin -> output-pin arc of a cell."""

    from_pin: str
    to_pin: str
    sense: TimingSense
    delay: LookupTable
    output_slew: LookupTable


@dataclass
class CellType:
    """A library cell: pins, capacitances and timing arcs.

    Sequential cells (``is_sequential``) have a clock pin; their data
    input terminates timing paths (an endpoint) and their output starts
    new ones with a clock-to-q arc.
    """

    name: str
    input_pins: List[str]
    output_pins: List[str]
    pin_caps: Dict[str, float]  # pF per input pin
    arcs: List[TimingArc]
    drive_res: float  # kOhm, characteristic output resistance
    is_sequential: bool = False
    clock_pin: Optional[str] = None
    setup_time: float = 0.0  # ns, sequential only
    clk_to_q: float = 0.0  # ns intrinsic, sequential only
    area: float = 1.0  # in sites

    def __post_init__(self) -> None:
        if self.is_sequential and not self.clock_pin:
            raise ValueError(f"sequential cell {self.name} needs a clock pin")
        for arc in self.arcs:
            if arc.to_pin not in self.output_pins:
                raise ValueError(f"{self.name}: arc drives unknown pin {arc.to_pin}")

    def input_cap(self, pin: str) -> float:
        return self.pin_caps[pin]

    def arcs_to(self, output_pin: str) -> List[TimingArc]:
        return [a for a in self.arcs if a.to_pin == output_pin]


@dataclass
class CellLibrary:
    """Named collection of cell types."""

    name: str
    cells: Dict[str, CellType] = field(default_factory=dict)

    def add(self, cell: CellType) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name}")
        self.cells[cell.name] = cell

    def __getitem__(self, name: str) -> CellType:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def combinational(self) -> List[CellType]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def sequential(self) -> List[CellType]:
        return [c for c in self.cells.values() if c.is_sequential]

    def variants_of(self, cell_type: CellType) -> List[CellType]:
        """Drive-strength variants of ``cell_type``, weakest first.

        Variants share the family prefix (the name up to the ``_X<k>``
        drive suffix), the pin interface, and sequentiality.  Ordering
        is by parsed drive suffix then name — never dict iteration
        order — so resizing ECOs are deterministic across processes.
        The list always includes ``cell_type`` itself.
        """
        family, _ = _split_drive(cell_type.name)
        out = [
            c
            for c in self.cells.values()
            if _split_drive(c.name)[0] == family
            and c.is_sequential == cell_type.is_sequential
            and c.input_pins == cell_type.input_pins
            and c.output_pins == cell_type.output_pins
        ]
        out.sort(key=lambda c: (_split_drive(c.name)[1], c.name))
        return out


def _split_drive(name: str) -> Tuple[str, float]:
    """``"BUF_X2" -> ("BUF", 2.0)``; no parseable suffix -> drive 0."""
    head, sep, tail = name.rpartition("_X")
    if sep:
        try:
            return head, float(tail)
        except ValueError:
            pass
    return name, 0.0


_SLEW_AXIS = np.array([0.01, 0.05, 0.15, 0.40, 1.00, 2.50])  # ns
_LOAD_AXIS = np.array([0.001, 0.005, 0.020, 0.060, 0.150, 0.400])  # pF


def _make_tables(d0: float, drive_res: float, slew_sens: float) -> Tuple[LookupTable, LookupTable]:
    """Generate (delay, output slew) LUTs from a first-order cell model."""
    slew_grid, load_grid = np.meshgrid(_SLEW_AXIS, _LOAD_AXIS, indexing="ij")
    delay = d0 + drive_res * load_grid + slew_sens * slew_grid
    out_slew = 0.35 * d0 + 2.2 * drive_res * load_grid + 0.10 * slew_grid
    return (
        LookupTable(_SLEW_AXIS, _LOAD_AXIS, delay),
        LookupTable(_SLEW_AXIS, _LOAD_AXIS, out_slew),
    )


def _comb_cell(
    name: str,
    inputs: Sequence[str],
    d0: float,
    drive_res: float,
    in_cap: float,
    sense: TimingSense = TimingSense.NEGATIVE,
    area: float = 1.0,
    slew_sens: float = 0.18,
) -> CellType:
    arcs = []
    for pin in inputs:
        delay_lut, slew_lut = _make_tables(d0, drive_res, slew_sens)
        arcs.append(TimingArc(pin, "Y", sense, delay_lut, slew_lut))
    return CellType(
        name=name,
        input_pins=list(inputs),
        output_pins=["Y"],
        pin_caps={p: in_cap for p in inputs},
        arcs=arcs,
        drive_res=drive_res,
        area=area,
    )


def default_library() -> CellLibrary:
    """A compact 130 nm-flavoured library.

    Drive resistances span roughly 8x between the weakest inverter and
    the strongest buffer so fanout/load effects are pronounced — this
    is what makes Steiner-point placement visible in sign-off timing.
    """
    lib = CellLibrary(name="sim130_stdcells")
    lib.add(_comb_cell("INV_X1", ["A"], d0=0.030, drive_res=6.0, in_cap=0.0022, area=1.0))
    lib.add(_comb_cell("INV_X2", ["A"], d0=0.028, drive_res=3.2, in_cap=0.0041, area=1.5))
    lib.add(_comb_cell("INV_X4", ["A"], d0=0.026, drive_res=1.7, in_cap=0.0080, area=2.5))
    lib.add(_comb_cell("BUF_X2", ["A"], d0=0.065, drive_res=3.0, in_cap=0.0038, sense=TimingSense.POSITIVE, area=2.0))
    lib.add(_comb_cell("BUF_X4", ["A"], d0=0.062, drive_res=1.6, in_cap=0.0072, sense=TimingSense.POSITIVE, area=3.0))
    lib.add(_comb_cell("NAND2_X1", ["A", "B"], d0=0.042, drive_res=5.4, in_cap=0.0025, area=1.5))
    lib.add(_comb_cell("NAND2_X2", ["A", "B"], d0=0.040, drive_res=2.9, in_cap=0.0047, area=2.0))
    lib.add(_comb_cell("NOR2_X1", ["A", "B"], d0=0.055, drive_res=6.8, in_cap=0.0026, area=1.5))
    lib.add(_comb_cell("AOI21_X1", ["A", "B", "C"], d0=0.068, drive_res=6.2, in_cap=0.0027, area=2.0))
    lib.add(_comb_cell("OAI21_X1", ["A", "B", "C"], d0=0.070, drive_res=6.4, in_cap=0.0027, area=2.0))
    lib.add(_comb_cell("XOR2_X1", ["A", "B"], d0=0.110, drive_res=5.8, in_cap=0.0044, sense=TimingSense.NON_UNATE, area=3.0))
    lib.add(_comb_cell("MUX2_X1", ["A", "B", "S"], d0=0.095, drive_res=5.5, in_cap=0.0031, sense=TimingSense.NON_UNATE, area=3.0))

    # D flip-flop: clk->Q launch arc; D is a path endpoint with setup.
    delay_lut, slew_lut = _make_tables(d0=0.180, drive_res=4.2, slew_sens=0.05)
    dff = CellType(
        name="DFF_X1",
        input_pins=["D", "CK"],
        output_pins=["Q"],
        pin_caps={"D": 0.0024, "CK": 0.0018},
        arcs=[TimingArc("CK", "Q", TimingSense.NON_UNATE, delay_lut, slew_lut)],
        drive_res=4.2,
        is_sequential=True,
        clock_pin="CK",
        setup_time=0.085,
        clk_to_q=0.180,
        area=6.0,
    )
    lib.add(dff)
    return lib
