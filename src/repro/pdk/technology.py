"""Routing stack description: metal layers, vias, grid geometry.

Units used throughout the repository:

* distance — micrometres (um)
* resistance — kilo-ohms (kOhm)
* capacitance — picofarads (pF)
* time — nanoseconds (ns); conveniently kOhm x pF = ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class RoutingLayer:
    """One metal layer of the routing stack.

    ``direction`` is the preferred routing direction: ``"H"`` layers
    carry horizontal wires, ``"V"`` vertical ones, matching the
    alternating HVHV stack global routers assume.
    """

    name: str
    index: int
    direction: str  # "H" or "V"
    res_per_um: float  # kOhm / um
    cap_per_um: float  # pF / um
    pitch: float  # um between adjacent tracks
    min_width: float  # um

    def __post_init__(self) -> None:
        if self.direction not in ("H", "V"):
            raise ValueError(f"layer {self.name}: direction must be 'H' or 'V'")
        if self.res_per_um <= 0 or self.cap_per_um <= 0:
            raise ValueError(f"layer {self.name}: RC must be positive")


@dataclass(frozen=True)
class ViaDef:
    """Via between two adjacent layers."""

    name: str
    lower: int
    upper: int
    resistance: float  # kOhm
    capacitance: float  # pF


@dataclass
class Technology:
    """Full routing technology: layers, vias and GCell geometry."""

    name: str
    layers: List[RoutingLayer]
    vias: List[ViaDef]
    gcell_size: float = 6.0  # um per GCell edge (~15 met2 tracks), CUGR-like
    site_width: float = 0.46  # um, standard-cell site
    row_height: float = 2.72  # um, standard-cell row

    def __post_init__(self) -> None:
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise ValueError("layer indices must be contiguous from 0")
        expected = {(v.lower, v.upper) for v in self.vias}
        for i in range(len(self.layers) - 1):
            if (i, i + 1) not in expected:
                raise ValueError(f"missing via between layers {i} and {i + 1}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer(self, index: int) -> RoutingLayer:
        return self.layers[index]

    def via_between(self, lower: int, upper: int) -> ViaDef:
        if upper < lower:
            lower, upper = upper, lower
        for via in self.vias:
            if via.lower == lower and via.upper == upper:
                return via
        raise KeyError(f"no via between layers {lower} and {upper}")

    def via_stack_resistance(self, from_layer: int, to_layer: int) -> float:
        """Total resistance of the via stack between two layers."""
        low, high = sorted((from_layer, to_layer))
        return sum(self.via_between(i, i + 1).resistance for i in range(low, high))

    def wire_rc(self, layer_index: int, length: float) -> Tuple[float, float]:
        """(resistance, capacitance) of a wire of ``length`` um on a layer."""
        layer = self.layers[layer_index]
        return layer.res_per_um * length, layer.cap_per_um * length

    def horizontal_layers(self) -> List[RoutingLayer]:
        return [l for l in self.layers if l.direction == "H"]

    def vertical_layers(self) -> List[RoutingLayer]:
        return [l for l in self.layers if l.direction == "V"]

    def tracks_per_gcell(self, layer_index: int) -> int:
        """Routing tracks crossing one GCell edge on a layer."""
        layer = self.layers[layer_index]
        return max(1, int(self.gcell_size / layer.pitch))


def default_technology() -> Technology:
    """A six-metal 130 nm-like stack.

    Lower layers are resistive and dense; upper layers are fast and
    sparse — the property timing-driven layer assignment exploits.

    Coordinate compression: the synthetic benchmarks place paper-scale
    netlists on dies tens of um across, ~30x smaller linearly than the
    real designs.  Per-um wire RC is therefore scaled up (r x75, c x5
    over raw SkyWater numbers) so that a wire spanning the die carries
    the same RC delay a mm-scale route would — without this, wire delay
    would be sub-femtosecond noise and Steiner refinement would have
    nothing physical to optimize.
    """
    layers = [
        RoutingLayer("met1", 0, "H", res_per_um=1.50e-1, cap_per_um=1.1e-3, pitch=0.34, min_width=0.14),
        RoutingLayer("met2", 1, "V", res_per_um=9.40e-2, cap_per_um=1.0e-3, pitch=0.46, min_width=0.14),
        RoutingLayer("met3", 2, "H", res_per_um=3.55e-2, cap_per_um=0.95e-3, pitch=0.68, min_width=0.30),
        RoutingLayer("met4", 3, "V", res_per_um=3.55e-2, cap_per_um=0.90e-3, pitch=0.92, min_width=0.30),
        RoutingLayer("met5", 4, "H", res_per_um=0.60e-2, cap_per_um=0.80e-3, pitch=3.40, min_width=1.60),
        RoutingLayer("met6", 5, "V", res_per_um=0.23e-2, cap_per_um=0.75e-3, pitch=3.40, min_width=1.60),
    ]
    vias = [
        ViaDef("via1", 0, 1, resistance=4.5e-3, capacitance=1.0e-4),
        ViaDef("via2", 1, 2, resistance=3.4e-3, capacitance=1.0e-4),
        ViaDef("via3", 2, 3, resistance=3.4e-3, capacitance=1.0e-4),
        ViaDef("via4", 3, 4, resistance=0.38e-3, capacitance=1.2e-4),
        ViaDef("via5", 4, 5, resistance=0.38e-3, capacitance=1.2e-4),
    ]
    return Technology(name="sim130", layers=layers, vias=vias)
