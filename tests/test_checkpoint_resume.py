"""Checkpoint -> kill -> resume determinism (docs/RESILIENCE.md).

The contract under test: a run that is killed mid-flight and resumed
from its last atomic snapshot produces *byte-identical* results to the
same run left uninterrupted — coordinates, metrics, loss histories and
model weights all compare exactly, not approximately.  The kill is a
deterministic injected fault (or an expiring virtual-clock budget), so
these tests never depend on real timing.
"""

import numpy as np
import pytest

from repro.core.refine import RefinementConfig, refine
from repro.flow.pipeline import prepare_design
from repro.runtime import Budget, CheckpointError, atomic_save_npz, faults
from repro.timing_model.dataset import make_sample
from repro.timing_model.graph import build_timing_graph
from repro.timing_model.model import EvaluatorConfig, TimingEvaluator
from repro.timing_model.train import TrainerConfig, train_evaluator

from tests.test_failure_injection import _FaultyModel, _QuadraticModel, _toy_validator


@pytest.fixture(scope="module")
def spm_design():
    netlist, forest = prepare_design("spm")
    graph = build_timing_graph(netlist, forest)
    return netlist, forest, graph


def _assert_refinement_identical(resumed, full):
    assert resumed.coords.tobytes() == full.coords.tobytes()
    assert resumed.best_wns == full.best_wns
    assert resumed.best_tns == full.best_tns
    assert resumed.init_wns == full.init_wns
    assert resumed.init_tns == full.init_tns
    assert resumed.iterations == full.iterations
    assert resumed.accepted == full.accepted
    assert resumed.history == full.history
    assert resumed.validations == full.validations
    assert resumed.validated_reverts == full.validated_reverts
    assert resumed.theta == full.theta


class TestRefineResume:
    def test_evaluator_mode_bit_identical(self, spm_design, tmp_path):
        _, forest, graph = spm_design
        coords0 = forest.get_steiner_coords()
        cfg = RefinementConfig(
            max_iterations=8,
            converge_ratio=1e9,
            acceptance="evaluator",
            polish_probes=0,
        )
        full = refine(_QuadraticModel(), graph, coords0, cfg)
        assert full.iterations == 8 and full.resumed is False

        # Kill: the model dies during iteration 5's gradient (calls 1-2
        # are the adaptive-theta probes, call 3 is iteration 1).
        ckpt = tmp_path / "refine.npz"
        dying = _FaultyModel(
            _QuadraticModel(), faults.FaultSpec(at_call=7, exc=RuntimeError)
        )
        with pytest.raises(RuntimeError):
            refine(dying, graph, coords0, cfg, checkpoint_path=ckpt)
        assert ckpt.exists()

        resumed = refine(
            _QuadraticModel(), graph, coords0, cfg,
            checkpoint_path=ckpt, resume=True,
        )
        assert resumed.resumed is True
        _assert_refinement_identical(resumed, full)

    def test_hybrid_mode_bit_identical(self, spm_design, tmp_path):
        _, forest, graph = spm_design
        coords0 = forest.get_steiner_coords()
        cfg = RefinementConfig(
            max_iterations=6,
            converge_ratio=1e9,
            acceptance="hybrid",
            validate_every=2,
            polish_probes=3,
        )
        full = refine(
            _QuadraticModel(), graph, coords0, cfg, validator=_toy_validator
        )

        ckpt = tmp_path / "refine.npz"
        dying = _FaultyModel(
            _QuadraticModel(), faults.FaultSpec(at_call=6, exc=RuntimeError)
        )
        with pytest.raises(RuntimeError):
            refine(
                dying, graph, coords0, cfg,
                validator=_toy_validator, checkpoint_path=ckpt,
            )

        resumed = refine(
            _QuadraticModel(), graph, coords0, cfg,
            validator=_toy_validator, checkpoint_path=ckpt, resume=True,
        )
        assert resumed.resumed is True
        _assert_refinement_identical(resumed, full)

    def test_resume_without_checkpoint_starts_fresh(self, spm_design, tmp_path):
        _, forest, graph = spm_design
        cfg = RefinementConfig(
            max_iterations=3, converge_ratio=1e9,
            acceptance="evaluator", polish_probes=0,
        )
        result = refine(
            _QuadraticModel(), graph, forest.get_steiner_coords(), cfg,
            checkpoint_path=tmp_path / "absent.npz", resume=True,
        )
        assert result.resumed is False
        assert result.iterations == 3

    def test_foreign_checkpoint_rejected(self, spm_design, tmp_path):
        _, forest, graph = spm_design
        ckpt = tmp_path / "wrong.npz"
        atomic_save_npz(ckpt, {"x": 1}, meta={"kind": "trainer-v1"})
        with pytest.raises(CheckpointError):
            refine(
                _QuadraticModel(), graph, forest.get_steiner_coords(),
                RefinementConfig(max_iterations=2),
                checkpoint_path=ckpt, resume=True,
            )


class TestTrainResume:
    def test_bit_identical_after_budget_kill(self, spm_design, tmp_path):
        netlist, forest, _ = spm_design
        sample = make_sample(netlist, forest, None, is_train=True)
        cfg = TrainerConfig(epochs=8, patience=100)

        model_full = TimingEvaluator(EvaluatorConfig(hidden=8, seed=11))
        full = train_evaluator(model_full, [sample], cfg)
        assert len(full.losses) == 8

        # Kill: a ticking virtual clock expires the budget after four
        # epoch-boundary polls.
        ticks = {"t": 0.0}

        def ticking_clock() -> float:
            ticks["t"] += 1.0
            return ticks["t"]

        ckpt = tmp_path / "trainer.npz"
        model_killed = TimingEvaluator(EvaluatorConfig(hidden=8, seed=11))
        interrupted = train_evaluator(
            model_killed, [sample], cfg,
            budget=Budget(wall_seconds=4.5, clock=ticking_clock),
            checkpoint_path=ckpt,
        )
        assert interrupted.timed_out is True
        assert 0 < len(interrupted.losses) < 8
        assert ckpt.exists()

        model_resumed = TimingEvaluator(EvaluatorConfig(hidden=8, seed=11))
        resumed = train_evaluator(
            model_resumed, [sample], cfg, checkpoint_path=ckpt, resume=True
        )
        assert resumed.resumed is True
        assert resumed.losses == full.losses
        assert resumed.best_epoch == full.best_epoch
        assert resumed.final_loss == full.final_loss
        full_state = model_full.state_dict()
        for k, v in model_resumed.state_dict().items():
            assert np.array_equal(v, full_state[k]), k

    def test_resume_without_checkpoint_starts_fresh(self, spm_design, tmp_path):
        netlist, forest, _ = spm_design
        sample = make_sample(netlist, forest, None, is_train=True)
        result = train_evaluator(
            TimingEvaluator(EvaluatorConfig(hidden=8, seed=11)),
            [sample],
            TrainerConfig(epochs=2, patience=100),
            checkpoint_path=tmp_path / "absent.npz",
            resume=True,
        )
        assert result.resumed is False
        assert len(result.losses) == 2

    def test_foreign_checkpoint_rejected(self, spm_design, tmp_path):
        netlist, forest, _ = spm_design
        sample = make_sample(netlist, forest, None, is_train=True)
        ckpt = tmp_path / "wrong.npz"
        atomic_save_npz(ckpt, {"x": 1}, meta={"kind": "refine-v1"})
        with pytest.raises(CheckpointError):
            train_evaluator(
                TimingEvaluator(EvaluatorConfig(hidden=8, seed=11)),
                [sample],
                TrainerConfig(epochs=2),
                checkpoint_path=ckpt,
                resume=True,
            )
