"""Perf-bench harness tests.

``bench_smoke`` runs the quick benchmark in-process and fails when any
kernel's speedup regressed more than 25% against the committed
``BENCH_timing.json`` — the same check as
``python -m repro.bench --quick --check BENCH_timing.json``.
Deselect with ``-m 'not bench_smoke'`` when timing noise is unwanted
(e.g. under heavy parallel CI load).
"""

from pathlib import Path

import pytest

from repro.bench import compare_reports, load_report, run_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_timing.json"


class TestCompareReports:
    def _report(self, speedup):
        return {
            "kernels": {
                "full_sta": {"des3": {"speedup": speedup}},
                "incremental": {"des3": {"speedup_vs_reference": speedup}},
                "evaluator": {"des3": {"speedup": speedup}},
                "evaluator_backward": {"des3": {"speedup": speedup}},
                "refine_iter": {"des3": {"speedup": speedup}},
            }
        }

    def test_clean_when_equal(self):
        base = self._report(10.0)
        assert compare_reports(self._report(10.0), base) == []

    def test_small_dip_within_tolerance(self):
        base = self._report(10.0)
        assert compare_reports(self._report(7.6), base, tolerance=0.25) == []

    def test_regression_flagged(self):
        base = self._report(10.0)
        problems = compare_reports(self._report(7.4), base, tolerance=0.25)
        assert len(problems) == 5
        assert any("full_sta/des3" in p for p in problems)
        assert any("refine_iter/des3" in p for p in problems)
        assert any("evaluator_backward/des3" in p for p in problems)

    def test_disjoint_designs_ignored(self):
        new = {"kernels": {"full_sta": {"spm": {"speedup": 1.0}}}}
        base = self._report(10.0)
        assert compare_reports(new, base) == []

    def test_improvement_never_flags(self):
        base = self._report(10.0)
        assert compare_reports(self._report(25.0), base) == []


def test_baseline_report_is_committed():
    """The regression gate needs its baseline in the repo."""
    assert BASELINE.exists(), "BENCH_timing.json missing — run python -m repro.bench --out BENCH_timing.json"
    report = load_report(BASELINE)
    kernels = report["kernels"]
    # Acceptance criteria of the perf PRs, recorded on des3:
    assert kernels["full_sta"]["des3"]["speedup"] >= 3.0
    assert kernels["incremental"]["des3"]["speedup_vs_reference"] >= 5.0
    # Tape-executor PR: end-to-end refine() >= 3x with a warm tape, and
    # the tape trajectory matched the closure reference bit for bit.
    assert kernels["refine_iter"]["des3"]["speedup"] >= 3.0
    for design, row in kernels["refine_iter"].items():
        assert row["trajectory_bitwise_equal"] == 1.0, design
    for design, row in kernels["evaluator_backward"].items():
        assert row["grad_bitwise_equal"] == 1.0, design
    # The evaluator speedup is fast-kernel vs reference-kernel (tape vs
    # closure), not warm-vs-cold of one kernel.
    for design, row in kernels["evaluator"].items():
        assert {"closure_ms", "tape_ms", "compile_ms"} <= set(row), design
    # MCMM PR: batched cross-scenario STA beats N independent runs on
    # every benchmarked design, with bitwise-equal per-scenario rows.
    for design, row in kernels["mcmm_sta"].items():
        assert row["scenarios"] >= 3.0, design
        assert row["speedup"] > 1.0, design
        assert row["metrics_bitwise_equal"] == 1.0, design
    # Flat Steiner PR: batched forest construction >= 5x on des3 with
    # bitwise-equal trees, and the flat L-pattern route estimator
    # matched the per-edge reference exactly on every design.
    assert kernels["forest_build"]["des3"]["speedup"] >= 5.0
    for design, row in kernels["forest_build"].items():
        assert row["trees_bitwise_equal"] == 1.0, design
        assert row["wirelength_delta"] == 0.0, design
    assert kernels["groute"]["des3"]["speedup"] >= 5.0
    for design, row in kernels["groute"].items():
        assert row["routes_bitwise_equal"] == 1.0, design
    # Serving-v2 PR: query fusion >= 2x jobs/sec on the des3 burst mix,
    # with fused per-job results equal to the unfused run everywhere.
    assert kernels["serve_throughput"]["des3"]["speedup"] >= 2.0
    for design, row in kernels["serve_throughput"].items():
        assert row["results_equal"] == 1.0, design
        assert row["fusion_ratio"] > 0.5, design
    # ECO PR: warm-context candidate validation >= 3x over cold
    # per-candidate rebuilds on des3, with bitwise-equal verdicts.
    assert kernels["eco_loop"]["des3"]["speedup"] >= 3.0
    for design, row in kernels["eco_loop"].items():
        assert row["verdicts_bitwise_equal"] == 1.0, design


def test_unknown_kernel_filter_rejected():
    with pytest.raises(ValueError, match="unknown bench kernels"):
        run_benchmarks(kernels=["nope"], log=lambda m: None)


@pytest.mark.bench_smoke
def test_quick_bench_has_no_regressions():
    """In-process ``--quick`` run checked against the committed baseline.

    Tolerance is looser than the standalone CLI gate (0.40 vs 0.25):
    when the whole suite runs in one process this test executes after
    hundreds of tests have bloated the heap, which slows the
    small-design kernels by more than scheduler noise alone.
    """
    report = run_benchmarks(quick=True, repeats=2, queries=8, log=lambda m: None)
    problems = compare_reports(report, load_report(BASELINE), tolerance=0.40)
    assert problems == [], "\n".join(problems)
