"""Tests for the netlist data model, generator and named benchmarks."""

import numpy as np
import pytest

from repro.netlist.benchmarks import (
    BENCHMARKS,
    TEST_BENCHMARKS,
    TRAIN_BENCHMARKS,
    build_benchmark,
)
from repro.netlist.generator import GeneratorConfig, generate_netlist
from repro.netlist.netlist import Netlist, PinDirection
from repro.netlist.stats import aggregate_stats, collect_stats
from repro.pdk.clocks import ClockSpec
from repro.pdk.liberty import default_library
from repro.pdk.technology import default_technology


def tiny_config(**overrides):
    defaults = dict(
        name="tiny", n_registers=4, n_comb=20, n_pi=2, n_po=2, depth=4, seed=1,
        clock_period=1.0,
    )
    defaults.update(overrides)
    return GeneratorConfig(**defaults)


@pytest.fixture(scope="module")
def tiny():
    return generate_netlist(tiny_config())


class TestNetlistModel:
    def test_manual_construction(self):
        lib = default_library()
        nl = Netlist("manual", lib, default_technology(), ClockSpec(1.0))
        nl.die_width = nl.die_height = 50.0
        inv = nl.add_cell("inv0", lib["INV_X1"])
        pi = nl.add_port("in0", PinDirection.OUTPUT, 0.0, 10.0)
        po = nl.add_port("out0", PinDirection.INPUT, 50.0, 10.0)
        nl.add_net("n1", pi.index, [inv.pin_indices["A"]])
        nl.add_net("n2", inv.pin_indices["Y"], [po.index])
        nl.validate()
        assert nl.num_cells == 1
        assert nl.num_nets == 2
        assert len(nl.startpoints()) == 1
        assert len(nl.endpoints()) == 1

    def test_net_direction_validation(self):
        lib = default_library()
        nl = Netlist("bad", lib, default_technology(), ClockSpec(1.0))
        inv = nl.add_cell("inv0", lib["INV_X1"])
        with pytest.raises(ValueError):
            nl.add_net("n", inv.pin_indices["A"], [inv.pin_indices["Y"]])

    def test_pin_positions_follow_cells(self, tiny):
        pos = tiny.pin_positions()
        cell = tiny.cells[0]
        pin = tiny.pins[cell.pin_indices[cell.cell_type.input_pins[0]]]
        assert pos[pin.index][0] == cell.x + pin.offset[0]
        assert pos[pin.index][1] == cell.y + pin.offset[1]

    def test_pin_net_map(self, tiny):
        mapping = tiny.pin_net_map()
        for net in tiny.nets:
            for p in net.pins:
                assert mapping[p] == net.index

    def test_topological_order_respects_arcs(self, tiny):
        order = tiny.topological_pin_order()
        rank = {p: i for i, p in enumerate(order)}
        for a, b in tiny.cell_edges():
            assert rank[a] < rank[b]
        for a, b, _ in tiny.net_edges():
            assert rank[a] < rank[b]

    def test_cell_edges_skip_register_d(self, tiny):
        edges = set(tiny.cell_edges())
        for reg in tiny.registers():
            d_pin = reg.pin_indices["D"]
            assert not any(a == d_pin for a, _ in edges)

    def test_endpoints_are_register_d_and_pos(self, tiny):
        eps = set(tiny.endpoints())
        for reg in tiny.registers():
            assert reg.pin_indices["D"] in eps
        for po in tiny.primary_outputs():
            assert po.index in eps

    def test_validate_passes(self, tiny):
        tiny.validate()


class TestGenerator:
    def test_deterministic(self):
        a = generate_netlist(tiny_config())
        b = generate_netlist(tiny_config())
        assert a.num_pins == b.num_pins
        assert [n.driver for n in a.nets] == [n.driver for n in b.nets]
        assert [n.sinks for n in a.nets] == [n.sinks for n in b.nets]

    def test_seed_changes_structure(self):
        a = generate_netlist(tiny_config(seed=1))
        b = generate_netlist(tiny_config(seed=2))
        assert [n.sinks for n in a.nets] != [n.sinks for n in b.nets]

    def test_no_combinational_loops(self, tiny):
        tiny.topological_pin_order()  # raises on a loop

    def test_all_cell_inputs_driven(self, tiny):
        driven = {s for net in tiny.nets for s in net.sinks}
        for cell in tiny.cells:
            for name in cell.cell_type.input_pins:
                if cell.is_sequential and name == cell.cell_type.clock_pin:
                    continue  # ideal clock network
                assert cell.pin_indices[name] in driven

    def test_every_net_has_sinks(self, tiny):
        assert all(net.sinks for net in tiny.nets)

    def test_counts_match_config(self):
        cfg = tiny_config(n_registers=7, n_comb=30)
        nl = generate_netlist(cfg)
        assert len(nl.registers()) == 7
        assert nl.num_cells == 7 + 30

    def test_die_is_gcell_aligned(self, tiny):
        g = tiny.technology.gcell_size
        assert abs(tiny.die_width % g) < 1e-9
        assert abs(tiny.die_height % g) < 1e-9

    def test_depth_actually_reached(self):
        nl = generate_netlist(tiny_config(n_comb=60, depth=8))
        # Longest combinational pin chain should be >= depth cells.
        order = nl.topological_pin_order()
        level = {p: 0 for p in order}
        arcs = list(nl.cell_edges()) + [(a, b) for a, b, _ in nl.net_edges()]
        succ = {}
        for a, b in arcs:
            succ.setdefault(a, []).append(b)
        for p in order:
            for q in succ.get(p, []):
                level[q] = max(level[q], level[p] + 1)
        assert max(level.values()) >= 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", n_registers=0, n_comb=10)
        with pytest.raises(ValueError):
            GeneratorConfig(name="x", n_registers=1, n_comb=10, utilization=1.5)


class TestBenchmarks:
    def test_split_matches_paper(self):
        assert set(TRAIN_BENCHMARKS) == {
            "chacha", "cic_decimator", "APU", "des", "jpeg_encoder", "spm"
        }
        assert set(TEST_BENCHMARKS) == {
            "aes_cipher", "picorv32a", "usb_cdc_core", "des3"
        }

    def test_all_ten_exist(self):
        assert len(BENCHMARKS) == 10

    def test_small_designs_build_and_validate(self):
        for name in ["spm", "cic_decimator", "usb_cdc_core"]:
            nl = build_benchmark(name)
            nl.validate()
            assert nl.name == name

    def test_relative_scale_ordering(self):
        spm = build_benchmark("spm")
        apu = build_benchmark("APU")
        assert apu.num_cells > spm.num_cells

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_benchmark("nonexistent")

    def test_scale_parameter(self):
        small = build_benchmark("APU", scale=0.5)
        full = build_benchmark("APU", scale=1.0)
        assert small.num_cells < full.num_cells


class TestStats:
    def test_collect_without_forest(self, tiny):
        stats = collect_stats(tiny)
        assert stats.cell_nodes == tiny.num_pins
        assert stats.steiner_nodes == 0
        assert stats.endpoints == len(tiny.endpoints())

    def test_collect_with_forest(self, tiny):
        from repro.placement import place
        from repro.steiner import build_forest

        place(tiny)
        forest = build_forest(tiny)
        stats = collect_stats(tiny, forest)
        assert stats.steiner_nodes == forest.num_steiner_points
        assert stats.net_edges == len(tiny.net_edges()) + forest.num_edges

    def test_aggregate(self, tiny):
        s = collect_stats(tiny)
        total = aggregate_stats([s, s], "Total")
        assert total.cell_nodes == 2 * s.cell_nodes
        assert total.name == "Total"
